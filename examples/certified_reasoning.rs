//! Certified reasoning: every answer comes with evidence.
//!
//! For an implied dependency the library emits a machine-checkable
//! derivation over the paper's 14 inference rules (Lemma 6.1, made
//! constructive); for a non-implied dependency it emits a concrete
//! counterexample database (the completeness construction of
//! Section 4.2). Both certificates are re-verified by independent
//! checkers before being shown.
//!
//! Run with `cargo run -p nalist --example certified_reasoning`.

use nalist::prelude::*;

fn main() {
    // a versioned-document store: a document carries an ordered list of
    // revisions; each revision has an author and an ordered chunk list
    let n =
        parse_attr("Doc(Id, Revisions[Rev(Author, Chunks[Hash])], Owner)").expect("schema parses");
    println!("N = {n}\n");

    let mut reasoner = Reasoner::new(&n);
    for dep in [
        // the id determines the owner
        "Doc(Id) -> Doc(Owner)",
        // chunk contents are exchangeable independently of authorship:
        // note the MVD's right-hand side cuts *through* the revision list
        "Doc(Id) ->> Doc(Revisions[Rev(Chunks[Hash])])",
    ] {
        reasoner.add_str(dep).expect("dependency parses");
        println!("Σ += {dep}");
    }
    let alg = reasoner.algebra();
    println!();

    // 1. an implied dependency with its derivation: because the MVD's RHS
    // shares the revision-list *shape* with its complement, the mixed meet
    // rule forces the id to determine the number of revisions — a
    // genuinely list-theoretic inference with no relational counterpart
    let implied = "Doc(Id) -> Doc(Revisions[λ])";
    let target = Dependency::parse(&n, implied)
        .expect("parses")
        .compile(alg)
        .expect("compiles");
    println!("query: Σ ⊨ {implied} ?");
    match nalist::membership::certify(alg, reasoner.compiled_sigma(), &target)
        .expect("well-formed query certifies cleanly")
    {
        Some(dag) => {
            dag.check(alg, reasoner.compiled_sigma())
                .expect("re-verifies");
            println!(
                "yes — derivation ({} nodes, independently re-checked):",
                dag.len()
            );
            print!("{}", dag.render(alg));
        }
        None => println!("no"),
    }
    println!();

    // 2. a non-implied dependency with its counterexample: the id does
    // NOT determine the revision authors
    let refutable = "Doc(Id) -> Doc(Revisions[Rev(Author)])";
    let target = Dependency::parse(&n, refutable)
        .expect("parses")
        .compile(alg)
        .expect("compiles");
    println!("query: Σ ⊨ {refutable} ?");
    match refute(alg, reasoner.compiled_sigma(), &target).expect("machinery") {
        None => println!("yes"),
        Some(w) => {
            println!(
                "no — counterexample database ({} tuples; satisfies Σ, violates the FD):",
                w.instance.len()
            );
            for t in w.instance.iter() {
                println!("  {t}");
            }
        }
    }
}
