//! Automated schema design for an XML-style document store: dependency-set
//! equivalence, redundancy elimination, minimal covers, and 4NF
//! normalisation — the applications the paper's introduction targets
//! ("a significant step towards automated database schema design").
//!
//! Run with `cargo run -p nalist --example xml_schema_design`.

use nalist::gen::scenarios::xml_orders;
use nalist::prelude::*;
use nalist::schema::cover::redundant_indices;
use nalist::schema::normalform::fourth_nf_violations;

fn main() {
    let scenario = xml_orders();
    let n = &scenario.attr;
    let alg = Algebra::new(n);
    println!("N = {n}\n");

    // a designer's first draft, with some redundancy baked in
    let draft: Vec<CompiledDep> = [
        "Order(Customer) -> Order(Route[Hop])",
        "Order(Customer) ->> Order(Items[Item(Sku, Qty)], Priority)",
        "Order(Customer, Items[λ]) -> Order(Priority)",
        // redundant: implied by the first FD via the implication rule
        "Order(Customer) ->> Order(Route[Hop])",
        // redundant: weaker than the first FD
        "Order(Customer) -> Order(Route[λ])",
    ]
    .iter()
    .map(|s| {
        Dependency::parse(n, s)
            .expect("parses")
            .compile(&alg)
            .expect("compiles")
    })
    .collect();

    println!("draft Σ ({} dependencies):", draft.len());
    for d in &draft {
        println!("  {}", d.render(&alg));
    }
    let redundant = redundant_indices(&alg, &draft);
    println!("redundant members: {redundant:?}");

    let cover = minimal_cover(&alg, &draft);
    println!("\nminimal cover ({} dependencies):", cover.len());
    for d in &cover {
        println!("  {}", d.render(&alg));
    }
    println!(
        "cover equivalent to the draft: {}",
        equivalent(&alg, &cover, &draft)
    );
    println!();

    // 4NF analysis
    let violations = fourth_nf_violations(&alg, &cover);
    println!("4NF-with-lists violations: {}", violations.len());
    for v in &violations {
        println!("  [{}] {}", v.index, v.reason);
    }

    let components = decompose_4nf(&alg, &cover, 8);
    println!("\n4NF decomposition into {} components:", components.len());
    for c in &components {
        println!("  {}", alg.render(&c.atoms));
        for d in &c.local_deps {
            println!("    keeps {}", d.render(&alg));
        }
    }

    // verify losslessness against the sample document store
    let atom_sets: Vec<AtomSet> = components.iter().map(|c| c.atoms.clone()).collect();
    println!(
        "\nlossless on the sample store: {}",
        verify_lossless(&alg, &scenario.instance, &atom_sets).expect("verifies")
    );

    // equivalence check against an independently written Σ
    let alternative: Vec<CompiledDep> = [
        "Order(Customer) -> Order(Route[Hop])",
        "Order(Customer) ->> Order(Route[Hop], Priority)",
        "Order(Customer, Items[λ]) -> Order(Priority)",
    ]
    .iter()
    .map(|s| {
        Dependency::parse(n, s)
            .expect("parses")
            .compile(&alg)
            .expect("compiles")
    })
    .collect();
    println!(
        "\nalternative Σ' equivalent to the draft: {}",
        equivalent(&alg, &alternative, &draft)
    );
}
