//! Quickstart: define a nested schema, state dependencies, ask membership
//! questions, and inspect closures, dependency bases and counterexamples.
//!
//! Run with `cargo run -p nalist --example quickstart`.

use nalist::prelude::*;

fn main() {
    // A nested attribute mixing records and lists (Definition 3.2):
    // a playlist service — a user has an ordered track queue and a profile.
    let n = parse_attr("Session(User, Queue[Track(Song, Artist)], Profile(Plan, Region))")
        .expect("schema parses");
    println!("schema N = {n}");
    println!("|SubB(N)| = {} basis attributes\n", n.basis_size());

    let mut reasoner = Reasoner::new(&n);
    for dep in [
        // the user determines their subscription profile
        "Session(User) -> Session(Profile(Plan, Region))",
        // the queue (song+artist, in order) varies independently of the plan
        "Session(User) ->> Session(Queue[Track(Song, Artist)])",
        // within a queue position, the song determines the artist
        "Session(Queue[Track(Song)]) -> Session(Queue[Track(Artist)])",
    ] {
        reasoner.add_str(dep).expect("dependency parses");
        println!("Σ += {dep}");
    }
    println!();

    // Membership queries (Theorem 6.4: decidable in O(|N|^4 · |Σ|)).
    for query in [
        "Session(User) -> Session(Profile(Plan))",
        "Session(User) ->> Session(Profile(Plan, Region))",
        "Session(User, Queue[Track(Song)]) -> Session(Queue[Track(Artist)])",
        "Session(User) -> Session(Queue[λ])",
        "Session(User) -> Session(Queue[Track(Song)])",
    ] {
        let implied = reasoner.implies_str(query).expect("query parses");
        println!("Σ ⊨ {query:<62} {}", if implied { "yes" } else { "no" });
    }
    println!();

    // Attribute-set closure (Algorithm 5.1).
    let closure = reasoner.closure_str("Session(User)").expect("closure");
    println!("Session(User)+ = {closure}");

    // Dependency basis: the blocks every derivable MVD is built from.
    let alg = reasoner.algebra();
    let x = alg
        .from_attr(&parse_subattr_of(&n, "Session(User)").expect("subattr"))
        .expect("atoms");
    let basis = reasoner.dependency_basis(&x);
    println!("DepB(Session(User)):");
    for b in &basis.basis {
        println!("  {}", alg.render(b));
    }
    println!();

    // A verified counterexample for a non-implied dependency.
    let target = Dependency::parse(&n, "Session(User) -> Session(Queue[Track(Song)])")
        .expect("parses")
        .compile(alg)
        .expect("compiles");
    match refute(alg, reasoner.compiled_sigma(), &target).expect("refutation machinery") {
        None => println!("(unexpected) the dependency is implied"),
        Some(w) => {
            println!(
                "counterexample with {} tuples (satisfies Σ, violates the FD):",
                w.instance.len()
            );
            for t in w.instance.iter() {
                println!("  {t}");
            }
        }
    }
}
