//! Genomic sequence database scenario: reasoning over ordered exon lists
//! and residue sequences — the bioinformatics use case the paper's
//! introduction motivates ("lists occur naturally in genomic sequence
//! databases").
//!
//! Run with `cargo run -p nalist --example genomic_sequences`.

use nalist::gen::scenarios::genomic;
use nalist::prelude::*;

fn main() {
    let scenario = genomic();
    let n = &scenario.attr;
    println!("N = {n}");
    println!("sample instance ({} genes):", scenario.instance.len());
    for t in scenario.instance.iter() {
        println!("  {t}");
    }
    println!();

    let mut reasoner = Reasoner::new(n);
    println!("Σ:");
    for d in &scenario.sigma {
        println!("  {}", d.display_in(n));
        reasoner.add(d.clone()).expect("adds");
    }
    println!();

    // what does the locus determine?
    println!(
        "Gene(Locus)+ = {}",
        reasoner.closure_str("Gene(Locus)").expect("closure")
    );

    // derived facts a curator might ask about
    for query in [
        // exon count is determined (shape of the exon list)
        "Gene(Locus) -> Gene(Exons[λ])",
        // the full exon table follows from the locus
        "Gene(Locus) -> Gene(Exons[Exon(Start)])",
        // protein residues follow from locus only via the protein name? no:
        "Gene(Locus) -> Gene(Product(Residues[Acid]))",
        // but the independence MVD holds for the product subtree
        "Gene(Locus) ->> Gene(Product(Protein, Residues[Acid]))",
        // and residues are exchangeable independently of exon structure
        "Gene(Locus) ->> Gene(Exons[Exon(Start, End)])",
    ] {
        let implied = reasoner.implies_str(query).expect("parses");
        println!("Σ ⊨ {query:<55} {}", if implied { "yes" } else { "no" });
    }
    println!();

    // keys: what identifies a gene record?
    let alg = reasoner.algebra();
    let keys = candidate_keys(alg, reasoner.compiled_sigma(), 8);
    println!("candidate keys ({}):", keys.len());
    for k in &keys {
        println!("  {}", alg.render(k));
    }
    println!();

    // normal forms & decomposition
    println!(
        "schema in 4NF-with-lists: {}",
        is_fourth_nf(alg, reasoner.compiled_sigma())
    );
    let components = decompose_4nf(alg, reasoner.compiled_sigma(), 8);
    println!("4NF decomposition into {} components:", components.len());
    for c in &components {
        println!(
            "  {} ({} local dependencies)",
            alg.render(&c.atoms),
            c.local_deps.len()
        );
    }
    let atom_sets: Vec<AtomSet> = components.iter().map(|c| c.atoms.clone()).collect();
    let lossless = verify_lossless(alg, &scenario.instance, &atom_sets).expect("verifies");
    println!("decomposition lossless on the sample instance: {lossless}");
}
