//! The paper's running example, end to end: Example 4.2 (satisfaction),
//! Example 4.5 (lossless decomposition), and the mixed-meet consequence.
//!
//! Run with `cargo run -p nalist --example pubcrawl`.

use nalist::gen::scenarios::pubcrawl;
use nalist::prelude::*;

fn main() {
    let scenario = pubcrawl();
    let n = &scenario.attr;
    let alg = Algebra::new(n);
    let r = &scenario.instance;

    println!("N = {n}");
    println!("snapshot r ⊆ dom(N), {} tuples:", r.len());
    for t in r.iter() {
        println!("  {t}");
    }
    println!();

    // Example 4.2: which dependencies does the snapshot satisfy?
    for dep in [
        "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
        "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Beer)])",
        "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])",
        "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
    ] {
        let d = Dependency::parse(n, dep).expect("parses");
        let sat = r.satisfies_dep(&alg, &d).expect("checks");
        println!("r ⊨ {dep:<52} {}", if sat { "yes" } else { "no" });
    }
    println!();

    // Example 4.5: the MVD licenses a lossless decomposition into the
    // beer side and the pub side (Theorem 4.4).
    let mvd = Dependency::parse(n, "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
        .expect("parses")
        .compile(&alg)
        .expect("compiles");
    let (pub_side, beer_side) = binary_split(&alg, &mvd);
    println!("decomposing along the MVD:");
    println!("  component 1: {}", alg.render(&pub_side));
    println!("  component 2: {}", alg.render(&beer_side));

    let p1 = r.project(&alg.to_attr(&pub_side)).expect("projects");
    let p2 = r.project(&alg.to_attr(&beer_side)).expect("projects");
    println!("π onto component 1 ({} tuples):", p1.len());
    for t in p1.iter() {
        println!("  {t}");
    }
    println!("π onto component 2 ({} tuples):", p2.len());
    for t in p2.iter() {
        println!("  {t}");
    }
    let lossless =
        verify_lossless(&alg, r, &[pub_side.clone(), beer_side.clone()]).expect("verifies");
    println!("generalised join reconstructs r: {lossless}\n");

    // The mixed meet rule in action: from the MVD alone, the membership
    // algorithm derives that Person functionally determines the *shape*
    // (length) of the visit list — a non-trivial FD with no relational
    // counterpart.
    let mut reasoner = Reasoner::new(n);
    reasoner
        .add_str("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
        .expect("adds");
    let shape_fd = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])";
    println!(
        "Σ = {{Person ↠ Visit[Drink(Pub)]}} ⊨ {shape_fd}: {}",
        reasoner.implies_str(shape_fd).expect("decides")
    );
    println!(
        "Person+ = {}",
        reasoner.closure_str("Pubcrawl(Person)").expect("closure")
    );
}
