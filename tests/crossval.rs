//! Cross-validation of the membership algorithm (experiment E-THM63 and
//! E-BASE2 of DESIGN.md):
//!
//! * Algorithm 5.1 against the *independent* naive closure `Σ⁺` obtained
//!   by saturating the 14 inference rules — exhaustively over all
//!   candidate dependencies on small attributes, and over randomised
//!   workloads;
//! * Algorithm 5.1 against Beeri's classical relational algorithm on flat
//!   record schemas;
//! * refutation witnesses re-verified against the naive closure;
//! * the change-driven worklist engine against the paper-order pass
//!   engine (bit-for-bit) and the paper-literal `SubB`-set reference, on
//!   randomised workloads from `nalist-gen` (property tests at the
//!   bottom of this file).

use nalist::deps::naive::{NaiveClosure, NaiveConfig};
use nalist::membership::beeri::{rel_dependency_basis, RelDep};
use nalist::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exhaustive agreement: on small attributes, for EVERY pair
/// `(X, Y) ∈ Sub(N)²` and both dependency kinds, Algorithm 5.1 answers
/// exactly like the naive rule closure.
fn exhaustive_agreement(attr: &str, sigma_srcs: &[&str]) {
    let n = parse_attr(attr).unwrap();
    let alg = Algebra::new(&n);
    let sigma: Vec<CompiledDep> = sigma_srcs
        .iter()
        .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
        .collect();
    let naive = NaiveClosure::compute(&alg, &sigma, NaiveConfig::default()).unwrap();
    let elements = nalist::algebra::lattice::enumerate_sets(&alg);
    for x in &elements {
        let basis = closure_and_basis(&alg, &sigma, x);
        // the closures must agree
        assert_eq!(
            basis.closure,
            naive.fd_closure_of(x),
            "{attr}: X+ mismatch for X = {}",
            alg.render(x)
        );
        for y in &elements {
            let fd = CompiledDep::fd(x.clone(), y.clone());
            let mvd = CompiledDep::mvd(x.clone(), y.clone());
            assert_eq!(
                basis.fd_derivable(y),
                naive.derives(&fd),
                "{attr}: FD {} disagreement",
                fd.render(&alg)
            );
            assert_eq!(
                basis.mvd_derivable(y),
                naive.derives(&mvd),
                "{attr}: MVD {} disagreement",
                mvd.render(&alg)
            );
        }
    }
}

#[test]
fn exhaustive_flat_schema() {
    exhaustive_agreement("L(A, B, C)", &["L(A) -> L(B)"]);
    exhaustive_agreement("L(A, B, C)", &["L(A) ->> L(B)"]);
    exhaustive_agreement("L(A, B, C)", &["L(A) ->> L(B)", "L(C) -> L(B)"]);
}

#[test]
fn exhaustive_single_list() {
    exhaustive_agreement("L(A, M[B])", &["L(A) -> L(M[λ])"]);
    exhaustive_agreement("L(A, M[B])", &["L(A) ->> L(M[B])"]);
    exhaustive_agreement("L[A]", &["λ ->> L[λ]"]);
}

#[test]
fn exhaustive_nested_lists() {
    exhaustive_agreement("K[L(M[A], B)]", &["K[L(M[λ])] ->> K[L(M[A])]"]);
    exhaustive_agreement(
        "K[L(M[A], B)]",
        &["K[λ] -> K[L(B)]", "K[L(B)] ->> K[L(M[A])]"],
    );
    exhaustive_agreement(
        "L(M[A], P[B])",
        &["L(M[λ]) ->> L(P[B])", "L(P[λ]) -> L(M[λ])"],
    );
}

#[test]
fn randomized_agreement_small_attrs() {
    let mut rng = StdRng::seed_from_u64(2026);
    for round in 0..30 {
        let n = nalist::gen::attr_with_atoms(&mut rng, 3 + (round % 3));
        let alg = Algebra::new(&n);
        if nalist::algebra::lattice::sub_count(&n) > 40 {
            continue;
        }
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig {
                count: 3,
                ..Default::default()
            },
        );
        let naive = match NaiveClosure::compute(&alg, &sigma, NaiveConfig::default()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let elements = nalist::algebra::lattice::enumerate_sets(&alg);
        for x in &elements {
            let basis = closure_and_basis(&alg, &sigma, x);
            assert_eq!(
                basis.closure,
                naive.fd_closure_of(x),
                "round {round}: N = {n}, Σ = {:?}, X = {}",
                sigma.iter().map(|d| d.render(&alg)).collect::<Vec<_>>(),
                alg.render(x)
            );
            for y in &elements {
                assert_eq!(
                    basis.mvd_derivable(y),
                    naive.derives(&CompiledDep::mvd(x.clone(), y.clone())),
                    "round {round}: N = {n}, Σ = {:?}, X = {}, Y = {}",
                    sigma.iter().map(|d| d.render(&alg)).collect::<Vec<_>>(),
                    alg.render(x),
                    alg.render(y)
                );
            }
        }
    }
}

// ------------------------------------------------------------- Beeri (E-BASE2)

/// On flat record schemas, Algorithm 5.1 must agree with the classical
/// relational algorithm — dependency basis and closure alike.
#[test]
fn beeri_agreement_on_flat_schemas() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..50 {
        let width = 6;
        let n = nalist::gen::flat_attr(width);
        let alg = Algebra::new(&n);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig {
                count: 4,
                ..Default::default()
            },
        );
        let rel_sigma: Vec<RelDep> = sigma
            .iter()
            .map(|d| {
                let lhs = to_mask(&d.lhs);
                let rhs = to_mask(&d.rhs);
                match d.kind {
                    DepKind::Fd => RelDep::Fd { lhs, rhs },
                    DepKind::Mvd => RelDep::Mvd { lhs, rhs },
                }
            })
            .collect();
        for xm in 0u64..(1 << width) {
            let x = from_mask(&alg, xm, width);
            let nested = closure_and_basis(&alg, &sigma, &x);
            let rel = rel_dependency_basis(width, &rel_sigma, xm);
            assert_eq!(
                to_mask(&nested.closure),
                rel.closure,
                "closure mismatch at X={xm:b}"
            );
            // block structure: compare as sorted mask lists restricted to
            // non-closure attributes (both representations keep closure
            // attributes as singletons)
            let mut nb: Vec<u64> = nested.blocks.iter().map(to_mask).collect();
            let mut rb = rel.blocks.clone();
            nb.sort_unstable();
            rb.sort_unstable();
            assert_eq!(nb, rb, "blocks mismatch at X={xm:b}");
        }
    }
}

fn to_mask(s: &AtomSet) -> u64 {
    s.iter().fold(0u64, |m, a| m | (1 << a))
}

fn from_mask(alg: &Algebra, m: u64, width: usize) -> AtomSet {
    let mut s = alg.bottom_set();
    for i in 0..width {
        if m & (1 << i) != 0 {
            s.insert(i);
        }
    }
    s
}

// ------------------------------------------------------------- witnesses

/// For randomised nested workloads: every non-implied dependency gets a
/// witness that satisfies Σ and violates the target (the refute API
/// verifies this internally; here we also check the verdicts against the
/// naive closure).
#[test]
fn witnesses_match_naive_verdicts() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut refuted = 0;
    let mut implied = 0;
    for round in 0..20 {
        let n = nalist::gen::attr_with_atoms(&mut rng, 4);
        let alg = Algebra::new(&n);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig {
                count: 2,
                ..Default::default()
            },
        );
        let naive = match NaiveClosure::compute(&alg, &sigma, NaiveConfig::default()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        for _ in 0..10 {
            let dep = nalist::gen::random_dep(&mut rng, &alg, 0.4, 0.5);
            let expected = naive.derives(&dep);
            match refute(&alg, &sigma, &dep)
                .unwrap_or_else(|e| panic!("round {round}: witness machinery failed: {e}"))
            {
                None => {
                    assert!(
                        expected,
                        "round {round}: algorithm says implied, naive disagrees"
                    );
                    implied += 1;
                }
                Some(w) => {
                    assert!(
                        !expected,
                        "round {round}: algorithm refutes, naive says implied"
                    );
                    assert!(w.instance.satisfies_all(&alg, &sigma));
                    assert!(!w.instance.satisfies(&alg, &dep));
                    refuted += 1;
                }
            }
        }
    }
    assert!(
        refuted > 10,
        "want a healthy mix, got {refuted} refutations"
    );
    assert!(
        implied > 10,
        "want a healthy mix, got {implied} implications"
    );
}

/// Proofs extracted from the naive closure check out for dependencies the
/// membership algorithm declares implied.
#[test]
fn proofs_exist_for_implied_dependencies() {
    let n = parse_attr("L(A, M[B], C)").unwrap();
    let alg = Algebra::new(&n);
    let sigma: Vec<CompiledDep> = ["L(A) ->> L(M[B])", "L(C) -> L(M[λ])"]
        .iter()
        .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
        .collect();
    let naive = NaiveClosure::compute(&alg, &sigma, NaiveConfig::default()).unwrap();
    let elements = nalist::algebra::lattice::enumerate_sets(&alg);
    let mut checked = 0;
    for x in &elements {
        let basis = closure_and_basis(&alg, &sigma, x);
        for y in &elements {
            if basis.mvd_derivable(y) {
                let dep = CompiledDep::mvd(x.clone(), y.clone());
                let proof = naive
                    .proof_of(&dep)
                    .unwrap_or_else(|| panic!("no proof for {}", dep.render(&alg)));
                nalist::deps::proof::check(&alg, &sigma, &proof)
                    .unwrap_or_else(|e| panic!("proof fails for {}: {e}", dep.render(&alg)));
                checked += 1;
            }
        }
    }
    assert!(checked > 50, "checked only {checked} proofs");
}

/// Semantic completeness, exhaustively on a tiny attribute: every
/// dependency the algorithm declares NOT implied gets a verified
/// counterexample, and every combination instance (which satisfies Σ by
/// the completeness construction) satisfies everything declared implied.
#[test]
fn exhaustive_semantic_completeness_tiny() {
    for (attr, deps) in [
        ("L(A, M[B])", vec!["L(A) ->> L(M[B])"]),
        ("L[A]", vec!["λ ->> L[λ]"]),
        ("L(A, B)", vec!["L(A) -> L(B)"]),
    ] {
        let n = parse_attr(attr).unwrap();
        let alg = Algebra::new(&n);
        let sigma: Vec<CompiledDep> = deps
            .iter()
            .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
            .collect();
        let elements = nalist::algebra::lattice::enumerate_sets(&alg);
        for x in &elements {
            let basis = closure_and_basis(&alg, &sigma, x);
            let witness = nalist::membership::witness::combination_instance(&alg, &basis)
                .expect("tiny bases");
            assert!(witness.instance.satisfies_all(&alg, &sigma), "{attr}");
            for y in &elements {
                for dep in [
                    CompiledDep::fd(x.clone(), y.clone()),
                    CompiledDep::mvd(x.clone(), y.clone()),
                ] {
                    let implied = nalist::membership::implies(&alg, &sigma, &dep);
                    if implied {
                        // the combination instance models Σ, so it must
                        // satisfy everything implied (soundness)
                        assert!(
                            witness.instance.satisfies(&alg, &dep),
                            "{attr}: implied {} violated by the Σ-model",
                            dep.render(&alg)
                        );
                    } else {
                        // completeness: a verified counterexample exists
                        let w = refute(&alg, &sigma, &dep)
                            .unwrap_or_else(|e| panic!("{attr}: {e}"))
                            .expect("not implied must be refutable");
                        assert!(!w.instance.satisfies(&alg, &dep));
                        assert!(w.instance.satisfies_all(&alg, &sigma));
                    }
                }
            }
        }
    }
}

// ------------------------------------------------- engine cross-validation

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The change-driven worklist engine (the default behind
    /// `closure_and_basis`) produces bit-for-bit the same
    /// `DependencyBasis` as the paper-order pass engine, on random nested
    /// workloads well beyond the sizes the naive closure can cross-check.
    #[test]
    fn worklist_engine_matches_pass_engine(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(4..=48);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let count = rng.gen_range(1..=16);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig {
                count,
                ..Default::default()
            },
        );
        for _ in 0..6 {
            let x = nalist::gen::random_subattr(&mut rng, &alg, 0.3);
            let fast = closure_and_basis(&alg, &sigma, &x);
            let paper = closure_and_basis_paper(&alg, &sigma, &x);
            prop_assert_eq!(
                &fast,
                &paper,
                "engines disagree on N = {}, X = {}",
                n,
                alg.render(&x)
            );
            // the traced variant must keep the paper engine's semantics
            let (traced, _) = closure_and_basis_traced(&alg, &sigma, &x);
            prop_assert_eq!(&traced, &paper);
        }
    }

    /// Both engines against the paper-literal `SubB`-set transcription
    /// (`crosscheck` panics on any closure or block disagreement).
    #[test]
    fn engines_match_tree_reference(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(3..=12);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let count = rng.gen_range(1..=5);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig {
                count,
                ..Default::default()
            },
        );
        for _ in 0..3 {
            let x = nalist::gen::random_subattr(&mut rng, &alg, 0.35);
            nalist::membership::reference::crosscheck(&alg, &sigma, &x);
        }
    }

    /// Parallel batch membership answers exactly like one-at-a-time
    /// queries, at several thread counts.
    #[test]
    fn batch_membership_matches_sequential(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(4..=24);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let count = rng.gen_range(1..=8);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig {
                count,
                ..Default::default()
            },
        );
        let mut reasoner = Reasoner::new(&n);
        for d in &sigma {
            reasoner.add(d.decompile(&alg)).expect("generated Σ compiles");
        }
        let deps: Vec<Dependency> = (0..12)
            .map(|_| nalist::gen::random_dep(&mut rng, &alg, 0.35, 0.5).decompile(&alg))
            .collect();
        let sequential: Vec<bool> = deps
            .iter()
            .map(|d| reasoner.implies(d).expect("round-tripped deps compile"))
            .collect();
        for threads in [1usize, 2, 4] {
            let fresh = reasoner.clone();
            let batch = fresh
                .implies_batch_with(&deps, std::num::NonZeroUsize::new(threads).unwrap())
                .expect("round-tripped deps compile");
            prop_assert_eq!(&batch, &sequential, "threads = {}", threads);
        }
    }
}
