//! Property-based tests (experiments E-THM44 and E-THM46 of DESIGN.md):
//! Brouwerian laws on random algebras, soundness of all 14 inference
//! rules on random instances, Theorem 4.4 (MVD ⟺ lossless join), and
//! soundness of the membership algorithm against random data.
//!
//! Structured inputs are derived from proptest-generated seeds through
//! the deterministic generators in `nalist-gen`.

use nalist::deps::rules::{apply, Rule, ALL_RULES};
use nalist::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sub(rng: &mut StdRng, alg: &Algebra) -> AtomSet {
    nalist::gen::random_subattr(rng, alg, 0.4)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Brouwerian adjunction and lattice identities on random algebras
    /// and random element triples.
    #[test]
    fn brouwerian_laws_hold(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(1..=24);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        for _ in 0..20 {
            let a = sub(&mut rng, &alg);
            let b = sub(&mut rng, &alg);
            let c = sub(&mut rng, &alg);
            // adjunction: a ∸ b ≤ c ⟺ a ≤ b ⊔ c
            prop_assert_eq!(alg.le(&alg.pdiff(&a, &b), &c), alg.le(&a, &alg.join(&b, &c)));
            // distributivity
            prop_assert_eq!(
                alg.meet(&a, &alg.join(&b, &c)),
                alg.join(&alg.meet(&a, &b), &alg.meet(&a, &c))
            );
            // X = X^CC ⊔ (X ⊓ X^C)
            prop_assert_eq!(
                a.clone(),
                alg.join(&alg.cc(&a), &alg.meet(&a, &alg.compl(&a)))
            );
            // complement characterisation: a ⊔ a^C = N
            prop_assert_eq!(alg.join(&a, &alg.compl(&a)), alg.top_set());
        }
    }

    /// Tree-level algebra (Definition 3.8 verbatim) agrees with the
    /// bitset engine on random inputs.
    #[test]
    fn tree_and_bitset_engines_agree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(1..=20);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        for _ in 0..10 {
            let a = sub(&mut rng, &alg);
            let b = sub(&mut rng, &alg);
            let at = alg.to_attr(&a);
            let bt = alg.to_attr(&b);
            let join = nalist::algebra::treealg::tree_join(&at, &bt).unwrap();
            let meet = nalist::algebra::treealg::tree_meet(&at, &bt).unwrap();
            let pdiff = nalist::algebra::treealg::tree_pdiff(&at, &bt).unwrap();
            prop_assert_eq!(alg.from_attr(&join).unwrap(), alg.join(&a, &b));
            prop_assert_eq!(alg.from_attr(&meet).unwrap(), alg.meet(&a, &b));
            prop_assert_eq!(alg.from_attr(&pdiff).unwrap(), alg.pdiff(&a, &b));
        }
    }

    /// Parser/printer round-trip: abbreviate then re-resolve any random
    /// subattribute.
    #[test]
    fn abbreviation_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(1..=20);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        for _ in 0..10 {
            let a = sub(&mut rng, &alg);
            let tree = alg.to_attr(&a);
            let printed = nalist::types::display::abbreviate(&tree, &n);
            let reparsed = parse_subattr_of(&n, &printed).unwrap();
            prop_assert_eq!(&reparsed, &tree, "printed form {}", printed);
        }
    }

    /// Every one of the 14 inference rules is sound: on a random instance,
    /// whenever the premises are satisfied, so is the conclusion.
    #[test]
    fn all_rules_sound_on_random_instances(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=8);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let r = nalist::gen::random_instance(
            &mut rng,
            &n,
            &nalist::gen::InstanceConfig { rows: 10, domain_size: 2, max_list_len: 2 },
        );
        for _ in 0..40 {
            let rule = ALL_RULES[rng.gen_range(0..ALL_RULES.len())];
            let p1 = nalist::gen::random_dep(&mut rng, &alg, 0.4, 0.5);
            let p2 = nalist::gen::random_dep(&mut rng, &alg, 0.4, 0.5);
            let x = sub(&mut rng, &alg);
            let y = sub(&mut rng, &alg);
            let premises: Vec<&CompiledDep> = match rule.arity() {
                0 => vec![],
                1 => vec![&p1],
                _ => vec![&p1, &p2],
            };
            let params: Vec<&AtomSet> = match rule {
                Rule::FdReflexivity | Rule::MvdReflexivity => vec![&x, &y],
                Rule::FdExtension => vec![&x],
                Rule::MvdAugmentation => vec![&x, &y],
                _ => vec![],
            };
            if let Some(conclusion) = apply(&alg, rule, &premises, &params) {
                let premises_hold = premises.iter().all(|p| r.satisfies(&alg, p));
                if premises_hold {
                    prop_assert!(
                        r.satisfies(&alg, &conclusion),
                        "rule {} unsound: premises {:?} hold on\n{}\nbut conclusion {} fails",
                        rule.name(),
                        premises.iter().map(|p| p.render(&alg)).collect::<Vec<_>>(),
                        r,
                        conclusion.render(&alg)
                    );
                }
            }
        }
    }

    /// Theorem 4.4, corrected (see the erratum note in
    /// `nalist-deps::join`): `r ⊨ X ↠ Y` iff the decomposition is
    /// lossless AND `r ⊨ X → Y ⊓ Y^C`. The paper's bare iff fails when
    /// the mixed-meet FD is violated; satisfaction ⟹ losslessness always
    /// holds.
    #[test]
    fn mvd_iff_lossless_join_and_mixed_meet_fd(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=8);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let r = nalist::gen::random_instance(
            &mut rng,
            &n,
            &nalist::gen::InstanceConfig { rows: 8, domain_size: 2, max_list_len: 2 },
        );
        for _ in 0..10 {
            let x = sub(&mut rng, &alg);
            let y = sub(&mut rng, &alg);
            let sat = r.satisfies_mvd(&alg, &x, &y);
            let lossless =
                nalist::deps::join::lossless_decomposition(&alg, &r, &x, &y).unwrap();
            let mixed = alg.meet(&y, &alg.compl(&y));
            let fd = r.satisfies_fd(&alg, &x, &mixed);
            prop_assert_eq!(
                sat,
                lossless && fd,
                "X = {}, Y = {}",
                alg.render(&x),
                alg.render(&y)
            );
            // the paper's stated direction: satisfaction ⟹ losslessness
            if sat {
                prop_assert!(lossless);
            }
        }
    }

    /// The erratum's minimal counterexample, pinned: on N = L[A] with
    /// r = {[], [a]}, the decomposition along λ ↠ L[λ] is lossless yet
    /// the MVD is violated.
    #[test]
    fn theorem_44_converse_counterexample(_unit in proptest::strategy::Just(())) {
        let n = parse_attr("L[A]").unwrap();
        let alg = Algebra::new(&n);
        let r = {
            let mut r = Instance::new(n.clone());
            r.insert_str("[]").unwrap();
            r.insert_str("[a]").unwrap();
            r
        };
        let x = alg.bottom_set();
        let y = alg.from_attr(&parse_subattr_of(&n, "L[λ]").unwrap()).unwrap();
        prop_assert!(!r.satisfies_mvd(&alg, &x, &y));
        prop_assert!(nalist::deps::join::lossless_decomposition(&alg, &r, &x, &y).unwrap());
    }

    /// Soundness of the decision procedure end-to-end: if `Σ ⊨ σ` then no
    /// random instance satisfying `Σ` violates `σ`.
    #[test]
    fn implication_sound_on_random_data(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=7);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig { count: 2, ..Default::default() },
        );
        let r = nalist::gen::random_instance(
            &mut rng,
            &n,
            &nalist::gen::InstanceConfig { rows: 8, domain_size: 2, max_list_len: 2 },
        );
        if !r.satisfies_all(&alg, &sigma) {
            return Ok(()); // only instances modelling Σ are informative
        }
        for _ in 0..10 {
            let dep = nalist::gen::random_dep(&mut rng, &alg, 0.4, 0.5);
            if nalist::membership::implies(&alg, &sigma, &dep) {
                prop_assert!(
                    r.satisfies(&alg, &dep),
                    "Σ = {:?} ⊨ {} but instance violates it:\n{}",
                    sigma.iter().map(|d| d.render(&alg)).collect::<Vec<_>>(),
                    dep.render(&alg),
                    r
                );
            }
        }
    }

    /// The completeness construction really produces Σ-satisfying
    /// instances (Section 4.2), for random Σ and random X.
    #[test]
    fn combination_instances_satisfy_sigma(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=10);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig { count: 3, ..Default::default() },
        );
        if let Some(r) = nalist::gen::satisfying_instance(&mut rng, &alg, &sigma, 0.3) {
            for d in &sigma {
                prop_assert!(
                    r.satisfies(&alg, d),
                    "combination instance violates {} for Σ = {:?}",
                    d.render(&alg),
                    sigma.iter().map(|d| d.render(&alg)).collect::<Vec<_>>()
                );
            }
        }
    }

    /// Monotonicity and idempotence of the closure operator.
    #[test]
    fn closure_is_a_closure_operator(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=12);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig { count: 4, ..Default::default() },
        );
        let x = sub(&mut rng, &alg);
        let y = sub(&mut rng, &alg);
        let cx = closure_and_basis(&alg, &sigma, &x).closure;
        // extensive
        prop_assert!(alg.le(&x, &cx));
        // idempotent
        let ccx = closure_and_basis(&alg, &sigma, &cx).closure;
        prop_assert_eq!(&ccx, &cx);
        // monotone
        let xy = alg.join(&x, &y);
        let cxy = closure_and_basis(&alg, &sigma, &xy).closure;
        prop_assert!(alg.le(&cx, &cxy));
    }

    /// The parser never panics: arbitrary byte soup either parses or
    /// yields a structured error.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC{0,60}") {
        let _ = nalist::types::parser::parse_attr(&s);
        let _ = nalist::types::parser::parse_value(&s);
        let _ = nalist::types::parser::parse_loose(&s);
        let n = parse_attr("L(A, B, M[C])").unwrap();
        let _ = nalist::types::parser::parse_subattr_of(&n, &s);
        let _ = Dependency::parse(&n, &s);
    }

    /// Full attributes round-trip through Display/parse.
    #[test]
    fn attr_display_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(1..=25);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let printed = n.to_string();
        let reparsed = nalist::types::parser::parse_attr(&printed).unwrap();
        prop_assert_eq!(reparsed, n);
    }

    /// Values round-trip through Display/parse (string domains only, as
    /// produced by the witness builder and generators).
    #[test]
    fn value_display_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(1..=12);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let v = nalist::gen::random_value(
            &mut rng,
            &n,
            &nalist::gen::InstanceConfig::default(),
        );
        let printed = v.to_string();
        let reparsed = parse_value(&printed).unwrap();
        prop_assert_eq!(reparsed, v);
    }

    /// Certified membership agrees with the plain decision procedure and
    /// every emitted certificate re-verifies.
    #[test]
    fn certificates_check_and_agree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=10);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig { count: 3, ..Default::default() },
        );
        for _ in 0..5 {
            let target = nalist::gen::random_dep(&mut rng, &alg, 0.4, 0.5);
            let plain = nalist::membership::implies(&alg, &sigma, &target);
            match certify(&alg, &sigma, &target).expect("random targets certify cleanly") {
                Some(dag) => {
                    prop_assert!(plain);
                    let root = dag.check(&alg, &sigma).expect("certificate must check");
                    prop_assert_eq!(root, &target);
                }
                None => prop_assert!(!plain),
            }
        }
    }

    /// The chase either produces a superset satisfying every MVD, or
    /// fails `Unrepairable` — and then the offending MVD's mixed-meet FD
    /// `X → Y ⊓ Y^C` is genuinely violated by the input instance.
    #[test]
    fn chase_repairs_or_blames_mixed_meet(seed in any::<u64>()) {
        use nalist::deps::chase::{chase, ChaseError};
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=6);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        // MVD-only Σ
        let sigma: Vec<CompiledDep> = (0..2)
            .map(|_| {
                let d = nalist::gen::random_dep(&mut rng, &alg, 0.35, 0.0);
                CompiledDep::mvd(d.lhs, d.rhs)
            })
            .collect();
        let r = nalist::gen::random_instance(
            &mut rng,
            &n,
            &nalist::gen::InstanceConfig { rows: 5, domain_size: 2, max_list_len: 2 },
        );
        match chase(&alg, &sigma, &r, 4096) {
            Ok(out) => {
                prop_assert!(out.instance.satisfies_all(&alg, &sigma));
                prop_assert!(out.instance.len() >= r.len());
                for t in r.iter() {
                    prop_assert!(out.instance.contains(t));
                }
            }
            Err(ChaseError::Unrepairable { index, t1, t2 }) => {
                // the witness pair (possibly from a partially chased
                // state) agrees on X but differs on the mixed-meet part —
                // a violation of the FD X → Y⊓Y^C that the mixed meet
                // rule derives from the offending MVD
                use nalist::types::projection::project;
                let d = &sigma[index];
                let x_attr = alg.to_attr(&d.lhs);
                let mixed = alg.to_attr(&alg.meet(&d.rhs, &alg.compl(&d.rhs)));
                prop_assert_eq!(
                    project(&n, &x_attr, &t1).unwrap(),
                    project(&n, &x_attr, &t2).unwrap()
                );
                prop_assert_ne!(
                    project(&n, &mixed, &t1).unwrap(),
                    project(&n, &mixed, &t2).unwrap()
                );
            }
            Err(ChaseError::TooLarge { .. }) => {} // bound hit; fine
            Err(e) => prop_assert!(false, "unexpected chase error: {e}"),
        }
    }

    /// The dependency-basis blocks partition the maximal atoms, and every
    /// block is ^CC-closed.
    #[test]
    fn basis_blocks_partition_maximal_atoms(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=14);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig { count: 4, ..Default::default() },
        );
        let x = sub(&mut rng, &alg);
        let basis = closure_and_basis(&alg, &sigma, &x);
        let mut seen = alg.bottom_set();
        for w in &basis.blocks {
            prop_assert!(alg.is_downward_closed(w));
            prop_assert_eq!(&alg.cc(w), w, "block not ^CC-closed: {}", alg.render(w));
            let maxima = alg.maximal_atoms_of(w);
            prop_assert!(!maxima.intersects(&seen), "blocks overlap on maximal atoms");
            seen.union_with(&maxima);
        }
        prop_assert_eq!(&seen, alg.max_mask(), "blocks do not cover MaxB(N)");
    }

    /// Observability is pure observation: the observed twins of the
    /// worklist engine and the chase return results bit-identical to
    /// their unobserved counterparts, whether the recorder is the no-op
    /// or a live [`MetricsRecorder`] — and the live recorder's counters
    /// reflect the work actually done.
    #[test]
    fn observed_runs_are_bit_identical_to_unobserved_runs(seed in any::<u64>()) {
        use nalist::obs::{noop, Counter, MetricsRecorder};

        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(2..=14);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig { count: 4, ..Default::default() },
        );
        let budget = Budget::unlimited();
        let metrics = MetricsRecorder::new();
        let mut total_steps = 0u64;
        for _ in 0..5 {
            let x = alg.downward_closure(&sub(&mut rng, &alg));
            let plain = nalist::membership::closure_and_basis_worklist_run_governed(
                &alg, &sigma, &x, &budget,
            ).expect("governed run succeeds");
            let via_noop = nalist::membership::closure_and_basis_worklist_run_observed(
                &alg, &sigma, &x, &budget, noop(),
            ).expect("noop-observed run succeeds");
            let via_metrics = nalist::membership::closure_and_basis_worklist_run_observed(
                &alg, &sigma, &x, &budget, &metrics,
            ).expect("metrics-observed run succeeds");
            prop_assert_eq!(&plain, &via_noop);
            prop_assert_eq!(&plain, &via_metrics);
            total_steps += plain.steps;
        }
        prop_assert_eq!(metrics.counter(Counter::WorklistSteps), total_steps);

        let instance = nalist::gen::random_instance(
            &mut rng,
            &n,
            &nalist::gen::InstanceConfig { rows: 4, ..Default::default() },
        );
        let plain = nalist::deps::chase::chase_governed(&alg, &sigma, &instance, 1 << 12, &budget);
        let via_noop = nalist::deps::chase::chase_observed(
            &alg, &sigma, &instance, 1 << 12, &budget, noop(),
        );
        let via_metrics = nalist::deps::chase::chase_observed(
            &alg, &sigma, &instance, 1 << 12, &budget, &metrics,
        );
        match (plain, via_noop, via_metrics) {
            (Ok(a), Ok(b), Ok(c)) => {
                prop_assert_eq!(&a.instance, &b.instance);
                prop_assert_eq!(&a.instance, &c.instance);
                prop_assert_eq!((a.rounds, a.added), (b.rounds, b.added));
                prop_assert_eq!((a.rounds, a.added), (c.rounds, c.added));
                prop_assert_eq!(
                    metrics.counter(Counter::ChaseRounds),
                    a.rounds as u64
                );
            }
            (Err(a), Err(b), Err(c)) => {
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(&a, &c);
            }
            _ => prop_assert!(false, "observed and unobserved chase disagree on success"),
        }
    }
}
