//! Adversarial inputs and resource-governance contracts, end to end.
//!
//! Three families of tests:
//!
//! 1. A parser corpus of hostile spec files (depth bombs, byte-order
//!    marks, NUL bytes, megabyte identifiers, duplicate names) asserting
//!    *structured* errors with correct byte positions — never panics.
//! 2. Budget soundness: a governed query under any fuel level either
//!    returns exactly the unbudgeted answer or a typed
//!    [`ResourceExhausted`] — never a wrong verdict.
//! 3. Batch fault isolation: an injected worker panic poisons one query,
//!    not the batch.

use nalist::gen::chaos::{self, Expectation};
use nalist::guard::{FailAction, FailPoint, INJECTED_PANIC};
use nalist::lint::load_spec;
use nalist::prelude::*;
use nalist::types::parser::DEFAULT_MAX_DEPTH;
use proptest::prelude::*;

// ------------------------------------------------- hostile parser corpus

#[test]
fn depth_at_the_limit_parses_and_one_past_it_does_not() {
    let at_limit = chaos::depth_bomb(DEFAULT_MAX_DEPTH);
    assert!(parse_attr(&at_limit).is_ok());
    let past = chaos::depth_bomb(DEFAULT_MAX_DEPTH + 1);
    match parse_attr(&past) {
        Err(ParseError::TooDeep { at, limit }) => {
            assert_eq!(limit, DEFAULT_MAX_DEPTH);
            // the position is the bracket that crossed the limit: after
            // `limit + 1` copies of "L[" minus the final bracket itself
            assert_eq!(at, (DEFAULT_MAX_DEPTH + 1) * 2 - 1);
            assert_eq!(&past[at..=at], "[");
        }
        other => panic!("expected TooDeep, got {other:?}"),
    }
}

#[test]
fn truncated_depth_bomb_fails_structurally_not_by_stack_overflow() {
    // 65536 unclosed brackets: the depth cap must fire long before the
    // "missing `]`" error could be discovered recursively.
    let e = parse_attr(&chaos::truncated_depth_bomb(65_536)).unwrap_err();
    assert!(matches!(e, ParseError::TooDeep { .. }), "{e:?}");
}

#[test]
fn empty_input_is_a_structured_error() {
    assert!(matches!(
        parse_attr(""),
        Err(ParseError::UnexpectedEnd { .. })
    ));
    assert!(matches!(
        parse_attr("   \t  "),
        Err(ParseError::UnexpectedEnd { .. })
    ));
}

#[test]
fn bom_prefix_is_rejected_at_byte_zero() {
    match parse_attr("\u{feff}L(A, B)") {
        Err(ParseError::Unexpected { at, .. }) => assert_eq!(at, 0),
        other => panic!("expected Unexpected at 0, got {other:?}"),
    }
}

#[test]
fn nul_byte_is_rejected_at_its_exact_offset() {
    match parse_attr("L(A\0B)") {
        Err(ParseError::Unexpected { at, .. }) => assert_eq!(at, 3),
        other => panic!("expected Unexpected at 3, got {other:?}"),
    }
}

#[test]
fn megabyte_identifier_round_trips() {
    let src = chaos::megabyte_identifier(1 << 20);
    let n = parse_attr(&src).unwrap();
    assert_eq!(n.basis_size(), 1);
    assert_eq!(n.to_string().len(), src.len());
}

#[test]
fn duplicate_attribute_names_resolve_ambiguously() {
    let n = parse_attr("L(A, A)").unwrap();
    match parse_subattr_of(&n, "L(A)") {
        Err(ParseError::Ambiguous { count, .. }) => assert_eq!(count, 2),
        other => panic!("expected Ambiguous, got {other:?}"),
    }
}

#[test]
fn crlf_dependency_files_load_cleanly() {
    let spec = load_spec("L(A, B)", "L(A) -> L(B)\r\nL(B) ->> L(A)\r\n").unwrap();
    assert_eq!(spec.entries.len(), 2);
    assert!(spec.load_diagnostics.is_empty());
}

#[test]
fn whole_chaos_corpus_terminates_with_structured_outcomes() {
    for case in chaos::corpus() {
        // Library level: schema parsing and (when it parses) governed
        // spec loading must return, not panic. A modest budget keeps the
        // resource-hostile cases (atom/identifier bombs) cheap.
        let budget = Budget::unlimited().with_fuel(1 << 20).with_max_atoms(4096);
        let loaded = nalist::lint::load_spec_governed(&case.schema, &case.deps, &budget);
        if case.expect == Expectation::Accept {
            let spec = loaded.unwrap_or_else(|e| panic!("{} must load: {e}", case.name));
            assert!(
                spec.load_diagnostics.is_empty(),
                "{}: unexpected diagnostics {:?}",
                case.name,
                spec.load_diagnostics
            );
        }
        // For Survive cases any Ok/Err is fine — reaching this line at
        // all (no panic, no hang) is the contract.
    }
}

// ------------------------------------------------- budget soundness

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn governed_implies_is_sound_under_any_fuel(seed in any::<u64>()) {
        let n = parse_attr("L(A, B, C, D)").unwrap();
        let mut r = Reasoner::new(&n);
        r.add_str("L(A) -> L(B)").unwrap();
        r.add_str("L(B) ->> L(C)").unwrap();
        r.add_str("L(C) -> L(D)").unwrap();
        let queries = ["L(A) -> L(D)", "L(D) -> L(A)", "L(A) ->> L(C)"];
        let truths: Vec<bool> = queries
            .iter()
            .map(|q| r.implies_str(q).unwrap())
            .collect();
        let fuel = seed % 24;
        for (q, truth) in queries.iter().zip(&truths) {
            // Fresh reasoner per probe so the cache cannot answer for a
            // starved budget.
            let mut fresh = Reasoner::new(&n);
            fresh.add_str("L(A) -> L(B)").unwrap();
            fresh.add_str("L(B) ->> L(C)").unwrap();
            fresh.add_str("L(C) -> L(D)").unwrap();
            let budget = Budget::unlimited().with_fuel(fuel);
            match fresh.implies_str_governed(q, &budget) {
                Ok(b) => prop_assert_eq!(b, *truth, "fuel {} changed the verdict of {}", fuel, q),
                Err(ReasonerError::Resource(e)) => {
                    prop_assert_eq!(e.kind, ResourceKind::Fuel);
                }
                Err(other) => prop_assert!(false, "unexpected error: {}", other),
            }
        }
    }
}

// ------------------------------------------------- batch fault isolation

#[test]
fn injected_panic_degrades_one_batch_item_only() {
    let n = parse_attr("L(A, B, C)").unwrap();
    let mut r = Reasoner::new(&n);
    r.add_str("L(A) -> L(B)").unwrap();
    let deps: Vec<Dependency> = ["L(A) -> L(B)", "L(B) -> L(A)", "L(C) ->> L(A, B)"]
        .iter()
        .map(|s| Dependency::parse(&n, s).unwrap())
        .collect();
    let budget = Budget::unlimited().with_failpoint(FailPoint::nth(
        "membership::closure",
        1,
        FailAction::Panic,
    ));
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let verdicts = r
        .implies_batch_governed_with(&deps, &budget, std::num::NonZeroUsize::new(1).unwrap())
        .unwrap();
    std::panic::set_hook(prev);
    assert_eq!(verdicts.len(), 3);
    assert!(verdicts[0].as_ref().copied().unwrap());
    match &verdicts[1] {
        Err(QueryError::Panicked { message }) => assert!(message.contains(INJECTED_PANIC)),
        other => panic!("expected the second query to be poisoned, got {other:?}"),
    }
    assert!(verdicts[2].as_ref().copied().unwrap());
    // the reasoner (and its cache) survive for subsequent queries
    assert!(r.implies_str("L(B) -> L(A)").is_ok());
}
