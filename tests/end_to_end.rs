//! End-to-end workflows over the named scenarios: reasoning, witnesses,
//! covers, keys, normal forms and lossless decomposition working together
//! through the public facade API.

use nalist::prelude::*;
use nalist::schema::cover::{covers, is_redundant};
use nalist::schema::normalform::fourth_nf_violations;

fn reasoner_for(s: &nalist::gen::Scenario) -> Reasoner {
    let mut r = Reasoner::new(&s.attr);
    for d in &s.sigma {
        r.add(d.clone()).unwrap();
    }
    r
}

#[test]
fn pubcrawl_workflow() {
    let s = nalist::gen::scenarios::pubcrawl();
    let r = reasoner_for(&s);
    // implied facts
    assert!(r
        .implies_str("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])")
        .unwrap());
    assert!(r
        .implies_str("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
        .unwrap());
    // non-implied fact gets a verified witness
    let alg = r.algebra();
    let target = Dependency::parse(&s.attr, "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Beer)])")
        .unwrap()
        .compile(alg)
        .unwrap();
    let w = refute(alg, r.compiled_sigma(), &target).unwrap().unwrap();
    assert!(w.instance.satisfies_all(alg, r.compiled_sigma()));
    assert!(!w.instance.satisfies(alg, &target));
    // the sample instance models Σ, so it must satisfy everything implied
    for query in [
        "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
        "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
    ] {
        let d = Dependency::parse(&s.attr, query).unwrap();
        assert!(s.instance.satisfies_dep(alg, &d).unwrap(), "{query}");
    }
}

#[test]
fn pubcrawl_second_sigma_member_is_redundant() {
    // Σ = {Person ↠ Visit[Drink(Pub)], Person → Visit[λ]}: the FD is the
    // mixed-meet consequence of the MVD, hence redundant.
    let s = nalist::gen::scenarios::pubcrawl();
    let r = reasoner_for(&s);
    let alg = r.algebra();
    assert!(is_redundant(alg, r.compiled_sigma(), 1));
    assert!(!is_redundant(alg, r.compiled_sigma(), 0));
    let cover = minimal_cover(alg, r.compiled_sigma());
    assert_eq!(cover.len(), 1);
    assert!(equivalent(alg, &cover, r.compiled_sigma()));
}

#[test]
fn genomic_workflow() {
    let s = nalist::gen::scenarios::genomic();
    let r = reasoner_for(&s);
    let alg = r.algebra();
    // locus determines exon shape through the FD, and residues only via
    // the protein name
    assert!(r.implies_str("Gene(Locus) -> Gene(Exons[λ])").unwrap());
    assert!(!r
        .implies_str("Gene(Locus) -> Gene(Product(Residues[Acid]))")
        .unwrap());
    assert!(r
        .implies_str("Gene(Locus, Product(Protein)) -> Gene(Product(Residues[Acid]))")
        .unwrap());
    // candidate keys exist and verify
    let keys = candidate_keys(alg, r.compiled_sigma(), 8);
    assert!(!keys.is_empty());
    for k in &keys {
        assert!(nalist::schema::is_candidate_key(alg, r.compiled_sigma(), k));
    }
    // 4NF analysis finds the non-key MVD and decomposition is lossless
    let violations = fourth_nf_violations(alg, r.compiled_sigma());
    assert!(!violations.is_empty());
    let comps = decompose_4nf(alg, r.compiled_sigma(), 8);
    assert!(comps.len() >= 2);
    let atom_sets: Vec<AtomSet> = comps.iter().map(|c| c.atoms.clone()).collect();
    assert!(verify_lossless(alg, &s.instance, &atom_sets).unwrap());
}

#[test]
fn xml_orders_workflow() {
    let s = nalist::gen::scenarios::xml_orders();
    let r = reasoner_for(&s);
    let alg = r.algebra();
    // route shape follows from the customer
    assert!(r.implies_str("Order(Customer) -> Order(Route[λ])").unwrap());
    // item list is not functionally determined
    assert!(!r
        .implies_str("Order(Customer) -> Order(Items[Item(Sku)])")
        .unwrap());
    // but the MVD plus the priority FD gives: customer ↠ route side
    assert!(r
        .implies_str("Order(Customer) ->> Order(Route[Hop])")
        .unwrap());
    // a reformulated Σ' with the MVD moved to the route side is STRICTLY
    // stronger: Customer ↠ Route⊔Priority plus the shape FD force
    // Customer → Priority (generalised coalescence), which the original
    // does not imply — priority stays tied to the item-list shape there.
    let alternative: Vec<CompiledDep> = [
        "Order(Customer) -> Order(Route[Hop])",
        "Order(Customer) ->> Order(Route[Hop], Priority)",
        "Order(Customer, Items[λ]) -> Order(Priority)",
    ]
    .iter()
    .map(|src| {
        Dependency::parse(&s.attr, src)
            .unwrap()
            .compile(alg)
            .unwrap()
    })
    .collect();
    assert!(covers(alg, &alternative, r.compiled_sigma()));
    assert!(!covers(alg, r.compiled_sigma(), &alternative));
    assert!(nalist::membership::implies(
        alg,
        &alternative,
        &Dependency::parse(&s.attr, "Order(Customer) -> Order(Priority)")
            .unwrap()
            .compile(alg)
            .unwrap()
    ));
    assert!(!r.implies_str("Order(Customer) -> Order(Priority)").unwrap());
}

#[test]
fn traced_run_is_consistent_with_untraced() {
    for s in nalist::gen::scenarios::all() {
        let r = reasoner_for(&s);
        let alg = r.algebra();
        for d in r.compiled_sigma() {
            let plain = closure_and_basis(alg, r.compiled_sigma(), &d.lhs);
            let (traced, trace) = closure_and_basis_traced(alg, r.compiled_sigma(), &d.lhs);
            assert_eq!(plain, traced);
            assert!(!trace.passes.is_empty());
            // last pass is always a fixpoint confirmation
            assert!(trace.passes.last().unwrap().iter().all(|st| !st.changed));
        }
    }
}

#[test]
fn reasoners_are_cloneable_and_reusable() {
    let s = nalist::gen::scenarios::pubcrawl();
    let r1 = reasoner_for(&s);
    let mut r2 = r1.clone();
    r2.add_str("Pubcrawl(Visit[Drink(Beer)]) -> Pubcrawl(Person)")
        .unwrap();
    // r2 gained implications r1 does not have
    assert!(r2
        .implies_str("Pubcrawl(Visit[Drink(Beer, Pub)]) -> Pubcrawl(Person)")
        .unwrap());
    assert!(!r1
        .implies_str("Pubcrawl(Visit[Drink(Beer, Pub)]) -> Pubcrawl(Person)")
        .unwrap());
}

#[test]
fn witness_instances_are_realistic_databases() {
    // witnesses round-trip through the text format
    let s = nalist::gen::scenarios::genomic();
    let r = reasoner_for(&s);
    let alg = r.algebra();
    let target = Dependency::parse(&s.attr, "Gene(Locus) -> Gene(Product(Protein))")
        .unwrap()
        .compile(alg)
        .unwrap();
    let w = refute(alg, r.compiled_sigma(), &target).unwrap().unwrap();
    for t in w.instance.iter() {
        let printed = t.to_string();
        let reparsed = parse_value(&printed).unwrap();
        assert_eq!(&reparsed, t);
        assert!(t.conforms(&s.attr));
    }
}
