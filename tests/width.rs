//! Width-class pinning tests.
//!
//! `AtomSet` picks its word representation (`w2`/`w4`/`w8` inline
//! arrays, heap `Vec<u64>` beyond 512 atoms) purely from capacity, and
//! every binary operation dispatches once to a width-specialized kernel.
//! These tests pin three things at the *boundary* capacities where a
//! representation hand-off could silently change behaviour:
//!
//! * every operation (including the fused `union_with_changed` /
//!   `union_andnot` / `intersects_excluding` kernels) agrees with a
//!   naive `BTreeSet` model at each boundary capacity — so the classes
//!   agree with each *other* by transitivity, and the tail-word masking
//!   of partially used words (63/65/127/129/…) cannot leak bits;
//! * embedding one logical set at every capacity yields identical
//!   observable behaviour (iteration, counts, op results) regardless of
//!   which class hosts it;
//! * the worklist and paper-order engines stay bit-identical on random
//!   workloads at universe sizes straddling each class boundary.

use std::collections::BTreeSet;

use nalist::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Capacities one below, at, and one above each representation
/// boundary (64-bit word edges and the w2/w4/w8/heap class edges).
const BOUNDARY_CAPS: &[usize] = &[63, 64, 65, 127, 128, 129, 255, 256, 257, 511, 512, 513];

fn class_for(cap: usize) -> WidthClass {
    if cap <= 128 {
        WidthClass::W2
    } else if cap <= 256 {
        WidthClass::W4
    } else if cap <= 512 {
        WidthClass::W8
    } else {
        WidthClass::Heap
    }
}

#[test]
fn width_class_selection_at_boundaries() {
    for &cap in BOUNDARY_CAPS {
        assert_eq!(
            WidthClass::for_capacity(cap),
            class_for(cap),
            "capacity {cap}"
        );
    }
}

fn random_model(rng: &mut StdRng, cap: usize, density: f64) -> (AtomSet, BTreeSet<usize>) {
    let model: BTreeSet<usize> = (0..cap).filter(|_| rng.gen_bool(density)).collect();
    let set = AtomSet::from_indices(cap, model.iter().copied());
    (set, model)
}

fn assert_matches_model(set: &AtomSet, model: &BTreeSet<usize>, what: &str, cap: usize) {
    assert_eq!(set.count(), model.len(), "{what}: count at capacity {cap}");
    assert_eq!(
        set.is_empty(),
        model.is_empty(),
        "{what}: is_empty at capacity {cap}"
    );
    let got: Vec<usize> = set.iter().collect();
    let want: Vec<usize> = model.iter().copied().collect();
    assert_eq!(got, want, "{what}: iteration at capacity {cap}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every `AtomSet` operation agrees with the `BTreeSet` model at
    /// every boundary capacity — the same random draw is replayed at
    /// each capacity, so all four width classes are checked against the
    /// same reference each case.
    #[test]
    fn operations_match_set_model_at_boundary_capacities(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for &cap in BOUNDARY_CAPS {
            let (a, ma) = random_model(&mut rng, cap, 0.3);
            let (b, mb) = random_model(&mut rng, cap, 0.3);
            let (e, me) = random_model(&mut rng, cap, 0.2);

            assert_matches_model(&a.union(&b), &(&ma | &mb), "union", cap);
            assert_matches_model(&a.intersect(&b), &(&ma & &mb), "intersect", cap);
            assert_matches_model(&a.difference(&b), &(&ma - &mb), "difference", cap);
            prop_assert_eq!(a.is_subset(&b), ma.is_subset(&mb), "is_subset at {}", cap);
            prop_assert_eq!(a.intersects(&b), !(&ma & &mb).is_empty(), "intersects at {}", cap);
            prop_assert_eq!(
                a.intersects_excluding(&b, &e),
                !(&(&ma & &mb) - &me).is_empty(),
                "intersects_excluding at {}", cap
            );

            // fused kernels vs their composed equivalents
            let mut fused = a.clone();
            let grew = fused.union_with_changed(&b);
            prop_assert_eq!(&fused, &a.union(&b), "union_with_changed result at {}", cap);
            prop_assert_eq!(grew, !mb.is_subset(&ma), "union_with_changed grew at {}", cap);
            let mut fused = a.clone();
            fused.union_andnot(&b, &e);
            prop_assert_eq!(&fused, &a.union(&b.difference(&e)), "union_andnot at {}", cap);

            // tail-word hygiene: the full set is exact, its complement
            // of anything stays inside the universe
            let full = AtomSet::full(cap);
            prop_assert_eq!(full.count(), cap, "full().count() at {}", cap);
            prop_assert_eq!(full.iter().max(), Some(cap - 1), "full().iter() max at {}", cap);
            prop_assert_eq!(&full.union(&a), &full, "full ∪ a at {}", cap);
            assert_matches_model(
                &full.difference(&a),
                &(&(0..cap).collect::<BTreeSet<_>>() - &ma),
                "complement",
                cap,
            );

            // single-bit traffic at the last (tail-masked) index
            let mut edge = a.clone();
            edge.insert(cap - 1);
            prop_assert!(edge.contains(cap - 1));
            edge.remove(cap - 1);
            prop_assert!(!edge.contains(cap - 1));
            let mut expect = ma.clone();
            expect.remove(&(cap - 1));
            assert_matches_model(&edge, &expect, "insert/remove edge bit", cap);
        }
    }

    /// The same logical set embedded at every boundary capacity behaves
    /// identically no matter which width class hosts it.
    #[test]
    fn classes_agree_on_embedded_sets(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // indices fit the smallest capacity so every class can hold them
        let lo: BTreeSet<usize> = (0..63).filter(|_| rng.gen_bool(0.3)).collect();
        let hi: BTreeSet<usize> = (0..63).filter(|_| rng.gen_bool(0.3)).collect();
        let reference: Vec<usize> = (&lo | &hi).into_iter().collect();
        for &cap in BOUNDARY_CAPS {
            let a = AtomSet::from_indices(cap, lo.iter().copied());
            let b = AtomSet::from_indices(cap, hi.iter().copied());
            let got: Vec<usize> = a.union(&b).iter().collect();
            prop_assert_eq!(&got, &reference, "embedded union at capacity {}", cap);
            prop_assert_eq!(
                a.is_subset(&b),
                lo.is_subset(&hi),
                "embedded is_subset at capacity {}", cap
            );
            prop_assert_eq!(a.count(), lo.len(), "embedded count at capacity {}", cap);
        }
    }
}

/// The worklist engine and the paper-order pass engine stay bit-for-bit
/// identical on random workloads whose universes straddle every width
/// class — the w2-only legacy sizes are covered by `tests/crossval.rs`,
/// this pins the w4/w8/heap kernels and the hand-offs between them.
#[test]
fn engines_agree_across_width_classes() {
    for &atoms in &[63usize, 65, 127, 129, 255, 257, 511, 513] {
        let mut rng = StdRng::seed_from_u64(atoms as u64);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        assert_eq!(alg.width_class(), class_for(atoms), "|N| = {atoms}");
        let sigma = nalist::gen::random_sigma(
            &mut rng,
            &alg,
            &nalist::gen::SigmaConfig {
                count: 12,
                ..Default::default()
            },
        );
        for q in 0..3 {
            let x = nalist::gen::random_subattr(&mut rng, &alg, 0.3);
            let fast = closure_and_basis(&alg, &sigma, &x);
            let paper = closure_and_basis_paper(&alg, &sigma, &x);
            assert_eq!(
                fast,
                paper,
                "engines disagree at |N| = {atoms} (query {q}, X = {})",
                alg.render(&x)
            );
        }
    }
}
