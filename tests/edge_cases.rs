//! Edge cases and failure injection across the whole stack: degenerate
//! attributes, deep nesting, witness limits, duplicate/trivial `Σ`
//! members, and corrupted certificates.

use nalist::membership::witness::{combination_instance, WitnessError, MAX_FREE_BLOCKS};
use nalist::prelude::*;

// ----------------------------------------------------------- degenerate N

#[test]
fn lambda_attribute_has_trivial_theory() {
    // N = λ: Sub(N) = {λ}, everything is trivially implied.
    let n = NestedAttr::Null;
    let r = Reasoner::new(&n);
    assert!(r.implies_str("λ -> λ").unwrap());
    assert!(r.implies_str("λ ->> λ").unwrap());
    let alg = r.algebra();
    assert_eq!(alg.atom_count(), 0);
    let basis = closure_and_basis(alg, &[], &alg.bottom_set());
    assert!(basis.closure.is_empty());
    assert!(basis.blocks.is_empty());
}

#[test]
fn single_flat_attribute() {
    let n = parse_attr("A").unwrap();
    let r = Reasoner::new(&n);
    assert!(!r.implies_str("λ -> A").unwrap());
    assert!(r.implies_str("A -> A").unwrap());
    assert!(r.implies_str("λ ->> A").unwrap()); // X ⊔ Y = N
}

#[test]
fn single_information_less_list() {
    // N = L[λ]: one atom, and it is maximal.
    let n = parse_attr("L[λ]").unwrap();
    let alg = Algebra::new(&n);
    assert_eq!(alg.atom_count(), 1);
    assert!(alg.atom(0).maximal);
    // its domain is the list lengths; the shape FD λ → L[λ] is refutable
    let d = Dependency::parse(&n, "λ -> L[λ]")
        .unwrap()
        .compile(&alg)
        .unwrap();
    let w = refute(&alg, &[], &d).unwrap().unwrap();
    assert_eq!(w.instance.len(), 2);
}

// ----------------------------------------------------------- deep nesting

fn deep_list_chain(depth: usize) -> NestedAttr {
    let mut n = NestedAttr::flat("A");
    for i in 0..depth {
        n = NestedAttr::list(format!("L{i}"), n);
    }
    n
}

#[test]
fn deep_list_chain_algebra() {
    let depth = 300;
    let n = deep_list_chain(depth);
    assert_eq!(n.basis_size(), depth + 1);
    let alg = Algebra::new(&n);
    assert_eq!(alg.atom_count(), depth + 1);
    // exactly one maximal atom: the flat leaf
    assert_eq!(alg.max_mask().count(), 1);
    // the downward closure of the leaf is the whole chain
    let leaf = alg.downward_closure(&AtomSet::from_indices(alg.atom_count(), [depth]));
    assert_eq!(leaf.count(), depth + 1);
    // parser round-trip at depth: beyond the default nesting cap, so the
    // explicit opt-out via `ParseLimits` is required
    let printed = n.to_string();
    assert!(matches!(
        parse_attr(&printed),
        Err(ParseError::TooDeep { .. })
    ));
    let limits = ParseLimits { max_depth: depth };
    assert_eq!(parse_attr_with(&printed, limits).unwrap(), n);
}

#[test]
fn deep_chain_closure_and_mixed_meet() {
    // λ ↠ (chain cut at level k) functionally determines everything the
    // RHS does not possess — i.e. all shallower list shapes.
    let n = deep_list_chain(40);
    let alg = Algebra::new(&n);
    // RHS: the chain cut just above the leaf (atoms 0..=39, leaf absent)
    let rhs = AtomSet::from_indices(alg.atom_count(), 0..40);
    assert!(alg.is_downward_closed(&rhs));
    let sigma = vec![CompiledDep::mvd(alg.bottom_set(), rhs.clone())];
    let basis = closure_and_basis(&alg, &sigma, &alg.bottom_set());
    // Y ⊓ Y^C = Y (every atom of Y has the leaf above it, outside Y)
    assert_eq!(basis.closure, rhs);
}

#[test]
fn deep_projection_and_satisfaction() {
    let n = deep_list_chain(60);
    let alg = Algebra::new(&n);
    // one nested value: [[[…[a]…]]] with a single element at each level
    let mut v = Value::str("a");
    for _ in 0..60 {
        v = Value::list(vec![v]);
    }
    let mut r = Instance::new(n.clone());
    r.insert(v).unwrap();
    let shape = alg.to_attr(&AtomSet::from_indices(alg.atom_count(), [0]));
    let p = r.project(&shape).unwrap();
    assert_eq!(p.len(), 1);
    // a singleton instance satisfies anything
    let d = Dependency::parse(&n, "λ -> L59[λ]").unwrap();
    assert!(r.satisfies_dep(&alg, &d).unwrap());
}

// ----------------------------------------------------------- witness limits

#[test]
fn witness_block_limit_enforced() {
    // a flat schema with MAX_FREE_BLOCKS + 2 attributes and empty Σ from
    // X = {A0} would need 2^(k) tuples beyond the limit once every
    // attribute is its own block
    let width = MAX_FREE_BLOCKS + 2;
    let attr = nalist::gen::flat_attr(width);
    let alg = Algebra::new(&attr);
    // Σ: A0 ↠ Ai for every i — splits the complement into singletons
    let mut sigma = Vec::new();
    for i in 1..width {
        let mut lhs = alg.bottom_set();
        lhs.insert(0);
        let mut rhs = alg.bottom_set();
        rhs.insert(i);
        sigma.push(CompiledDep::mvd(lhs, rhs));
    }
    let mut x = alg.bottom_set();
    x.insert(0);
    let basis = closure_and_basis(&alg, &sigma, &x);
    assert!(basis.free_blocks().len() > MAX_FREE_BLOCKS);
    match combination_instance(&alg, &basis) {
        Err(WitnessError::TooManyBlocks { blocks }) => assert!(blocks > MAX_FREE_BLOCKS),
        other => panic!("expected TooManyBlocks, got {other:?}"),
    }
}

// ----------------------------------------------------------- Σ pathologies

#[test]
fn duplicate_and_trivial_sigma_members() {
    let n = parse_attr("L(A, B, C)").unwrap();
    let mut r = Reasoner::new(&n);
    for _ in 0..3 {
        r.add_str("L(A) -> L(B)").unwrap(); // duplicates
    }
    r.add_str("L(A, B) -> L(A)").unwrap(); // trivial
    r.add_str("L(A) ->> L(B, C)").unwrap(); // trivial (X ⊔ Y = N)
    assert!(r.implies_str("L(A) -> L(B)").unwrap());
    assert!(!r.implies_str("L(A) -> L(C)").unwrap());
    // minimal cover collapses all of it to one dependency
    let cover = minimal_cover(r.algebra(), r.compiled_sigma());
    assert_eq!(cover.len(), 1);
}

#[test]
fn self_referential_dependency() {
    let n = parse_attr("L(A, B)").unwrap();
    let mut r = Reasoner::new(&n);
    r.add_str("L(A) -> L(A)").unwrap();
    r.add_str("L(A) ->> L(A)").unwrap();
    assert!(!r.implies_str("L(A) -> L(B)").unwrap());
}

#[test]
fn large_sigma_terminates_quickly() {
    // 200 dependencies over 40 atoms: still instant (polynomial)
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let n = nalist::gen::attr_with_atoms(&mut rng, 40);
    let alg = Algebra::new(&n);
    let sigma = nalist::gen::random_sigma(
        &mut rng,
        &alg,
        &nalist::gen::SigmaConfig {
            count: 200,
            ..Default::default()
        },
    );
    let start = std::time::Instant::now();
    for _ in 0..4 {
        let x = nalist::gen::random_subattr(&mut rng, &alg, 0.2);
        let _ = closure_and_basis(&alg, &sigma, &x);
    }
    assert!(start.elapsed().as_secs() < 10);
}

// ----------------------------------------------------------- failure injection

#[test]
fn corrupted_certificates_rejected() {
    use nalist::deps::{DagNode, Rule};
    let n = parse_attr("L(A, B, C)").unwrap();
    let alg = Algebra::new(&n);
    let sigma = vec![
        Dependency::parse(&n, "L(A) -> L(B)")
            .unwrap()
            .compile(&alg)
            .unwrap(),
        Dependency::parse(&n, "L(B) -> L(C)")
            .unwrap()
            .compile(&alg)
            .unwrap(),
    ];
    let target = Dependency::parse(&n, "L(A) -> L(C)")
        .unwrap()
        .compile(&alg)
        .unwrap();
    let dag = certify(&alg, &sigma, &target).unwrap().unwrap();
    assert!(dag.check(&alg, &sigma).is_ok());

    // mutate each node's conclusion in turn: the checker must catch every
    // corruption that actually changes a conclusion
    for i in 0..dag.len() {
        let mut bad = dag.clone();
        match &mut bad.nodes[i] {
            DagNode::Premise { dep, .. }
            | DagNode::Step {
                conclusion: dep, ..
            } => {
                // flip the kind — always a semantic change
                *dep = match dep.kind {
                    DepKind::Fd => CompiledDep::mvd(dep.lhs.clone(), dep.rhs.clone()),
                    DepKind::Mvd => CompiledDep::fd(dep.lhs.clone(), dep.rhs.clone()),
                };
            }
        }
        // either the mutated node itself fails, or a later node consuming
        // it fails; never an Ok with the original conclusion
        if let Ok(root) = bad.check(&alg, &sigma) {
            assert_ne!(root, &target, "corruption at node {i} undetected");
        }
    }

    // swapping the premise list out from under the proof is caught
    let wrong_sigma = vec![Dependency::parse(&n, "L(C) -> L(B)")
        .unwrap()
        .compile(&alg)
        .unwrap()];
    assert!(dag.check(&alg, &wrong_sigma).is_err());

    // a forged rule name is caught
    let mut forged = dag.clone();
    for node in &mut forged.nodes {
        if let DagNode::Step { rule, .. } = node {
            *rule = Rule::MixedMeet; // nonsense for FD-only derivations
        }
    }
    assert!(forged.check(&alg, &sigma).is_err());
}

#[test]
fn witness_verification_catches_tampering() {
    // refute() verifies internally; simulate tampering by checking that a
    // doctored instance would indeed fail the checks refute performs
    let n = parse_attr("L(A, B, C)").unwrap();
    let alg = Algebra::new(&n);
    let sigma = vec![Dependency::parse(&n, "L(A) -> L(B)")
        .unwrap()
        .compile(&alg)
        .unwrap()];
    let target = Dependency::parse(&n, "L(A) -> L(C)")
        .unwrap()
        .compile(&alg)
        .unwrap();
    let w = refute(&alg, &sigma, &target).unwrap().unwrap();
    let mut tampered = Instance::new(n.clone());
    for t in w.instance.iter() {
        tampered.insert(t.clone()).unwrap();
    }
    // add a tuple violating Σ: same A, different B
    tampered.insert_str("(v0_0, zzz, v2_0)").unwrap();
    assert!(!tampered.satisfies_all(&alg, &sigma));
}

// ----------------------------------------------------------- misc API edges

#[test]
fn closure_of_top_and_bottom() {
    let n = parse_attr("L(A, M[B], C)").unwrap();
    let alg = Algebra::new(&n);
    let sigma = vec![Dependency::parse(&n, "L(A) -> L(C)")
        .unwrap()
        .compile(&alg)
        .unwrap()];
    let top = closure_and_basis(&alg, &sigma, &alg.top_set());
    assert_eq!(top.closure, alg.top_set());
    let bottom = closure_and_basis(&alg, &sigma, &alg.bottom_set());
    assert!(bottom.closure.is_empty());
    // bottom's block structure: one block per... at minimum it covers all
    // maximal atoms
    let mut covered = alg.bottom_set();
    for w in &bottom.blocks {
        covered.union_with(&alg.maximal_atoms_of(w));
    }
    assert_eq!(covered, *alg.max_mask());
}

#[test]
fn unicode_names_throughout() {
    let n = parse_attr("Bücher(Autor, Kapitel[Überschrift])").unwrap();
    let mut r = Reasoner::new(&n);
    r.add_str("Bücher(Autor) -> Bücher(Kapitel[λ])").unwrap();
    assert!(r
        .implies_str("Bücher(Autor) ->> Bücher(Kapitel[λ])")
        .unwrap());
    let mut inst = Instance::new(n.clone());
    inst.insert_str("(Gœthe, [Götterfunken])").unwrap();
    assert_eq!(inst.len(), 1);
}

#[test]
fn empty_sigma_files_work_end_to_end() {
    let n = parse_attr("L(A, B)").unwrap();
    let r = Reasoner::new(&n);
    assert!(!r.implies_str("L(A) -> L(B)").unwrap());
    assert_eq!(r.closure_str("L(A)").unwrap().to_string(), "L(A, λ)");
    let cert = certified_closure_and_basis(
        r.algebra(),
        r.compiled_sigma(),
        &r.algebra()
            .from_attr(&parse_subattr_of(&n, "L(A)").unwrap())
            .unwrap(),
    )
    .unwrap();
    cert.dag.check(r.algebra(), r.compiled_sigma()).unwrap();
}
