//! Every worked example, figure, and concrete claim in the paper,
//! reproduced exactly (experiments E-FIG1, E-FIG2, E-EX42, E-EX45, E-EX48,
//! E-EX51/E-FIG3/E-FIG4 of DESIGN.md).

use nalist::algebra::lattice::{enumerate_sets, hasse_edges, sub_count};
use nalist::algebra::laws::verify_brouwerian;
use nalist::algebra::render::{basis_listing, full_lattice_dot};
use nalist::membership::trace::{render_result, render_trace};
use nalist::prelude::*;

// ---------------------------------------------------------------- Figure 1

#[test]
fn fig1_lattice() {
    // The Brouwerian algebra of J[K(A, L[M(B, C)])]: 11 elements,
    // verified to satisfy all Brouwerian laws; DOT regenerates the figure.
    let n = parse_attr("J[K(A, L[M(B, C)])]").unwrap();
    assert_eq!(sub_count(&n), 11);
    let alg = Algebra::new(&n);
    let sets = enumerate_sets(&alg);
    assert_eq!(sets.len(), 11);
    verify_brouwerian(&alg, &sets).unwrap();
    let edges = hasse_edges(&sets);
    // hand-derived cover count for this lattice (atom poset J below
    // everything, L below B and C): 16 covering pairs
    assert_eq!(edges.len(), 16);
    let dot = full_lattice_dot(&alg);
    assert!(dot.contains("J[K(A, L[M(B, C)])]"));
    assert!(dot.contains('λ'));
}

#[test]
fn fig1_non_boolean() {
    // Sub(N) is not Boolean: the paper's Y = L[λ] example on N = L[A].
    let n = parse_attr("L[A]").unwrap();
    let alg = Algebra::new(&n);
    let y = alg
        .from_attr(&parse_subattr_of(&n, "L[λ]").unwrap())
        .unwrap();
    let yc = alg.compl(&y);
    assert_eq!(alg.render(&yc), "L[A]"); // Y^C = N
    assert_eq!(alg.meet(&y, &yc), y); // Y ⊓ Y^C = Y ≠ λ
    assert!(!alg.meet(&y, &yc).is_empty());
    assert!(alg.cc(&y).is_empty()); // Y^CC = λ ≠ Y
}

// ---------------------------------------------------------------- Figure 2 / Example 4.12

#[test]
fn fig2_possession() {
    let n = parse_attr("K[L(M[N'(A, B)], C)]").unwrap();
    let alg = Algebra::new(&n);
    // SubB(N): K[λ], K[L(M[λ])], K[L(M[N'(A)])], K[L(M[N'(B)])], K[L(C)]
    let rendered: Vec<String> = alg
        .atoms()
        .iter()
        .map(|a| nalist::types::display::abbreviate(&a.attr, &n))
        .collect();
    assert_eq!(
        rendered,
        vec![
            "K[λ]",
            "K[L(M[λ])]",
            "K[L(M[N'(A)])]",
            "K[L(M[N'(B)])]",
            "K[L(C)]"
        ]
    );
    // Example 4.12: X = K[L(M[N'(A, B)], λ)] possesses K[L(M[λ])] but not K[λ].
    let x = alg
        .from_attr(&parse_subattr_of(&n, "K[L(M[N'(A, B)], λ)]").unwrap())
        .unwrap();
    assert!(alg.possessed_by(1, &x)); // M-atom
    assert!(!alg.possessed_by(0, &x)); // K-atom
    let listing = basis_listing(&alg, Some(&x));
    assert!(listing.contains("K[λ] [non-maximal] — in X, not possessed by X"));
    assert!(listing.contains("K[L(M[λ])] [non-maximal] — in X, possessed by X"));
}

// ---------------------------------------------------------------- Example 4.2

fn pubcrawl() -> (NestedAttr, Algebra, Instance) {
    let s = nalist::gen::scenarios::pubcrawl();
    let alg = Algebra::new(&s.attr);
    (s.attr, alg, s.instance)
}

#[test]
fn pubcrawl_verdicts() {
    let (n, alg, r) = pubcrawl();
    assert_eq!(r.len(), 7);
    let check = |src: &str| {
        let d = Dependency::parse(&n, src).unwrap();
        r.satisfies_dep(&alg, &d).unwrap()
    };
    // "Obviously, the FD Person → Visit[Drink(Pub)] is not satisfied by r"
    assert!(!check("Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"));
    // "neither is the FD Person → Visit[Drink(Beer)]"
    assert!(!check("Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Beer)])"));
    // "However, ⊨_r Person ↠ Visit[Drink(Pub)]"
    assert!(check("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"));
    // "Note that ⊨_r Person → Visit[λ] holds" — the person determines the
    // number of bars visited
    assert!(check("Pubcrawl(Person) -> Pubcrawl(Visit[λ])"));
}

// ---------------------------------------------------------------- Example 4.5

#[test]
fn pubcrawl_decomposition() {
    let (n, alg, r) = pubcrawl();
    let d = Dependency::parse(&n, "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
        .unwrap()
        .compile(&alg)
        .unwrap();
    let (pub_side, beer_side) = binary_split(&alg, &d);
    assert_eq!(alg.render(&pub_side), "Pubcrawl(Person, Visit[Drink(Pub)])");
    assert_eq!(
        alg.render(&beer_side),
        "Pubcrawl(Person, Visit[Drink(Beer)])"
    );

    // the paper lists the two projections explicitly: 5 beer-side tuples,
    // 4 pub-side tuples
    let beer_proj = r.project(&alg.to_attr(&beer_side)).unwrap();
    let pub_proj = r.project(&alg.to_attr(&pub_side)).unwrap();
    assert_eq!(beer_proj.len(), 5);
    assert_eq!(pub_proj.len(), 4);
    // spot-check two of the paper's listed projection tuples
    assert!(beer_proj
        .iter()
        .any(|t| t.to_string() == "(Sven, [(Lübzer, ok), (Kindl, ok)])"
            || t.to_string() == "(Sven, [(Lübzer), (Kindl)])"));
    // Theorem 4.4: the join reconstructs r exactly
    assert!(verify_lossless(&alg, &r, &[pub_side, beer_side]).unwrap());
}

// ---------------------------------------------------------------- Example 4.8

#[test]
fn ex48_basis() {
    let n = parse_attr("A'(B, C[D(E, F[G])])").unwrap();
    let alg = Algebra::new(&n);
    let rendered: Vec<String> = alg
        .atoms()
        .iter()
        .map(|a| nalist::types::display::abbreviate(&a.attr, &n))
        .collect();
    // paper: SubB = {A(B), A(C[λ]), A(C[D(F[λ])]), A(C[D(E)]), A(C[D(F[G])])}
    assert_eq!(rendered.len(), 5);
    for expected in [
        "A'(B)",
        "A'(C[λ])",
        "A'(C[D(F[λ])])",
        "A'(C[D(E)])",
        "A'(C[D(F[G])])",
    ] {
        assert!(
            rendered.contains(&expected.to_string()),
            "{expected} missing"
        );
    }
    // maximal: A(B), A(C[D(E)]), A(C[D(F[G])]); non-maximal: the list atoms
    let maximal: Vec<String> = alg
        .atoms()
        .iter()
        .filter(|a| a.maximal)
        .map(|a| nalist::types::display::abbreviate(&a.attr, &n))
        .collect();
    assert_eq!(maximal, vec!["A'(B)", "A'(C[D(E)])", "A'(C[D(F[G])])"]);
}

// ---------------------------------------------------------------- Example 5.1 / Figures 3–4

fn example_51() -> (NestedAttr, Algebra, Vec<CompiledDep>, AtomSet) {
    let n =
        parse_attr("L1(L2[L3[L4(A, B, C)]], L5[L6(D, E)], L7(F, L8[L9(G, L10[H])], I))").unwrap();
    let alg = Algebra::new(&n);
    let sigma: Vec<CompiledDep> = [
        "L1(L5[λ], L7(F, L8[L9(G)], I)) ->> L1(L2[L3[L4(C)]], L5[L6(E)])",
        "L1(L2[L3[λ]], L7(F)) -> L1(L2[L3[L4(A)]], L7(L8[L9(G)], I))",
        "L1(L7(F, L8[L9(L10[λ])])) ->> L1(L2[L3[λ]], L5[L6(D)])",
    ]
    .iter()
    .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
    .collect();
    let x = alg
        .from_attr(&parse_subattr_of(&n, "L1(L7(F, L8[L9(L10[H])]))").unwrap())
        .unwrap();
    (n, alg, sigma, x)
}

#[test]
fn example_51_closure_and_basis() {
    let (_, alg, sigma, x) = example_51();
    let basis = closure_and_basis(&alg, &sigma, &x);
    // paper: X+_alg = L1(L2[L3[L4(A)]], L5[λ], L7(F, L8[L9(G, L10[H])], I))
    assert_eq!(
        alg.render(&basis.closure),
        "L1(L2[L3[L4(A)]], L5[λ], L7(F, L8[L9(G, L10[H])], I))"
    );
    // paper: DepB_alg(X) has exactly these 13 elements
    let rendered: Vec<String> = basis.basis.iter().map(|b| alg.render(b)).collect();
    let expected = [
        "L1(L2[λ])",
        "L1(L2[L3[λ]])",
        "L1(L2[L3[L4(A)]])",
        "L1(L5[λ])",
        "L1(L7(F))",
        "L1(L7(L8[λ]))",
        "L1(L7(L8[L9(G)]))",
        "L1(L7(L8[L9(L10[λ])]))",
        "L1(L7(L8[L9(L10[H])]))",
        "L1(L7(I))",
        "L1(L5[L6(D)])",
        "L1(L2[L3[L4(B)]])",
        "L1(L2[L3[L4(C)]], L5[L6(E)])",
    ];
    assert_eq!(rendered.len(), expected.len());
    for e in expected {
        assert!(rendered.contains(&e.to_string()), "missing {e}");
    }
}

#[test]
fn example_51_full_trace() {
    // Figure 3 (initialisation), both passes' intermediate states, and
    // Figure 4 (final state), compared against the paper's text.
    let (_, alg, sigma, x) = example_51();
    let (basis, trace) = closure_and_basis_traced(&alg, &sigma, &x);
    let rendered = render_trace(&alg, &sigma, &trace);

    // initialisation (Figure 3): X_new = X and the three initial blocks
    assert!(rendered.contains("X_new = L1(L7(F, L8[L9(L10[H])]))"));
    assert!(rendered.contains(
        "DB_new = {L1(L7(F)); L1(L7(L8[L9(L10[H])])); \
         L1(L2[L3[L4(A, B, C)]], L5[L6(D, E)], L7(L8[L9(G)], I))}"
    ));

    // pass 1 (i)/(ii): Ū is the big block, Ṽ = λ, no changes
    assert!(rendered.contains("Ū = L1(L2[L3[L4(A, B, C)]], L5[L6(D, E)], L7(L8[L9(G)], I)), Ṽ = λ"));
    assert!(rendered.contains("no changes"));

    // pass 1 (iii): U3 ↠ V3 fires
    assert!(rendered.contains("X_new = L1(L2[L3[λ]], L5[λ], L7(F, L8[L9(L10[H])]))"));
    assert!(rendered.contains("L1(L5[L6(D)])"));
    assert!(rendered.contains("L1(L2[L3[L4(A, B, C)]], L5[L6(E)], L7(L8[L9(G)], I))"));

    // pass 2 (i): U2 → V2 fires
    assert!(rendered.contains("X_new = L1(L2[L3[L4(A)]], L5[λ], L7(F, L8[L9(G, L10[H])], I))"));
    assert!(rendered.contains("L1(L2[L3[L4(B, C)]], L5[L6(E)])"));

    // pass 2 (ii): U1 ↠ V1 splits {B,C,E} into {B} and {C,E}
    assert!(rendered.contains("L1(L2[L3[L4(B)]])"));
    assert!(rendered.contains("L1(L2[L3[L4(C)]], L5[L6(E)])"));

    // exactly three passes: two changing + one fixpoint confirmation
    assert_eq!(trace.passes.len(), 3);
    assert!(trace.passes[2].iter().all(|s| !s.changed));

    // final result (Figure 4)
    let result = render_result(&alg, &basis);
    assert!(result.starts_with("X+ = L1(L2[L3[L4(A)]], L5[λ], L7(F, L8[L9(G, L10[H])], I))"));
}

#[test]
fn example_51_membership_queries() {
    // Proposition 4.10 applied to the computed dependency basis.
    let (n, alg, sigma, x) = example_51();
    let basis = closure_and_basis(&alg, &sigma, &x);
    let sub = |s: &str| alg.from_attr(&parse_subattr_of(&n, s).unwrap()).unwrap();
    // FD: anything below X+ follows
    assert!(basis.fd_derivable(&sub("L1(L2[L3[L4(A)]], L7(I))")));
    assert!(!basis.fd_derivable(&sub("L1(L2[L3[L4(B)]])")));
    // MVD: unions of basis elements follow
    assert!(basis.mvd_derivable(&sub("L1(L2[L3[L4(B)]])")));
    assert!(basis.mvd_derivable(&sub("L1(L2[L3[L4(C)]], L5[L6(E)])")));
    assert!(basis.mvd_derivable(&sub("L1(L2[L3[L4(B)]], L5[L6(D)])")));
    // but splitting the {C, E} block is not derivable
    assert!(!basis.mvd_derivable(&sub("L1(L2[L3[L4(C)]])")));
    assert!(!basis.mvd_derivable(&sub("L1(L5[L6(E)])")));
}

// ---------------------------------------------------------------- abbreviation conventions (§3.3)

#[test]
fn section_33_abbreviations() {
    let n = parse_attr("L1(A, B, L2[L3(C, D)])").unwrap();
    let x = parse_subattr_of(&n, "L1(A, L2[λ])").unwrap();
    assert_eq!(x.to_string(), "L1(A, λ, L2[L3(λ, λ)])");
    assert_eq!(nalist::types::display::abbreviate(&x, &n), "L1(A, L2[λ])");

    // "the subattribute L(A, λ) of L(A, A) cannot be abbreviated by L(A)"
    let m = parse_attr("L(A, A)").unwrap();
    let y = NestedAttr::record("L", vec![NestedAttr::flat("A"), NestedAttr::Null]).unwrap();
    assert_eq!(nalist::types::display::abbreviate(&y, &m), "L(A, λ)");
}
