//! An empirical study of the paper's Section 7 open question: *"The
//! inference rules from Theorem 4.6 are expected to be redundant. A
//! detailed study of minimal sets of inference rules … was outside the
//! scope of this paper."*
//!
//! For every rule `R` we saturate a battery of small workloads under the
//! full calculus and under the calculus minus `R`. A lost derivation
//! witnesses necessity (relative to the other thirteen); identical
//! closures everywhere are evidence of redundancy.
//!
//! ## Findings (see EXPERIMENTS.md, E-MINRULES)
//!
//! With this library's **generalised coalescence rule**
//! (`W ≤ X ⊔ Y^C` instead of the relational `W ⊓ Y = λ`), the calculus
//! is far more redundant than the relational intuition suggests:
//!
//! * **necessary on the battery**: complementation, MVD transitivity,
//!   implication, coalescence, multi-valued join;
//! * **empirically redundant**: even the FD reflexivity axiom (derivable
//!   from `X ↠ Y ⊢ X → Y⊓Y^C`-style bottom FDs plus extension), FD
//!   transitivity (bypassed through complementation + generalised
//!   coalescence), and — remarkably — the **mixed meet rule itself**:
//!   generalised coalescence with a trivial FD premise
//!   (`Z ≤ Y`, `Z = W ≤ X ⊔ Y^C`) reproduces exactly the mixed-meet
//!   conclusion. The paper's pairing (relational-style coalescence +
//!   mixed meet) and ours (generalised coalescence) are two different
//!   axiomatisations of the same closure.

use nalist::deps::naive::{NaiveClosure, NaiveConfig};
use nalist::deps::rules::{Rule, ALL_RULES};
use nalist::prelude::*;
use std::collections::BTreeSet;

fn battery() -> Vec<(Algebra, Vec<CompiledDep>)> {
    let mut out = Vec::new();
    for (attr, deps) in [
        ("L(A, B, C)", vec!["L(A) -> L(B)", "L(B) -> L(C)"]),
        ("L(A, B, C)", vec!["L(A) ->> L(B)", "L(C) -> L(B)"]),
        ("L(A, B, C, D)", vec!["L(A) ->> L(B)", "L(B) ->> L(C)"]),
        ("L[A]", vec!["λ ->> L[λ]"]),
        ("L(A, M[B])", vec!["L(A) ->> L(M[B])"]),
        (
            "K[L(M[A], B)]",
            vec!["K[L(B)] ->> K[L(M[A])]", "K[λ] -> K[L(B)]"],
        ),
        (
            "L(M[A], P[B])",
            vec!["L(M[λ]) ->> L(P[B])", "L(P[λ]) -> L(M[λ])"],
        ),
    ] {
        let n = parse_attr(attr).unwrap();
        let alg = Algebra::new(&n);
        let sigma: Vec<CompiledDep> = deps
            .iter()
            .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
            .collect();
        out.push((alg, sigma));
    }
    out
}

fn closure_set(alg: &Algebra, sigma: &[CompiledDep], rules: Vec<Rule>) -> BTreeSet<CompiledDep> {
    let cfg = NaiveConfig {
        rules,
        ..NaiveConfig::default()
    };
    NaiveClosure::compute(alg, sigma, cfg)
        .expect("battery inputs are small")
        .all()
        .into_iter()
        .collect()
}

/// Returns `Some(workload index)` witnessing necessity, `None` if the
/// rule is redundant on the whole battery.
fn necessity(rule: Rule) -> Option<usize> {
    for (i, (alg, sigma)) in battery().iter().enumerate() {
        let full = closure_set(alg, sigma, ALL_RULES.to_vec());
        let without = closure_set(
            alg,
            sigma,
            ALL_RULES.iter().copied().filter(|r| *r != rule).collect(),
        );
        assert!(
            without.is_subset(&full),
            "removing a rule must not add derivations"
        );
        if without != full {
            return Some(i);
        }
    }
    None
}

#[test]
fn classification_matches_findings() {
    let necessary: Vec<&str> = ALL_RULES
        .iter()
        .filter(|r| necessity(**r).is_some())
        .map(|r| r.name())
        .collect();
    assert_eq!(
        necessary,
        vec![
            "complementation rule",
            "MVD transitivity rule",
            "implication rule",
            "coalescence rule",
            "multi-valued join rule",
        ],
        "the battery's necessity classification changed — update the study"
    );
}

#[test]
fn mixed_meet_subsumed_by_generalised_coalescence() {
    // λ → L[λ] from λ ↠ L[λ]: derivable WITHOUT the mixed meet rule,
    // because generalised coalescence with the trivial premise
    // L[λ] → L[λ] (Z = W = L[λ], W ≤ X ⊔ Y^C = N) concludes it directly.
    let n = parse_attr("L[A]").unwrap();
    let alg = Algebra::new(&n);
    let sigma = vec![Dependency::parse(&n, "λ ->> L[λ]")
        .unwrap()
        .compile(&alg)
        .unwrap()];
    let target = Dependency::parse(&n, "λ -> L[λ]")
        .unwrap()
        .compile(&alg)
        .unwrap();
    let without_mixed = closure_set(
        &alg,
        &sigma,
        ALL_RULES
            .iter()
            .copied()
            .filter(|r| *r != Rule::MixedMeet)
            .collect(),
    );
    assert!(without_mixed.contains(&target));
    // but dropping BOTH coalescence and mixed meet loses the inference —
    // the two rules are the two interchangeable carriers of the
    // list-specific power
    let without_both = closure_set(
        &alg,
        &sigma,
        ALL_RULES
            .iter()
            .copied()
            .filter(|r| *r != Rule::MixedMeet && *r != Rule::Coalescence)
            .collect(),
    );
    assert!(!without_both.contains(&target));
}

#[test]
fn fd_reflexivity_derivable_from_the_rest() {
    // X → Y for Y ≤ X without the FD reflexivity axiom: MVD reflexivity
    // gives X ↠ Y'; mixed meet / coalescence give bottom FDs; extension
    // rebuilds arbitrary reflexive FDs. Verified by closure equality:
    let (alg, sigma) = &battery()[0];
    let full = closure_set(alg, sigma, ALL_RULES.to_vec());
    let without = closure_set(
        alg,
        sigma,
        ALL_RULES
            .iter()
            .copied()
            .filter(|r| *r != Rule::FdReflexivity)
            .collect(),
    );
    assert_eq!(full, without);
}

#[test]
fn fd_transitivity_bypassed_via_complementation() {
    // A → C from {A → B, B → C} without FD transitivity: implication
    // lifts A → B to A ↠ B, complementation gives A ↠ {A, C}, and
    // generalised coalescence with B → C (Z = C ≤ {A,C}, W = B ≤ A⊔B)
    // concludes A → C.
    let n = parse_attr("L(A, B, C)").unwrap();
    let alg = Algebra::new(&n);
    let sigma: Vec<CompiledDep> = ["L(A) -> L(B)", "L(B) -> L(C)"]
        .iter()
        .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
        .collect();
    let target = Dependency::parse(&n, "L(A) -> L(C)")
        .unwrap()
        .compile(&alg)
        .unwrap();
    let without = closure_set(
        &alg,
        &sigma,
        ALL_RULES
            .iter()
            .copied()
            .filter(|r| *r != Rule::FdTransitivity)
            .collect(),
    );
    assert!(without.contains(&target));
}

#[test]
fn removing_rules_is_monotone() {
    let (alg, sigma) = &battery()[1];
    let full = closure_set(alg, sigma, ALL_RULES.to_vec());
    let half: Vec<Rule> = ALL_RULES.iter().copied().take(7).collect();
    let small = closure_set(alg, sigma, half);
    assert!(small.is_subset(&full));
    assert!(small.len() < full.len());
}

#[test]
fn the_five_rule_core_is_not_complete_alone() {
    // the five "necessary" rules are each irreplaceable, but they are not
    // jointly sufficient: without reflexivity/extension machinery even
    // trivial dependencies are lost
    let five = vec![
        Rule::MvdComplementation,
        Rule::MvdTransitivity,
        Rule::FdImpliesMvd,
        Rule::Coalescence,
        Rule::MvdJoin,
    ];
    let (alg, sigma) = &battery()[0];
    let full = closure_set(alg, sigma, ALL_RULES.to_vec());
    let core = closure_set(alg, sigma, five);
    assert!(core.len() < full.len());
}
