//! End-to-end properties of the certificate pipeline (experiment E-CERT
//! of DESIGN.md): every engine answer — positive, negative, or a full
//! dependency basis — serialises to a portable JSON certificate that the
//! independent trusted checker accepts; every single-field corruption of
//! such a certificate is rejected; and verdicts are invariant under
//! resource governance.
//!
//! Structured inputs are derived from proptest-generated seeds through
//! the deterministic generators in `nalist-gen`, mirroring
//! `tests/properties.rs`. The golden test at the end pins the exact
//! JSON bytes of one certificate of each kind — regenerate with
//! `UPDATE_GOLDENS=1 cargo test -p nalist --test certificates` after an
//! intentional format change and review the diff.

use nalist::check::{verify, Certificate, CheckError, Report, Verdict};
use nalist::deps::CompiledDep;
use nalist::gen::{certificate_defects, render_sigma, SigmaConfig};
use nalist::membership::cert::{basis_certificate, implied_certificate, refuted_certificate};
use nalist::membership::{certified_closure_and_basis, certify, refute};
use nalist::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random reasoning problem: schema, `Σ`, and their file sources.
struct Problem {
    alg: Algebra,
    sigma: Vec<CompiledDep>,
    schema_src: String,
    deps_src: String,
}

fn problem(rng: &mut StdRng) -> Problem {
    let atoms = rng.gen_range(2..=10);
    let n = nalist::gen::attr_with_atoms(rng, atoms);
    let alg = Algebra::new(&n);
    let cfg = SigmaConfig {
        count: rng.gen_range(1..=4),
        ..SigmaConfig::default()
    };
    let sigma = nalist::gen::random_sigma(rng, &alg, &cfg);
    let schema_src = n.to_string();
    let deps_src = render_sigma(&alg, &sigma);
    Problem {
        alg,
        sigma,
        schema_src,
        deps_src,
    }
}

/// Asks the engine about `query` and emits the matching certificate.
fn certificate_for(p: &Problem, query: &CompiledDep) -> Certificate {
    match refute(&p.alg, &p.sigma, query).expect("refute") {
        Some(witness) => refuted_certificate(&p.alg, &p.sigma, query, &witness),
        None => {
            let dag = certify(&p.alg, &p.sigma, query)
                .expect("certify")
                .expect("implied answers carry a proof");
            implied_certificate(&p.alg, &p.sigma, query, &dag)
        }
    }
}

/// The checker must not accept any single-field mutation of an accepted
/// certificate.
fn assert_all_mutations_rejected(p: &Problem, cert: &Certificate) -> Result<(), TestCaseError> {
    let doc = cert.to_json();
    let defects = certificate_defects(&doc);
    prop_assert!(!defects.is_empty());
    for defect in defects {
        let verdict = match Certificate::from_json(&defect.doc) {
            Err(_) => continue, // rejected at the format layer
            Ok(mutated) => verify(&p.schema_src, &p.deps_src, &mutated, &Budget::unlimited()),
        };
        prop_assert!(
            verdict.is_err(),
            "mutation {} was accepted: {}",
            defect.label,
            defect.doc
        );
    }
    Ok(())
}

/// Verdicts must be invariant under governance: any fuel allowance
/// either reproduces the ungoverned report exactly or fails with a typed
/// resource error — never a different verdict.
fn assert_governance_invariant(
    p: &Problem,
    cert: &Certificate,
    ungoverned: &Report,
) -> Result<(), TestCaseError> {
    for fuel in [0, 1, 10, 1_000, 1_000_000_000] {
        match verify(
            &p.schema_src,
            &p.deps_src,
            cert,
            &Budget::unlimited().with_fuel(fuel),
        ) {
            Ok(report) => prop_assert_eq!(&report, ungoverned),
            Err(e) => prop_assert!(e.is_resource(), "fuel {fuel}: {e}"),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `implies` answers of both polarities round-trip: emit → JSON →
    /// parse → independent check, with the engine's verdict preserved.
    #[test]
    fn engine_answers_round_trip_through_the_checker(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = problem(&mut rng);
        let query = nalist::gen::random_dep(&mut rng, &p.alg, 0.4, 0.5);
        let engine_says = implies(&p.alg, &p.sigma, &query);

        let cert = certificate_for(&p, &query);
        prop_assert_eq!(
            cert.verdict,
            if engine_says { Verdict::Implied } else { Verdict::NotImplied }
        );

        // the wire format round-trips …
        let reparsed = Certificate::from_json(&cert.to_json()).expect("reparse");
        prop_assert_eq!(&reparsed, &cert);
        // … and the independent checker agrees with the engine
        let report = verify(&p.schema_src, &p.deps_src, &reparsed, &Budget::unlimited())
            .expect("emitted certificate must be accepted");
        prop_assert_eq!(report.verdict, cert.verdict);

        assert_governance_invariant(&p, &cert, &report)?;
        assert_all_mutations_rejected(&p, &cert)?;
    }

    /// `dependency_basis` answers round-trip the same way.
    #[test]
    fn basis_certificates_round_trip_through_the_checker(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = problem(&mut rng);
        let x = nalist::gen::random_subattr(&mut rng, &p.alg, 0.4);
        let cb = certified_closure_and_basis(&p.alg, &p.sigma, &x).expect("basis");
        let cert = basis_certificate(&p.alg, &p.sigma, &x, &cb);

        let reparsed = Certificate::from_json(&cert.to_json()).expect("reparse");
        prop_assert_eq!(&reparsed, &cert);
        let report = verify(&p.schema_src, &p.deps_src, &reparsed, &Budget::unlimited())
            .expect("emitted basis certificate must be accepted");
        prop_assert_eq!(report.verdict, Verdict::Derived);
        prop_assert!(report.nodes > cb.block_nodes.len());

        assert_governance_invariant(&p, &cert, &report)?;
        assert_all_mutations_rejected(&p, &cert)?;
    }

    /// A certificate issued for one problem must not verify against a
    /// materially different one (schema or `Σ` swapped underneath it).
    #[test]
    fn certificates_do_not_transfer_between_problems(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = problem(&mut rng);
        let query = nalist::gen::random_dep(&mut rng, &p.alg, 0.4, 0.5);
        let cert = certificate_for(&p, &query);

        // swap Σ for a strictly larger one: the embedded Σ no longer matches
        let mut grown = p.deps_src.clone();
        grown.push_str(&nalist::gen::random_dep(&mut rng, &p.alg, 0.9, 1.0).render(&p.alg));
        grown.push('\n');
        let swapped_sigma = verify(&p.schema_src, &grown, &cert, &Budget::unlimited());
        prop_assert!(matches!(swapped_sigma, Err(CheckError::SigmaMismatch { .. })));

        // swap the schema for a structurally different one
        let other = "Zz(Q1, Q2, Q3)";
        if p.schema_src != other {
            let swapped_schema = verify(other, "", &cert, &Budget::unlimited());
            prop_assert!(matches!(
                swapped_schema,
                Err(CheckError::SchemaMismatch { .. } | CheckError::SigmaMismatch { .. })
            ));
        }
    }
}

/// The paper's running example, pinned byte for byte: one certificate of
/// each kind. This is the format-stability contract — any diff here is a
/// wire-format change and must be deliberate (and, if an existing field
/// changes meaning, version-bumped).
#[test]
fn certificate_json_matches_golden() {
    let n = parse_attr("Pubcrawl(Person, Visit[Drink(Beer, Pub)])").unwrap();
    let alg = Algebra::new(&n);
    let sigma: Vec<CompiledDep> =
        nalist::deps::parse_sigma(&n, "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
            .unwrap()
            .into_iter()
            .map(|d| d.compile(&alg).unwrap())
            .collect();
    let p = Problem {
        schema_src: n.to_string(),
        deps_src: render_sigma(&alg, &sigma),
        alg,
        sigma,
    };
    let compile = |s: &str| Dependency::parse(&n, s).unwrap().compile(&p.alg).unwrap();

    let implied = certificate_for(&p, &compile("Pubcrawl(Person) -> Pubcrawl(Visit[λ])"));
    assert_eq!(implied.verdict, Verdict::Implied);
    let refuted = certificate_for(
        &p,
        &compile("Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"),
    );
    assert_eq!(refuted.verdict, Verdict::NotImplied);
    let x = p
        .alg
        .from_attr(&parse_subattr_of(&n, "Pubcrawl(Person)").unwrap())
        .unwrap();
    let cb = certified_closure_and_basis(&p.alg, &p.sigma, &x).unwrap();
    let basis = basis_certificate(&p.alg, &p.sigma, &x, &cb);

    // determinism self-check: emission must not depend on iteration order
    assert_eq!(
        certificate_for(&p, &compile("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")).to_json(),
        implied.to_json()
    );

    let mut doc = String::new();
    for (kind, cert) in [
        ("implied", &implied),
        ("refuted", &refuted),
        ("basis", &basis),
    ] {
        // each certificate is accepted before being pinned
        verify(&p.schema_src, &p.deps_src, cert, &Budget::unlimited()).unwrap();
        doc.push_str("# ");
        doc.push_str(kind);
        doc.push('\n');
        doc.push_str(&cert.to_json());
        doc.push('\n');
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/cli_fixtures/certificate_schema.golden");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &doc).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        doc, expected,
        "certificate wire format changed; rerun with UPDATE_GOLDENS=1 if intentional"
    );
}

/// The v1 documents pinned in the golden file stay parseable forever —
/// a reparse guard independent of the emitter.
#[test]
fn golden_certificates_reparse_and_verify() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/cli_fixtures/certificate_schema.golden");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let schema = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";
    let deps = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n";
    let mut seen = 0;
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let cert = Certificate::from_json(line).expect("golden certificate parses");
        verify(schema, deps, &cert, &Budget::unlimited()).expect("golden certificate verifies");
        seen += 1;
    }
    assert_eq!(seen, 3);
}
