//! Work-stealing batch determinism.
//!
//! The batch planner executes its groups through a work-stealing
//! scheduler (shared injector for cache-warm groups, shard-affine local
//! queues for cold ones). Scheduling order is nondeterministic by
//! design; the *results* must not be. These tests pin that contract:
//! identical verdicts, per-item errors and panic confinement across
//! thread counts and repeated runs, and the planner's
//! one-compute-per-distinct-LHS cache invariant under stealing.

use std::num::NonZeroUsize;
use std::sync::Arc;

use nalist::guard::{Budget, FailAction, FailPoint};
use nalist::obs::{Counter, MetricsRecorder};
use nalist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn threads(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

/// Runs `f` with the default panic hook silenced, so intentionally
/// injected panics don't spray backtraces over test output.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// A reasoner over a mid-sized universe with a query mix that reuses
/// left-hand sides (warm + cold groups in one plan).
fn workload(
    atoms: usize,
    sigma: usize,
    queries: usize,
    pool: usize,
) -> (Reasoner, Vec<Dependency>) {
    let mut rng = StdRng::seed_from_u64(42);
    let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
    let alg = Algebra::new(&n);
    let deps = nalist::gen::random_sigma(
        &mut rng,
        &alg,
        &nalist::gen::SigmaConfig {
            count: sigma,
            ..Default::default()
        },
    );
    let mut r = Reasoner::new(&n);
    for d in &deps {
        r.add(d.decompile(&alg)).expect("generated Σ compiles");
    }
    let lhs_pool: Vec<AtomSet> = (0..pool)
        .map(|_| nalist::gen::random_subattr(&mut rng, &alg, 0.3))
        .collect();
    let queries = (0..queries)
        .map(|i| {
            let lhs = lhs_pool[i % lhs_pool.len()].clone();
            let rhs = nalist::gen::random_subattr(&mut rng, &alg, 0.3);
            let c = if i % 3 == 0 {
                nalist::deps::CompiledDep::fd(lhs, rhs)
            } else {
                nalist::deps::CompiledDep::mvd(lhs, rhs)
            };
            c.decompile(&alg)
        })
        .collect();
    (r, queries)
}

/// Batch verdicts are identical across thread counts and across
/// repeated runs at the same thread count, warm or cold cache.
#[test]
fn verdicts_identical_across_thread_counts_and_runs() {
    let (r, queries) = workload(80, 24, 96, 12);
    let baseline = r
        .clone()
        .implies_batch_with(&queries, threads(1))
        .expect("queries compile");
    for t in [1usize, 2, 8] {
        for run in 0..2 {
            // fresh clone: cold cache each time
            let cold = r
                .clone()
                .implies_batch_with(&queries, threads(t))
                .expect("queries compile");
            assert_eq!(cold, baseline, "cold cache, threads = {t}, run = {run}");
        }
        // warm cache: same reasoner queried twice
        let warm_r = r.clone();
        warm_r
            .implies_batch_with(&queries, threads(t))
            .expect("queries compile");
        let warm = warm_r
            .implies_batch_with(&queries, threads(t))
            .expect("queries compile");
        assert_eq!(warm, baseline, "warm cache, threads = {t}");
    }
}

/// One Algorithm 5.1 run per distinct LHS, no matter how many workers
/// steal from each other.
#[test]
fn cache_misses_equal_distinct_lhss_under_stealing() {
    for t in [1usize, 2, 8] {
        let (r, queries) = workload(80, 24, 96, 12);
        let fresh = r.clone();
        fresh
            .implies_batch_with(&queries, threads(t))
            .expect("queries compile");
        let stats = fresh.cache_stats();
        assert_eq!(
            stats.misses, 12,
            "threads = {t}: one miss per distinct LHS, even when stolen"
        );
        assert_eq!(stats.entries, 12, "threads = {t}");
    }
}

/// Steal/local-hit counters are recorded when observability is on, and
/// every cold group is accounted for exactly once.
#[test]
fn steal_counters_account_for_every_cold_group() {
    let (r, queries) = workload(80, 24, 96, 12);
    for t in [2usize, 8] {
        let rec = Arc::new(MetricsRecorder::new());
        let fresh = r.clone().with_recorder(rec.clone());
        fresh
            .implies_batch_with(&queries, threads(t))
            .expect("queries compile");
        let steals = rec.counter(Counter::BatchSteals);
        let local = rec.counter(Counter::BatchLocalHits);
        // 12 cold groups (nothing cached), all drained from local
        // queues either by their owner or by a thief
        assert_eq!(
            steals + local,
            12,
            "threads = {t}: steals ({steals}) + local hits ({local})"
        );
        assert_eq!(
            rec.counter(Counter::BatchThreads),
            t as u64,
            "threads = {t}"
        );
        assert_eq!(rec.counter(Counter::BatchQueries), 96, "threads = {t}");
    }
}

/// Panic confinement is per-item and deterministic in *which* items it
/// can affect: under an injected panic on the first closure run, the
/// failing group's members report `Panicked` while every other item
/// still answers — at any thread count.
#[test]
fn injected_panic_stays_confined_under_stealing() {
    let (r, queries) = workload(80, 24, 24, 4);
    for t in [1usize, 2, 8] {
        let fresh = r.clone();
        let budget = Budget::unlimited().with_failpoint(FailPoint::nth(
            "membership::closure",
            1,
            FailAction::Panic,
        ));
        let verdicts = quiet_panics(|| {
            fresh
                .implies_batch_governed_with(&queries, &budget, threads(t))
                .expect("batch itself survives an item panic")
        });
        let panicked = verdicts
            .iter()
            .filter(|v| matches!(v, Err(QueryError::Panicked { .. })))
            .count();
        let answered = verdicts.iter().filter(|v| v.is_ok()).count();
        assert!(
            panicked >= 1,
            "threads = {t}: the injected panic must surface as QueryError::Panicked"
        );
        assert_eq!(
            panicked + answered,
            verdicts.len(),
            "threads = {t}: every item either answered or reported its panic"
        );
        // with 4 distinct LHSs and members spread round-robin, the
        // non-panicking groups must still have answered
        assert!(
            answered >= verdicts.len() / 2,
            "threads = {t}: panic confinement leaked past one group \
             ({answered} answered of {})",
            verdicts.len()
        );
    }
}
