//! Crash-recovery acceptance suite for the durability layer
//! (DESIGN.md's "Durability & crash recovery"):
//!
//! * for **any** random edit script, **any** snapshot cut point and
//!   **any** crash point in the journaled tail — a clean stop, a torn
//!   write mid-record, or an injected fault at the `store::append` fail
//!   point — recovery yields a reasoner **bit-identical** (byte-equal
//!   snapshot payloads: same `Σ`, same stable ids, same warm cache
//!   entries) to a live process that executed exactly the committed
//!   prefix and never crashed;
//! * **any** single flipped byte in a snapshot file is rejected with a
//!   typed [`StoreError::Corrupt`]; a flipped byte in a WAL is either
//!   rejected the same way or — when the damage is indistinguishable
//!   from a torn final append — reported as a truncation back to a
//!   strict prefix of the original records. Never a silently wrong
//!   answer;
//! * the snapshot file format is **byte-stable**: a pinned workload
//!   produces the exact golden bytes, re-blessed only by an explicit
//!   `UPDATE_GOLDENS=1` run.

use std::path::PathBuf;
use std::sync::Arc;

use nalist::gen::{random_edit_script, EditConfig, EditOp};
use nalist::guard::{FailAction, FailPoint};
use nalist::membership::{recover, WalOp};
use nalist::obs::NoopRecorder;
use nalist::prelude::*;
use nalist::store::{read_snapshot, read_wal, write_snapshot};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn temp_dir(tag: &str, seed: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "nalist_durability_{tag}_{}_{seed}",
        std::process::id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn apply(r: &mut Reasoner, alg: &Algebra, op: &EditOp) {
    match op {
        EditOp::Add(d) => {
            r.add(d.decompile(alg)).expect("generated Σ compiles");
        }
        EditOp::Remove(d) => {
            assert!(r.remove(&d.decompile(alg)).expect("compiles"));
        }
        EditOp::Query(d) => {
            r.implies(&d.decompile(alg)).expect("compiles");
        }
    }
}

/// The WAL record a script op journals: the same abbreviated dependency
/// text the snapshot payload stores.
fn wal_op(n: &NestedAttr, alg: &Algebra, op: &EditOp) -> WalOp {
    let text = |d: &CompiledDep| d.decompile(alg).display_in(n);
    match op {
        EditOp::Add(d) => WalOp::Add(text(d)),
        EditOp::Remove(d) => WalOp::Remove(text(d)),
        EditOp::Query(d) => WalOp::Query(text(d)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random script, random snapshot cut, random crash point and
    /// random crash flavor: recovery is bit-identical to the uncrashed
    /// prefix execution.
    #[test]
    fn any_crash_point_recovers_bit_identically(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(4..=14);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let script = random_edit_script(&mut rng, &alg, &EditConfig::default());
        let cut = rng.gen_range(0..=script.len());
        let tail = &script[cut..];
        // committed: how many tail ops the crashed process fully journaled
        let committed = rng.gen_range(0..=tail.len());
        // crash flavors: 0 = clean stop after `committed` appends,
        // 1 = torn write mid-record on the next append,
        // 2 = injected fault at store::append on the next append
        let flavor = if committed < tail.len() { rng.gen_range(0..3u8) } else { 0 };

        let dir = temp_dir("crash", seed);
        let snap_path = dir.join("state.snap");
        let wal_path = dir.join("ops.wal");

        // the process that crashes: snapshot at `cut`, then journal-
        // before-apply the tail
        let mut live = Reasoner::new(&n);
        for op in &script[..cut] {
            apply(&mut live, &alg, op);
        }
        nalist::membership::write_reasoner_snapshot(
            &snap_path, &live, &Budget::unlimited(), &NoopRecorder,
        ).expect("snapshot writes");
        let mut wal = WalWriter::create(&wal_path, false).expect("wal creates");
        let budget = Budget::unlimited();
        wal.append(
            &WalOp::Header { schema: n.to_string() }.encode(),
            &budget,
            &NoopRecorder,
        ).expect("header appends");
        for op in &tail[..committed] {
            wal.append(&wal_op(&n, &alg, op).encode(), &budget, &NoopRecorder)
                .expect("append succeeds");
        }
        match flavor {
            1 => {
                // torn write: the next record reaches the disk only
                // partially (crash mid-`write`)
                let op = &tail[committed];
                wal.append(&wal_op(&n, &alg, op).encode(), &budget, &NoopRecorder)
                    .expect("append succeeds");
                drop(wal);
                let full = std::fs::metadata(&wal_path).unwrap().len();
                let record_start = {
                    let replay = read_wal(&wal_path).unwrap();
                    let last = replay.records.last().unwrap();
                    full - 8 - last.len() as u64
                };
                let torn = rng.gen_range(record_start + 1..full);
                let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
                f.set_len(torn).unwrap();
            }
            2 => {
                // injected fault: the fail point fires before any byte
                // is written, like a crash between the decision to
                // journal and the write itself
                let armed = Budget::unlimited().with_failpoint(FailPoint::nth(
                    "store::append",
                    0,
                    FailAction::ExhaustFuel,
                ));
                let op = &tail[committed];
                let err = wal.append(&wal_op(&n, &alg, op).encode(), &armed, &NoopRecorder);
                prop_assert!(err.is_err(), "armed fail point must fire");
                drop(wal);
            }
            _ => drop(wal),
        }

        // the process that never crashed, stopped at the same point
        let mut expected = Reasoner::new(&n);
        for op in &script[..cut + committed] {
            apply(&mut expected, &alg, op);
        }

        let report = recover(
            &snap_path,
            Some(&wal_path),
            &Budget::unlimited(),
            Arc::new(NoopRecorder),
        ).expect("recovery succeeds");
        prop_assert_eq!(
            report.truncated_at.is_some(),
            flavor == 1,
            "torn-tail report mismatch"
        );
        prop_assert_eq!(
            report.replayed(),
            committed as u64,
            "replayed op count"
        );
        prop_assert_eq!(
            snapshot_payload(&report.reasoner),
            snapshot_payload(&expected),
            "recovered state diverged from the uncrashed prefix execution"
        );
        prop_assert_eq!(report.reasoner.dep_ids(), expected.dep_ids());
        prop_assert_eq!(report.reasoner.next_dep_id(), expected.next_dep_id());
        prop_assert_eq!(
            report.reasoner.cache_stats().entries,
            expected.cache_stats().entries,
            "cache warmth diverged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Any single flipped byte, anywhere in a snapshot file, is
    /// rejected with the typed corruption error — and recovery through
    /// the full stack errors out rather than answering from damaged
    /// state.
    #[test]
    fn any_flipped_snapshot_byte_is_rejected_typed(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(4..=12);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let script = random_edit_script(&mut rng, &alg, &EditConfig::default());
        let mut r = Reasoner::new(&n);
        for op in script.iter().take(8) {
            apply(&mut r, &alg, op);
        }
        let dir = temp_dir("flip_snap", seed);
        let path = dir.join("state.snap");
        nalist::membership::write_reasoner_snapshot(
            &path, &r, &Budget::unlimited(), &NoopRecorder,
        ).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // one random flip per proptest case, plus the three structural
        // hot spots (magic, version, crc) every time
        let mut targets = vec![0usize, 8, 16, rng.gen_range(0..pristine.len())];
        targets.dedup();
        for at in targets {
            let mut bad = pristine.clone();
            bad[at] ^= 1 << rng.gen_range(0..8u8);
            std::fs::write(&path, &bad).unwrap();
            match read_snapshot(&path) {
                Err(StoreError::Corrupt { .. }) => {}
                other => prop_assert!(
                    false,
                    "flip at byte {at}: expected Corrupt, got {other:?}"
                ),
            }
            let full = recover(&path, None, &Budget::unlimited(), Arc::new(NoopRecorder));
            prop_assert!(full.is_err(), "flip at byte {at}: recover must fail");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Any single flipped byte in a WAL either surfaces as typed
    /// corruption or — when indistinguishable from a torn final append
    /// — as a reported truncation back to a strict prefix of the
    /// original records. Never a reordered, altered or invented record.
    #[test]
    fn any_flipped_wal_byte_is_corrupt_or_a_reported_prefix(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = temp_dir("flip_wal", seed);
        let path = dir.join("ops.wal");
        let mut wal = WalWriter::create(&path, false).unwrap();
        let budget = Budget::unlimited();
        let ops = [
            WalOp::Header { schema: "L(A, B, C)".to_string() },
            WalOp::Add("L(A) -> L(B)".to_string()),
            WalOp::Query("L(A) ->> L(C)".to_string()),
            WalOp::Remove("L(A) -> L(B)".to_string()),
        ];
        for op in &ops {
            wal.append(&op.encode(), &budget, &NoopRecorder).unwrap();
        }
        drop(wal);
        let pristine = std::fs::read(&path).unwrap();
        let original = read_wal(&path).unwrap();
        prop_assert!(original.truncated_at.is_none());
        let at = rng.gen_range(0..pristine.len());
        let mut bad = pristine.clone();
        bad[at] ^= 1 << rng.gen_range(0..8u8);
        std::fs::write(&path, &bad).unwrap();
        match read_wal(&path) {
            Err(StoreError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "flip at {at}: unexpected error {other:?}"),
            Ok(replay) => {
                prop_assert!(
                    replay.truncated_at.is_some(),
                    "flip at {at}: accepted undamaged? records {} of {}",
                    replay.records.len(),
                    original.records.len()
                );
                prop_assert!(
                    replay.records.len() < original.records.len(),
                    "flip at {at}: truncation must drop at least the damaged record"
                );
                for (i, rec) in replay.records.iter().enumerate() {
                    prop_assert_eq!(
                        rec,
                        &original.records[i],
                        "flip at {at}: surviving record {i} altered"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Hex dump used for the byte-pinned golden: 32 bytes per line.
fn hex_dump(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(bytes.len() * 2 + bytes.len() / 16);
    for chunk in bytes.chunks(32) {
        for b in chunk {
            write!(out, "{b:02x}").unwrap();
        }
        out.push('\n');
    }
    out
}

/// The snapshot format is byte-stable: the pinned workload (the paper's
/// running example, warmed with the Example 4.2 queries) produces
/// exactly the golden file bytes — header, CRC and payload. Any change
/// to the encoding is a format break and must be made consciously:
/// bless a new golden with `UPDATE_GOLDENS=1` and bump
/// [`nalist::store::SNAPSHOT_VERSION`].
#[test]
fn snapshot_format_is_byte_stable() {
    let n = parse_attr("Pubcrawl(Person, Visit[Drink(Beer, Pub)])").unwrap();
    let mut r = Reasoner::new(&n);
    r.add_str("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
        .unwrap();
    r.add_str("Pubcrawl(Visit[Drink(Beer)]) -> Pubcrawl(Visit[Drink(Pub)])")
        .unwrap();
    assert!(r
        .implies_str("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
        .unwrap());
    r.remove_at(1);
    r.add_str("Pubcrawl(Person) -> Pubcrawl(Visit[λ])").unwrap();
    let dir = temp_dir("golden", 0);
    let path = dir.join("golden.snap");
    write_snapshot(&path, &snapshot_payload(&r)).unwrap();
    let got = hex_dump(&std::fs::read(&path).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/store_fixtures/snapshot_format.golden"
    );
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden_path).parent().unwrap()).unwrap();
        std::fs::write(golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("no golden at {golden_path} ({e}); run with UPDATE_GOLDENS=1 to bless one")
    });
    assert_eq!(
        got, want,
        "snapshot bytes drifted from the golden — if the format change is \
         intentional, bump SNAPSHOT_VERSION and re-bless with UPDATE_GOLDENS=1"
    );
}
