//! Cross-validation of incremental `Σ` maintenance (the delta-closure
//! cache of DESIGN.md's "Incremental maintenance & invalidation"):
//! random interleaved add/remove/query scripts replayed on ONE long-lived
//! [`Reasoner`] — whose cache survives edits via selective eviction —
//! against a reasoner rebuilt from scratch after every single edit.
//!
//! The contract under test is exact, not approximate: after any prefix of
//! edits, every verdict and every `DependencyBasis` the incremental
//! reasoner produces must be bit-identical to a from-scratch recompute
//! (soundness of the `fired`-set / one-step-replay eviction rules rests
//! on the confluence theorem, Theorem 6.3 of the paper).

use nalist::gen::{random_edit_script, EditConfig, EditOp};
use nalist::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rebuilds a fresh reasoner holding exactly `live`.
fn from_scratch(n: &NestedAttr, alg: &Algebra, live: &[CompiledDep]) -> Reasoner {
    let mut r = Reasoner::new(n);
    for d in live {
        r.add(d.decompile(alg)).expect("generated Σ compiles");
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Interleaved add/remove/query: the long-lived incremental reasoner
    /// answers every query, and reports every queried LHS's dependency
    /// basis, bit-identically to a reasoner rebuilt from scratch after
    /// each edit.
    #[test]
    fn interleaved_edits_match_from_scratch(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(4..=20);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let script = random_edit_script(&mut rng, &alg, &EditConfig::default());

        let mut incremental = Reasoner::new(&n);
        let mut live: Vec<CompiledDep> = Vec::new();
        for (step, op) in script.iter().enumerate() {
            match op {
                EditOp::Add(d) => {
                    incremental.add(d.decompile(&alg)).expect("generated Σ compiles");
                    live.push(d.clone());
                }
                EditOp::Remove(d) => {
                    let removed = incremental
                        .remove(&d.decompile(&alg))
                        .expect("round-tripped deps compile");
                    prop_assert!(removed, "step {}: script removes a live dependency", step);
                    let i = live.iter().position(|have| have == d).expect("live");
                    live.remove(i);
                }
                EditOp::Query(d) => {
                    let scratch = from_scratch(&n, &alg, &live);
                    let dep = d.decompile(&alg);
                    let want = scratch.implies(&dep).expect("compiles");
                    let got = incremental.implies(&dep).expect("compiles");
                    prop_assert_eq!(got, want, "step {}: verdict diverged", step);
                    // the cached basis itself must be bit-identical, not
                    // merely verdict-equivalent
                    prop_assert_eq!(
                        incremental.dependency_basis(&d.lhs),
                        scratch.dependency_basis(&d.lhs),
                        "step {}: basis diverged after {} edits",
                        step,
                        live.len()
                    );
                }
            }
        }
        // final state: every live LHS agrees too, from whatever mix of
        // warm and evicted entries the script left behind
        let scratch = from_scratch(&n, &alg, &live);
        for d in &live {
            prop_assert_eq!(
                incremental.dependency_basis(&d.lhs),
                scratch.dependency_basis(&d.lhs)
            );
        }
    }

    /// Stable dependency ids: across any interleaving of `add` and
    /// `remove_at`, the reasoner's id column matches a trivial model
    /// that hands out ids from a never-reused counter — removals leave
    /// holes, and no id is ever reassigned. (The durability layer keys
    /// cache fired-sets on these ids; reuse would silently corrupt a
    /// recovered cache.)
    #[test]
    fn dependency_ids_are_stable_across_interleaved_edits(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(4..=16);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let mut r = Reasoner::new(&n);
        let mut model: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for _ in 0..40 {
            if model.is_empty() || rng.gen_bool(0.6) {
                let d = nalist::gen::random_dep(&mut rng, &alg, 0.4, 0.5);
                r.add(d.decompile(&alg)).expect("generated Σ compiles");
                model.push(next);
                next += 1;
            } else {
                let i = rng.gen_range(0..model.len());
                r.remove_at(i);
                model.remove(i);
            }
            prop_assert_eq!(r.dep_ids(), &model[..]);
            prop_assert_eq!(r.next_dep_id(), next);
        }
    }

    /// A reasoner recovered from a snapshot is not merely equivalent to
    /// the live one — it *stays* bit-identical under further edits: the
    /// same cache entries survive, the same entries are evicted, and
    /// every subsequent snapshot payload is byte-equal. This is the
    /// property that makes crash recovery transparent to the cache.
    #[test]
    fn recovered_reasoner_tracks_live_bit_identically(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(4..=16);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let script = random_edit_script(&mut rng, &alg, &EditConfig::default());
        let cut = rng.gen_range(0..=script.len());
        let apply = |r: &mut Reasoner, op: &EditOp| match op {
            EditOp::Add(d) => {
                r.add(d.decompile(&alg)).expect("generated Σ compiles");
            }
            EditOp::Remove(d) => {
                assert!(r.remove(&d.decompile(&alg)).expect("compiles"));
            }
            EditOp::Query(d) => {
                r.implies(&d.decompile(&alg)).expect("compiles");
            }
        };
        let mut live = Reasoner::new(&n);
        for op in &script[..cut] {
            apply(&mut live, op);
        }
        let payload = snapshot_payload(&live);
        let mut recovered = nalist::membership::restore_reasoner(
            &payload,
            &Budget::unlimited(),
            std::sync::Arc::new(nalist::obs::NoopRecorder),
        )
        .expect("own snapshot restores");
        prop_assert_eq!(snapshot_payload(&recovered), payload);
        for (step, op) in script[cut..].iter().enumerate() {
            apply(&mut live, op);
            apply(&mut recovered, op);
            prop_assert_eq!(
                snapshot_payload(&recovered),
                snapshot_payload(&live),
                "diverged {} edit(s) after recovery",
                step + 1
            );
        }
        let (a, b) = (recovered.cache_stats(), live.cache_stats());
        prop_assert_eq!(a.entries, b.entries, "cache sizes diverged");
    }

    /// The same interleaving under a resource budget. A roomy budget must
    /// agree exactly with the ungoverned answer; a starved budget may
    /// refuse with `Resource`, but any answer it does return must be
    /// correct (budget-truncated runs never populate the cache, so later
    /// queries can't observe a partial basis either).
    #[test]
    fn governed_interleaved_edits_are_resource_or_correct(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let atoms = rng.gen_range(4..=16);
        let n = nalist::gen::attr_with_atoms(&mut rng, atoms);
        let alg = Algebra::new(&n);
        let script = random_edit_script(
            &mut rng,
            &alg,
            &EditConfig { ops: 16, ..EditConfig::default() },
        );

        let roomy = Budget::unlimited().with_fuel(50_000_000);
        let starved = Budget::unlimited().with_fuel(rng.gen_range(1..=40));
        let mut incremental = Reasoner::new(&n);
        let mut live: Vec<CompiledDep> = Vec::new();
        for (step, op) in script.iter().enumerate() {
            match op {
                EditOp::Add(d) => {
                    incremental.add(d.decompile(&alg)).expect("generated Σ compiles");
                    live.push(d.clone());
                }
                EditOp::Remove(d) => {
                    prop_assert!(incremental
                        .remove(&d.decompile(&alg))
                        .expect("round-tripped deps compile"));
                    let i = live.iter().position(|have| have == d).expect("live");
                    live.remove(i);
                }
                EditOp::Query(d) => {
                    let dep = d.decompile(&alg);
                    let want = from_scratch(&n, &alg, &live)
                        .implies(&dep)
                        .expect("compiles");
                    prop_assert_eq!(
                        incremental.implies_governed(&dep, &roomy).expect("roomy budget"),
                        want,
                        "step {}: governed verdict diverged",
                        step
                    );
                    match incremental.implies_governed(&dep, &starved) {
                        Ok(got) => prop_assert_eq!(
                            got, want,
                            "step {}: starved budget returned a WRONG verdict",
                            step
                        ),
                        Err(ReasonerError::Resource(_)) => {}
                        Err(e) => prop_assert!(false, "step {step}: unexpected error {e}"),
                    }
                }
            }
        }
    }
}
