//! # nalist — FDs and MVDs in the Presence of Lists
//!
//! A complete implementation of Hartmann & Link, *"A Membership Algorithm
//! for Functional and Multi-valued Dependencies in the Presence of
//! Lists"* (ENTCS 91, 2004): nested attributes built from base, record
//! and finite list types; the Brouwerian algebra of subattributes; FDs
//! and MVDs with projection-based satisfaction; the sound & complete
//! 14-rule proof system; the polynomial-time membership algorithm
//! (Algorithm 5.1); verified refutation witnesses; and schema-design
//! tooling (covers, keys, 4NF, lossless decomposition).
//!
//! ## Quick start
//!
//! ```
//! use nalist::prelude::*;
//!
//! // the paper's running example (Example 4.2)
//! let n = parse_attr("Pubcrawl(Person, Visit[Drink(Beer, Pub)])").unwrap();
//! let mut reasoner = Reasoner::new(&n);
//! reasoner.add_str("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])").unwrap();
//!
//! // the mixed meet rule derives a non-trivial FD from the MVD: the
//! // person determines the number of bars visited
//! assert!(reasoner.implies_str("Pubcrawl(Person) -> Pubcrawl(Visit[λ])").unwrap());
//!
//! // the pub list itself is *not* functionally determined — and the
//! // library can hand you a concrete counterexample database:
//! let alg = reasoner.algebra();
//! let target = Dependency::parse(&n, "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])")
//!     .unwrap()
//!     .compile(alg)
//!     .unwrap();
//! let witness = refute(alg, reasoner.compiled_sigma(), &target).unwrap().unwrap();
//! assert!(!witness.instance.satisfies(alg, &target));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`types`] | universes, nested attributes, values, projections, parser |
//! | [`algebra`] | the Brouwerian algebra `Sub(N)` on atom bitsets |
//! | [`deps`] | FDs/MVDs, instances, satisfaction, generalised join, inference rules, proofs, naive closure |
//! | [`membership`] | Algorithm 5.1, membership decisions, witnesses, Beeri baseline |
//! | [`check`] | trusted certificate checker (no dependency on [`membership`]) |
//! | [`schema`] | covers, keys, normal forms, lossless decomposition |
//! | [`lint`] | span-aware static analysis of specs (rules L001–L009) |
//! | [`gen`] | workload generators and named scenarios |
//! | [`obs`] | observability: span recorder, work counters, histograms |
//! | [`guard`] | resource governance: budgets, deadlines, fail points |
//! | [`store`] | crash-safe durability: versioned snapshots, checksummed WAL |
//! | [`serve`] | the multi-tenant HTTP service and its open-loop load generator |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod theory;

pub use nalist_algebra as algebra;
pub use nalist_check as check;
pub use nalist_deps as deps;
pub use nalist_gen as gen;
pub use nalist_guard as guard;
pub use nalist_lint as lint;
pub use nalist_membership as membership;
pub use nalist_obs as obs;
pub use nalist_schema as schema;
pub use nalist_serve as serve;
pub use nalist_store as store;
pub use nalist_types as types;

/// One-stop imports for typical use.
pub mod prelude {
    pub use nalist_algebra::{Algebra, AlgebraError, AtomSet, WidthClass};
    pub use nalist_check::{verify as check_certificate, Certificate, CheckError, Verdict};
    pub use nalist_deps::{
        chase, parse_sigma, ChaseError, ChaseResult, CompiledDep, DepKind, Dependency, Instance,
    };
    pub use nalist_guard::{Budget, CancelToken, ResourceExhausted, ResourceKind};
    pub use nalist_membership::{
        certified_closure_and_basis, certify, closure_and_basis, closure_and_basis_governed,
        closure_and_basis_paper, closure_and_basis_traced, default_batch_threads, implies, refute,
        snapshot_payload, CertifiedBasis, CertifyError, ClosureError, DependencyBasis,
        PersistError, QueryError, Reasoner, ReasonerError, Witness, WitnessError,
    };
    pub use nalist_schema::{
        binary_split, candidate_keys, decompose_4nf, equivalent, is_fourth_nf, is_superkey,
        minimal_cover, verify_lossless,
    };
    pub use nalist_store::{StoreError, WalWriter};
    pub use nalist_types::parser::{
        parse_attr, parse_attr_with, parse_subattr_of, parse_value, ParseLimits,
    };
    pub use nalist_types::{NestedAttr, ParseError, Universe, Value};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_core_workflow() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let mut r = Reasoner::new(&n);
        r.add_str("L(A) -> L(B)").unwrap();
        assert!(r.implies_str("L(A) ->> L(B)").unwrap());
        let alg = r.algebra();
        assert!(is_superkey(
            alg,
            r.compiled_sigma(),
            &alg.from_attr(&parse_subattr_of(&n, "L(A, C)").unwrap())
                .unwrap()
        ));
    }
}
