//! # A guided tour of the theory
//!
//! This module contains no code — it is a narrated walk through the
//! paper's mathematics, with every concept demonstrated by a runnable
//! doctest against the public API. Read it top to bottom to learn both
//! the theory and the library.
//!
//! ## 1. Nested attributes and their values
//!
//! A *nested attribute* is a type expression over flat attributes, record
//! constructors `L(N1, …, Nk)` and finite-list constructors `L[N]`
//! (Definition 3.2). Its domain is built structurally (Definition 3.3):
//!
//! ```
//! use nalist::prelude::*;
//!
//! let n = parse_attr("Playlist(User, Songs[Track])").unwrap();
//! let v = parse_value("(ann, [hey-jude, yesterday])").unwrap();
//! assert!(v.conforms(&n));
//! // lists may be empty — [] ∈ dom(Songs[Track])
//! assert!(parse_value("(bob, [])").unwrap().conforms(&n));
//! ```
//!
//! ## 2. Subattributes: what "part of the data" means
//!
//! `M ≤ N` (Definition 3.4) says `M` carries at most as much information
//! as `N`; operationally there is a projection `π^N_M` (Definition 3.6).
//! The crucial list-specific fact: projecting a list to `L[λ]` keeps its
//! **length** — the shape of a list is information:
//!
//! ```
//! use nalist::prelude::*;
//! use nalist::types::projection::project;
//!
//! let n = parse_attr("Playlist(User, Songs[Track])").unwrap();
//! let shape = parse_subattr_of(&n, "Playlist(Songs[λ])").unwrap();
//! let v = parse_value("(ann, [hey-jude, yesterday])").unwrap();
//! // the projection remembers that two songs were present
//! assert_eq!(project(&n, &shape, &v).unwrap().to_string(), "(ok, [ok, ok])");
//! ```
//!
//! ## 3. The Brouwerian algebra `Sub(N)`
//!
//! In the relational model the subsets of a schema form a Boolean
//! algebra. With lists, `Sub(N)` is only a **Brouwerian (co-Heyting)
//! algebra** (Theorem 3.9): there is a pseudo-difference `∸` adjoint to
//! join, but the complement `Y^C = N ∸ Y` may *overlap* `Y`:
//!
//! ```
//! use nalist::prelude::*;
//!
//! let n = parse_attr("L[A]").unwrap();
//! let alg = Algebra::new(&n);
//! let y = alg.from_attr(&parse_subattr_of(&n, "L[λ]").unwrap()).unwrap();
//! let yc = alg.compl(&y);
//! // the complement of "the list's shape" is the whole attribute:
//! assert_eq!(alg.render(&yc), "L[A]");
//! // so Y ⊓ Y^C = Y ≠ λ — Sub(N) is not Boolean
//! assert_eq!(alg.meet(&y, &yc), y);
//! ```
//!
//! The *basis attributes* `SubB(N)` (Definition 4.7) are the library's
//! atoms: one per flat leaf, one per list node. Everything in `Sub(N)` is
//! a join of basis attributes, and the whole engine works on bitsets of
//! them.
//!
//! ## 4. FDs, MVDs, and the shape subtlety
//!
//! Satisfaction is via projections (Definition 4.1). The running example
//! (Example 4.2) shows an MVD that holds while both component FDs fail:
//!
//! ```
//! use nalist::prelude::*;
//!
//! let s = nalist::gen::scenarios::pubcrawl();
//! let alg = Algebra::new(&s.attr);
//! let holds = |d: &str| {
//!     s.instance
//!         .satisfies_dep(&alg, &Dependency::parse(&s.attr, d).unwrap())
//!         .unwrap()
//! };
//! assert!(holds("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"));
//! assert!(!holds("Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"));
//! // …and the shape FD the MVD *forces* (mixed meet):
//! assert!(holds("Pubcrawl(Person) -> Pubcrawl(Visit[λ])"));
//! ```
//!
//! ## 5. The mixed meet rule — the paper's novelty
//!
//! Relationally, an MVD never implies a non-trivial FD. With lists it
//! does: `X ↠ Y ⊢ X → Y ⊓ Y^C`. Intuition: the recombination tuple the
//! MVD demands must take its `Y`-part from one tuple and its `Y^C`-part
//! from another — where the two parts *share* list shapes, those shapes
//! must already agree:
//!
//! ```
//! use nalist::prelude::*;
//!
//! let n = parse_attr("Pubcrawl(Person, Visit[Drink(Beer, Pub)])").unwrap();
//! let mut r = Reasoner::new(&n);
//! r.add_str("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])").unwrap();
//! assert!(r.implies_str("Pubcrawl(Person) -> Pubcrawl(Visit[λ])").unwrap());
//! ```
//!
//! The same phenomenon makes the list-MVD **chase** fallible (no
//! relational analogue):
//!
//! ```
//! use nalist::prelude::*;
//!
//! let n = parse_attr("L[A]").unwrap();
//! let alg = Algebra::new(&n);
//! let sigma = vec![Dependency::parse(&n, "λ ->> L[λ]").unwrap().compile(&alg).unwrap()];
//! let r = Instance::from_strs(n.clone(), &["[]", "[a]"]).unwrap();
//! // two lists of different lengths: the demanded recombination does not
//! // exist as a value — the chase reports it instead of looping
//! assert!(matches!(
//!     chase(&alg, &sigma, &r, 100),
//!     Err(ChaseError::Unrepairable { .. })
//! ));
//! ```
//!
//! ## 6. The membership algorithm and its certificates
//!
//! Algorithm 5.1 computes the closure `X⁺` and the dependency basis
//! `DepB(X)` in `O(|N|⁴·|Σ|)`; `Σ ⊨ σ` then reduces to a lattice check
//! (Proposition 4.10). Every verdict is *evidenced*: a proof DAG over the
//! 14 rules for "yes", a verified counterexample database for "no":
//!
//! ```
//! use nalist::prelude::*;
//!
//! let n = parse_attr("L(A, B, C)").unwrap();
//! let alg = Algebra::new(&n);
//! let sigma = vec![
//!     Dependency::parse(&n, "L(A) -> L(B)").unwrap().compile(&alg).unwrap(),
//!     Dependency::parse(&n, "L(B) -> L(C)").unwrap().compile(&alg).unwrap(),
//! ];
//! // yes, with a checkable derivation:
//! let yes = Dependency::parse(&n, "L(A) -> L(C)").unwrap().compile(&alg).unwrap();
//! let dag = certify(&alg, &sigma, &yes).unwrap().unwrap();
//! assert_eq!(dag.check(&alg, &sigma).unwrap(), &yes);
//! // no, with a concrete two-tuple counterexample:
//! let no = Dependency::parse(&n, "L(C) -> L(A)").unwrap().compile(&alg).unwrap();
//! let witness = refute(&alg, &sigma, &no).unwrap().unwrap();
//! assert!(witness.instance.satisfies_all(&alg, &sigma));
//! assert!(!witness.instance.satisfies(&alg, &no));
//! ```
//!
//! ## 7. Schema design
//!
//! The membership decision powers the applications the paper motivates:
//! equivalence of dependency sets, redundancy, keys, normal forms, and
//! lossless decomposition (Theorem 4.4):
//!
//! ```
//! use nalist::prelude::*;
//!
//! let s = nalist::gen::scenarios::pubcrawl();
//! let alg = Algebra::new(&s.attr);
//! let sigma: Vec<CompiledDep> =
//!     s.sigma.iter().map(|d| d.compile(&alg).unwrap()).collect();
//! // the shape FD is redundant — it is the mixed-meet consequence
//! assert_eq!(minimal_cover(&alg, &sigma).len(), 1);
//! // the schema is not in 4NF; the decomposition along the MVD is lossless
//! assert!(!is_fourth_nf(&alg, &sigma));
//! let comps = decompose_4nf(&alg, &sigma, 8);
//! let atoms: Vec<AtomSet> = comps.iter().map(|c| c.atoms.clone()).collect();
//! assert!(verify_lossless(&alg, &s.instance, &atoms).unwrap());
//! ```
//!
//! ## 8. Where the paper needed a correction
//!
//! Theorem 4.4 states `r ⊨ X ↠ Y ⟺ r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)`. The
//! "⟸" direction fails when `r` violates the mixed-meet FD — see the
//! erratum note on [`nalist_deps::join::lossless_decomposition`] and
//! experiment E-THM44 in `EXPERIMENTS.md`:
//!
//! ```
//! use nalist::prelude::*;
//! use nalist::deps::join::lossless_decomposition;
//!
//! let n = parse_attr("L[A]").unwrap();
//! let alg = Algebra::new(&n);
//! let r = Instance::from_strs(n.clone(), &["[]", "[a]"]).unwrap();
//! let x = alg.bottom_set();
//! let y = alg.from_attr(&parse_subattr_of(&n, "L[λ]").unwrap()).unwrap();
//! // lossless, yet the MVD is violated:
//! assert!(lossless_decomposition(&alg, &r, &x, &y).unwrap());
//! assert!(!r.satisfies_mvd(&alg, &x, &y));
//! // the corrected equivalence adds the mixed-meet FD:
//! let mixed = alg.meet(&y, &alg.compl(&y));
//! assert!(!r.satisfies_fd(&alg, &x, &mixed));
//! ```
