//! # nalist-store
//!
//! Crash-safe durability for long-lived reasoners, in the same
//! hand-rolled zero-dependency spirit as `lint::json` — but binary:
//!
//! * [`snapshot`] — a **versioned snapshot** file (`NALSNAP1` magic,
//!   CRC32 over version + length + payload) written via temp file +
//!   fsync + atomic rename, so a crash at any instant leaves either the
//!   old snapshot or the new one, never a torn hybrid;
//! * [`wal`] — an **append-only write-ahead log** of length-prefixed,
//!   CRC32-checksummed records. Recovery truncates a *torn tail* (a
//!   final record the crash cut short) but hard-errors with
//!   [`StoreError::Corrupt`] on mid-log corruption — a bad checksum is
//!   never silently absorbed;
//! * [`crc32`] — the hand-rolled CRC-32 (IEEE) both formats share;
//! * [`binio`] — the little-endian length-prefixed reader/writer the
//!   payload encodings are built from;
//! * [`atomic_write`] — the temp-file + fsync + rename helper, also
//!   used by the CLI for `--metrics` JSON and certificate outputs.
//!
//! Every write, fsync and rename passes through a [`guard::FailPoint`]
//! site ([`site::APPEND`], [`site::SNAPSHOT`], [`site::FSYNC`]) so
//! chaos tests can kill the process mid-write at a named point, and the
//! `wal_appends` / `wal_fsyncs` / `snapshot_writes` counters surface
//! through `nalist-obs`.
//!
//! This crate sits at the bottom of the workspace (deps: `guard`,
//! `obs` only) and knows nothing about dependencies or algebras: it
//! moves opaque payload bytes. The payload encodings live with the
//! types they serialize (`membership::persist`).
//!
//! [`guard::FailPoint`]: nalist_guard::FailPoint

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use nalist_guard::{Budget, ResourceExhausted};

pub mod binio;
pub mod crc32;
pub mod snapshot;
pub mod wal;

pub use binio::{Reader, Writer};
pub use snapshot::{
    decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use wal::{
    parse_wal_segment, read_wal, read_wal_range, WalReplay, WalSegment, WalWriter, WAL_MAGIC,
};

/// The named [`FailPoint`](nalist_guard::FailPoint) sites this crate
/// threads through every durability-critical operation.
pub mod site {
    /// Hit before a WAL record is appended.
    pub const APPEND: &str = "store::append";
    /// Hit before a snapshot file is written.
    pub const SNAPSHOT: &str = "store::snapshot";
    /// Hit before every fsync (snapshot temp file and WAL alike).
    pub const FSYNC: &str = "store::fsync";
}

/// Errors from the store layer.
///
/// The variant distinguishes *who is at fault*: [`StoreError::Io`] is
/// the environment (missing file, permissions, full disk),
/// [`StoreError::Corrupt`] is on-disk damage detected by checksum or
/// framing (with the byte offset of the damage), [`StoreError::Format`]
/// is a structurally intact file this build cannot interpret
/// (unsupported version, wrong payload shape), and
/// [`StoreError::Resource`] is an exhausted [`Budget`] (including
/// injected faults).
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure on `path`.
    Io {
        /// The file the operation touched.
        path: PathBuf,
        /// The OS error, rendered.
        message: String,
    },
    /// On-disk corruption: a checksum mismatch or impossible framing at
    /// byte `offset` of the file. Never absorbed — a corrupt store must
    /// fail loudly rather than feed the reasoner wrong state.
    Corrupt {
        /// Byte offset of the first detectably damaged structure.
        offset: u64,
        /// What was wrong there.
        detail: String,
    },
    /// The file is intact but this build cannot interpret it
    /// (unsupported snapshot version, alien payload encoding).
    Format {
        /// Human-readable explanation.
        message: String,
    },
    /// The governing [`Budget`] was exhausted (or a fault was injected
    /// at a `store::*` failpoint site).
    Resource(ResourceExhausted),
}

impl StoreError {
    /// Convenience constructor for OS errors.
    pub fn io(path: &Path, err: &std::io::Error) -> Self {
        StoreError::Io {
            path: path.to_path_buf(),
            message: err.to_string(),
        }
    }

    /// The corruption offset, when this is [`StoreError::Corrupt`].
    pub fn corrupt_offset(&self) -> Option<u64> {
        match self {
            StoreError::Corrupt { offset, .. } => Some(*offset),
            _ => None,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "i/o error on {}: {message}", path.display())
            }
            StoreError::Corrupt { offset, detail } => {
                write!(f, "corrupt store file at byte {offset}: {detail}")
            }
            StoreError::Format { message } => write!(f, "unsupported store format: {message}"),
            StoreError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ResourceExhausted> for StoreError {
    fn from(e: ResourceExhausted) -> Self {
        StoreError::Resource(e)
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temp file first, the temp file is fsynced, then renamed over `path`
/// (a POSIX rename within one directory is atomic), and the parent
/// directory is fsynced best-effort so the rename itself survives a
/// power cut. A crash at any instant leaves either the old file or the
/// complete new one — never a truncated hybrid.
pub fn atomic_write(path: &Path, contents: &[u8]) -> Result<(), StoreError> {
    atomic_write_governed(path, contents, &Budget::unlimited())
}

/// [`atomic_write`] under a [`Budget`]: the fsync passes through the
/// [`site::FSYNC`] failpoint so chaos tests can crash between the data
/// write and the rename.
pub fn atomic_write_governed(
    path: &Path,
    contents: &[u8],
    budget: &Budget,
) -> Result<(), StoreError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Io {
            path: path.to_path_buf(),
            message: "path has no file name".to_string(),
        })?;
    // Temp file in the *same directory* (rename must not cross a mount)
    // with the pid in the name so concurrent processes never collide.
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    let write = |tmp: &Path| -> Result<(), StoreError> {
        let mut f = File::create(tmp).map_err(|e| StoreError::io(tmp, &e))?;
        f.write_all(contents).map_err(|e| StoreError::io(tmp, &e))?;
        budget.failpoint(site::FSYNC)?;
        f.sync_all().map_err(|e| StoreError::io(tmp, &e))?;
        std::fs::rename(tmp, path).map_err(|e| StoreError::io(path, &e))?;
        sync_parent_dir(path);
        Ok(())
    };
    let out = write(&tmp);
    if out.is_err() {
        // Best-effort cleanup: never leave the temp file behind on a
        // failed (or fault-injected) write.
        let _ = std::fs::remove_file(&tmp);
    }
    out
}

/// Best-effort fsync of `path`'s parent directory, making the rename
/// that just placed `path` durable. Errors are ignored: directory
/// fsync is not supported on every platform, and the data file itself
/// is already synced.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Opens `path` for appending, creating it if absent.
fn open_append(path: &Path) -> Result<File, StoreError> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| StoreError::io(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nalist_store_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_content() {
        let d = tmp_dir("aw");
        let p = d.join("out.txt");
        atomic_write(&p, b"first").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"first");
        atomic_write(&p, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"second, longer content");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn atomic_write_injected_fsync_fault_leaves_old_file_intact() {
        use nalist_guard::{FailAction, FailPoint};
        let d = tmp_dir("aw_fault");
        let p = d.join("out.txt");
        atomic_write(&p, b"old").unwrap();
        let budget = Budget::unlimited()
            .with_failpoint(FailPoint::every(site::FSYNC, FailAction::ExhaustFuel));
        let err = atomic_write_governed(&p, b"new", &budget).expect_err("fault must surface");
        assert!(matches!(err, StoreError::Resource(_)));
        assert_eq!(std::fs::read(&p).unwrap(), b"old", "old file untouched");
        // no temp litter
        assert_eq!(std::fs::read_dir(&d).unwrap().count(), 1);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn atomic_write_rejects_pathless_target() {
        assert!(matches!(
            atomic_write(Path::new("/"), b"x"),
            Err(StoreError::Io { .. })
        ));
    }
}
