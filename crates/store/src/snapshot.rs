//! The versioned snapshot format: one self-checking file holding an
//! opaque payload (the reasoner's serialized state — see
//! `membership::persist` for the payload encoding).
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "NALSNAP1"
//! 8       4     format version, u32 LE
//! 12      4     payload length, u32 LE
//! 16      4     CRC-32 over bytes 8..16 ++ payload
//! 20      n     payload
//! ```
//!
//! The checksum covers the version and length fields as well as the
//! payload, so *any* single flipped byte after the magic fails the CRC
//! and reads back as [`StoreError::Corrupt`]; a damaged magic is
//! `Corrupt { offset: 0 }`. A CRC-valid file with an unknown version is
//! [`StoreError::Format`] — intact, just not ours to read.
//!
//! Snapshots are written through [`crate::atomic_write_governed`]
//! (temp file + fsync + atomic rename), with the [`site::SNAPSHOT`]
//! failpoint before any byte is produced and [`site::FSYNC`] before the
//! sync — a crash at either point leaves the previous snapshot intact.
//!
//! [`site::SNAPSHOT`]: crate::site::SNAPSHOT
//! [`site::FSYNC`]: crate::site::FSYNC

use std::path::Path;

use nalist_guard::Budget;
use nalist_obs::{Counter, Recorder};

use crate::crc32::crc32;
use crate::{site, StoreError};

/// First eight bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"NALSNAP1";

/// The snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Bytes of header before the payload starts.
const HEADER_LEN: usize = 20;

/// Writes `payload` as a version-[`SNAPSHOT_VERSION`] snapshot at
/// `path`, atomically. Returns the total file size in bytes.
pub fn write_snapshot(path: &Path, payload: &[u8]) -> Result<u64, StoreError> {
    write_snapshot_governed(
        path,
        payload,
        &Budget::unlimited(),
        &nalist_obs::NoopRecorder,
    )
}

/// [`write_snapshot`] under a [`Budget`] and observability recorder
/// (bumps the `snapshot_writes` counter).
pub fn write_snapshot_governed(
    path: &Path,
    payload: &[u8],
    budget: &Budget,
    rec: &dyn Recorder,
) -> Result<u64, StoreError> {
    budget.failpoint(site::SNAPSHOT)?;
    let file = encode_snapshot(payload)?;
    crate::atomic_write_governed(path, &file, budget)?;
    rec.add(Counter::SnapshotWrites, 1);
    Ok(file.len() as u64)
}

/// Serialises `payload` into the self-checking snapshot container (the
/// exact bytes [`write_snapshot`] puts on disk) without touching the
/// filesystem. Replication streams these bytes to followers.
pub fn encode_snapshot(payload: &[u8]) -> Result<Vec<u8>, StoreError> {
    let len = u32::try_from(payload.len()).map_err(|_| StoreError::Format {
        message: format!(
            "snapshot payload of {} bytes exceeds the u32 format limit",
            payload.len()
        ),
    })?;
    let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
    file.extend_from_slice(SNAPSHOT_MAGIC);
    file.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    file.extend_from_slice(&len.to_le_bytes());
    let mut checked = Vec::with_capacity(8 + payload.len());
    checked.extend_from_slice(&file[8..16]);
    checked.extend_from_slice(payload);
    file.extend_from_slice(&crc32(&checked).to_le_bytes());
    file.extend_from_slice(payload);
    Ok(file)
}

/// Reads and verifies the snapshot at `path`, returning its payload.
///
/// Every integrity violation — short file, bad magic, length
/// disagreement, checksum mismatch — is [`StoreError::Corrupt`] with
/// the offset of the damage; an intact file with a version this build
/// does not know is [`StoreError::Format`].
pub fn read_snapshot(path: &Path) -> Result<Vec<u8>, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, &e))?;
    decode_snapshot(&bytes)
}

/// Verifies an in-memory snapshot container ([`encode_snapshot`] /
/// the bytes of a snapshot file) and returns its payload. Same
/// integrity contract as [`read_snapshot`]: any flipped byte after the
/// magic is [`StoreError::Corrupt`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<u8>, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Corrupt {
            offset: bytes.len() as u64,
            detail: format!(
                "snapshot header truncated: {} of {HEADER_LEN} bytes",
                bytes.len()
            ),
        });
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt {
            offset: 0,
            detail: "bad snapshot magic".to_string(),
        });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let stored_crc = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return Err(StoreError::Corrupt {
            offset: 12,
            detail: format!(
                "declared payload length {len} but {} bytes follow the header",
                payload.len()
            ),
        });
    }
    let mut checked = Vec::with_capacity(8 + payload.len());
    checked.extend_from_slice(&bytes[8..16]);
    checked.extend_from_slice(payload);
    if crc32(&checked) != stored_crc {
        return Err(StoreError::Corrupt {
            offset: 16,
            detail: "snapshot checksum mismatch".to_string(),
        });
    }
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::Format {
            message: format!(
                "snapshot version {version} (this build reads version {SNAPSHOT_VERSION})"
            ),
        });
    }
    Ok(bytes[HEADER_LEN..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nalist_snap_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("state.snap")
    }

    #[test]
    fn round_trip() {
        let p = tmp("rt");
        let payload = b"arbitrary payload \x00\x01\x02";
        write_snapshot(&p, payload).unwrap();
        assert_eq!(read_snapshot(&p).unwrap(), payload);
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn in_memory_encode_decode_matches_the_file_format() {
        let p = tmp("mem");
        let payload = b"shipped to a follower";
        write_snapshot(&p, payload).unwrap();
        let file_bytes = std::fs::read(&p).unwrap();
        assert_eq!(encode_snapshot(payload).unwrap(), file_bytes);
        assert_eq!(decode_snapshot(&file_bytes).unwrap(), payload);
        let mut dirty = file_bytes;
        dirty[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            decode_snapshot(&dirty),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn empty_payload_round_trips() {
        let p = tmp("empty");
        write_snapshot(&p, b"").unwrap();
        assert_eq!(read_snapshot(&p).unwrap(), b"");
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let p = tmp("flip");
        write_snapshot(&p, b"sixteen byte pay").unwrap();
        let clean = std::fs::read(&p).unwrap();
        for i in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x40;
            std::fs::write(&p, &dirty).unwrap();
            match read_snapshot(&p) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip at byte {i}: expected Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn truncated_header_is_corrupt() {
        let p = tmp("trunc");
        write_snapshot(&p, b"payload").unwrap();
        let clean = std::fs::read(&p).unwrap();
        for keep in [0usize, 1, 7, 8, 19] {
            std::fs::write(&p, &clean[..keep]).unwrap();
            match read_snapshot(&p) {
                Err(StoreError::Corrupt { offset, .. }) => {
                    assert_eq!(offset, keep as u64);
                }
                other => panic!("keep={keep}: expected Corrupt, got {other:?}"),
            }
        }
        // truncated payload: header intact, payload short
        std::fs::write(&p, &clean[..clean.len() - 1]).unwrap();
        assert!(matches!(read_snapshot(&p), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn future_version_is_format_error_not_corrupt() {
        let p = tmp("ver");
        // hand-build a version-2 file with a correct checksum
        let payload = b"from the future";
        let len = payload.len() as u32;
        let mut file = Vec::new();
        file.extend_from_slice(SNAPSHOT_MAGIC);
        file.extend_from_slice(&2u32.to_le_bytes());
        file.extend_from_slice(&len.to_le_bytes());
        let mut checked = file[8..16].to_vec();
        checked.extend_from_slice(payload);
        file.extend_from_slice(&crc32(&checked).to_le_bytes());
        file.extend_from_slice(payload);
        std::fs::write(&p, &file).unwrap();
        assert!(matches!(read_snapshot(&p), Err(StoreError::Format { .. })));
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn missing_file_is_io() {
        assert!(matches!(
            read_snapshot(Path::new("/nonexistent/nalist.snap")),
            Err(StoreError::Io { .. })
        ));
    }

    #[test]
    fn injected_snapshot_fault_preserves_previous_snapshot() {
        use nalist_guard::{FailAction, FailPoint};
        let p = tmp("fault");
        write_snapshot(&p, b"generation 1").unwrap();
        let budget = Budget::unlimited()
            .with_failpoint(FailPoint::every(site::SNAPSHOT, FailAction::ExhaustFuel));
        let err = write_snapshot_governed(&p, b"generation 2", &budget, &nalist_obs::NoopRecorder)
            .unwrap_err();
        assert!(matches!(err, StoreError::Resource(_)));
        assert_eq!(read_snapshot(&p).unwrap(), b"generation 1");
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }
}
