//! The little-endian, length-prefixed binary encoding layer shared by
//! every payload format built on this store. Deliberately tiny: four
//! scalar shapes (`u8`, `u32`, `u64`, length-prefixed bytes/str) are
//! enough for snapshots and WAL records, and a [`Reader`] that tracks
//! its absolute offset turns every decode failure into a
//! [`StoreError::Corrupt`] pointing at the damaged byte.

use crate::StoreError;

/// An append-only byte buffer with the store's scalar encodings.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends `bytes` with a `u32` length prefix.
    ///
    /// # Panics
    /// Panics if `bytes` exceeds `u32::MAX` — payloads that size are a
    /// caller bug, not an encodable state.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.u32(u32::try_from(bytes.len()).expect("store payload piece exceeds u32::MAX"));
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a string as length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// A cursor over encoded bytes. `base` is the absolute file offset of
/// byte 0, so corruption errors report positions in the *file*, not in
/// the slice handed to the reader.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, reporting offsets relative to the slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader::with_base(bytes, 0)
    }

    /// A reader over `bytes` that sits at absolute file offset `base`.
    pub fn with_base(bytes: &'a [u8], base: u64) -> Self {
        Reader {
            bytes,
            pos: 0,
            base,
        }
    }

    /// The absolute offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the reader is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            offset: self.offset(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "truncated {what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let at = self.offset();
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(StoreError::Corrupt {
                offset: at,
                detail: format!(
                    "length prefix {len} overruns the {} remaining bytes",
                    self.remaining()
                ),
            });
        }
        self.take(len, "length-prefixed bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, StoreError> {
        let at = self.offset();
        let raw = self.bytes()?;
        std::str::from_utf8(raw).map_err(|e| StoreError::Corrupt {
            offset: at,
            detail: format!("invalid UTF-8 in string: {e}"),
        })
    }

    /// Asserts the reader consumed everything; trailing garbage is
    /// corruption (the checksum covered it, so it was *written* —
    /// meaning the encoder and decoder disagree).
    pub fn finish(self) -> Result<(), StoreError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} unexpected trailing bytes", self.remaining())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_shapes() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.bytes(b"raw");
        w.str("héllo λ");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "héllo λ");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_reports_the_absolute_offset() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::with_base(&bytes[..5], 100);
        let err = r.u64().unwrap_err();
        assert_eq!(err.corrupt_offset(), Some(100));
    }

    #[test]
    fn oversized_length_prefix_is_corrupt_not_panic() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // length prefix far past EOF
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.bytes(),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(
            r.finish(),
            Err(StoreError::Corrupt { offset: 1, .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.str(),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
    }
}
