//! Hand-rolled CRC-32 (IEEE 802.3, reflected, polynomial
//! `0xEDB88320`) — the checksum both store formats use. Table-driven,
//! with the table built at compile time; no external crate, matching
//! the workspace's zero-dependency policy.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF`) —
/// byte-compatible with zlib's `crc32()`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(!0, bytes)
}

/// Streaming form: feed chunks through a running state seeded with
/// `!0`, then finish with `!state`. [`crc32`] is the one-shot wrapper.
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // reference values from the zlib crc32() implementation
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"abcdefghijklmnopqrstuvwxyz0123456789";
        for split in 0..data.len() {
            let state = update(!0, &data[..split]);
            assert_eq!(!update(state, &data[split..]), crc32(data));
        }
    }

    #[test]
    fn single_bit_flip_always_changes_the_checksum() {
        let data = b"nalist store integrity probe";
        let base = crc32(data);
        let mut copy = *data;
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
