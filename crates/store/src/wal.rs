//! The append-only write-ahead log: a magic header followed by
//! length-prefixed, CRC-checksummed records.
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic "NALWAL01"
//! --- per record, back to back ---
//! +0      4     payload length, u32 LE
//! +4      4     CRC-32 over length ++ payload
//! +8      n     payload
//! ```
//!
//! ## Recovery policy (torn tail vs corruption)
//!
//! A crash can cut the *final* record short — the writer emits each
//! record with one `write_all`, so the only partial state a crash can
//! leave is a record whose bytes end before its declared length (or a
//! partial length prefix, or a partial magic in a log that died at
//! birth). [`read_wal`] treats exactly that as a **torn tail**: the
//! complete prefix is returned and [`WalReplay::truncated_at`] reports
//! where the tail was cut.
//!
//! Everything else — a checksum mismatch on any *complete* record, a
//! record declaring an absurd length, a damaged magic — cannot be
//! produced by a crash of this writer, only by bit rot or tampering,
//! and is a hard [`StoreError::Corrupt`] with the record's offset.
//! Corruption is never absorbed: a log that fails its checksums must
//! not feed the reasoner.
//!
//! One case is undecidable from the bytes alone: a length prefix
//! damaged *upward* so the record appears to run past EOF looks
//! exactly like a crash that cut a large append short. The reader
//! takes the prefix-consistent reading (truncate there) — recovery
//! then corresponds to a legitimate prefix of the operation history,
//! never to a state no sequence of appends could produce. Any damage
//! that keeps the record inside the file fails its CRC instead.
//!
//! Appends pass the [`site::APPEND`] failpoint before writing and
//! [`site::FSYNC`] before syncing, and bump the `wal_appends` /
//! `wal_fsyncs` counters.
//!
//! [`site::APPEND`]: crate::site::APPEND
//! [`site::FSYNC`]: crate::site::FSYNC

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use nalist_guard::Budget;
use nalist_obs::{Counter, Recorder};

use crate::crc32::crc32;
use crate::{site, StoreError};

/// First eight bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"NALWAL01";

/// Per-record framing overhead (length + checksum).
const RECORD_HEADER: usize = 8;

/// Upper bound on a single record's payload. A length prefix beyond
/// this is treated as corruption rather than attempted allocation.
const MAX_RECORD_LEN: usize = 1 << 28;

/// An open write-ahead log, appending records to the end of the file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    fsync: bool,
    /// Offset of the next byte to be written (== current file length).
    end: u64,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path` and writes the magic
    /// header. `fsync` controls whether each append is synced to disk
    /// before returning — durability for the price of a disk flush.
    pub fn create(path: &Path, fsync: bool) -> Result<Self, StoreError> {
        let mut file = File::create(path).map_err(|e| StoreError::io(path, &e))?;
        file.write_all(WAL_MAGIC)
            .map_err(|e| StoreError::io(path, &e))?;
        if fsync {
            file.sync_all().map_err(|e| StoreError::io(path, &e))?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            fsync,
            end: WAL_MAGIC.len() as u64,
        })
    }

    /// Opens an existing log for appending. The log is verified first
    /// ([`read_wal`]) so appends never extend a corrupt or torn file:
    /// recovery semantics stay "replay then continue", not "continue
    /// past damage". Returns the writer and the verified replay.
    pub fn open(path: &Path, fsync: bool) -> Result<(Self, WalReplay), StoreError> {
        let replay = read_wal(path)?;
        if let Some(at) = replay.truncated_at {
            return Err(StoreError::Corrupt {
                offset: at,
                detail: "refusing to append to a torn log; recover it first".to_string(),
            });
        }
        let file = crate::open_append(path)?;
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                fsync,
                end: replay.len,
            },
            replay,
        ))
    }

    /// Appends one record. Returns the file offset the record starts
    /// at. The record bytes are emitted with a single `write_all`, so a
    /// crash leaves at worst a torn tail (see the module docs).
    pub fn append(
        &mut self,
        payload: &[u8],
        budget: &Budget,
        rec: &dyn Recorder,
    ) -> Result<u64, StoreError> {
        budget.failpoint(site::APPEND)?;
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| (l as usize) <= MAX_RECORD_LEN)
            .ok_or_else(|| StoreError::Format {
                message: format!(
                    "WAL record of {} bytes exceeds the format limit",
                    payload.len()
                ),
            })?;
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&len.to_le_bytes());
        let mut checked = len.to_le_bytes().to_vec();
        checked.extend_from_slice(payload);
        record.extend_from_slice(&crc32(&checked).to_le_bytes());
        record.extend_from_slice(payload);
        let at = self.end;
        self.file
            .write_all(&record)
            .map_err(|e| StoreError::io(&self.path, &e))?;
        self.end += record.len() as u64;
        rec.add(Counter::WalAppends, 1);
        if self.fsync {
            budget.failpoint(site::FSYNC)?;
            self.file
                .sync_data()
                .map_err(|e| StoreError::io(&self.path, &e))?;
            rec.add(Counter::WalFsyncs, 1);
        }
        Ok(at)
    }

    /// Offset one past the last byte this writer has appended (== the
    /// current file length). Replication tails the log up to here.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The log's path on disk.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A verified slice of the log — complete records cut from an absolute
/// byte offset, as shipped to a replication follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSegment {
    /// `(start_offset, payload)` per record, in append order. Offsets
    /// are absolute file offsets, so `records.last().0 + 8 + len` is
    /// the next offset to tail from.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Absolute offset one past the last complete record in the
    /// segment — the follower's next `from`.
    pub end: u64,
}

/// Reads the raw log bytes `[from, to)` for shipping to a follower.
///
/// The caller is expected to bound `to` by [`WalWriter::end`]; a file
/// that turns out shorter than `to` (the log was replaced underneath
/// us — compaction) is [`StoreError::Corrupt`] at the point the bytes
/// ran out, which the replication protocol answers with a
/// re-snapshot handshake.
pub fn read_wal_range(path: &Path, from: u64, to: u64) -> Result<Vec<u8>, StoreError> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    if to < from {
        return Err(StoreError::Format {
            message: format!("bad WAL range: {from}..{to}"),
        });
    }
    let mut file = File::open(path).map_err(|e| StoreError::io(path, &e))?;
    file.seek(SeekFrom::Start(from))
        .map_err(|e| StoreError::io(path, &e))?;
    let want = (to - from) as usize;
    let mut bytes = Vec::with_capacity(want);
    file.take(to - from)
        .read_to_end(&mut bytes)
        .map_err(|e| StoreError::io(path, &e))?;
    if bytes.len() < want {
        return Err(StoreError::Corrupt {
            offset: from + bytes.len() as u64,
            detail: format!(
                "log ends {} byte(s) before the requested range {from}..{to}",
                want - bytes.len()
            ),
        });
    }
    Ok(bytes)
}

/// Parses a byte slice cut from the log at absolute offset `base`
/// (which must be a record boundary at or past the magic header) into
/// its records, verifying every checksum.
///
/// With `allow_torn` the segment may end mid-record — the complete
/// prefix is returned and [`WalSegment::end`] reports where it stops
/// (the writer side uses this to cut a capped segment at a record
/// boundary). Without it a partial record is [`StoreError::Corrupt`]:
/// a *shipped* segment always ends on a boundary, so a torn one was
/// damaged in flight or cut from a mid-record offset after the log
/// was compacted underneath the reader.
pub fn parse_wal_segment(
    bytes: &[u8],
    base: u64,
    allow_torn: bool,
) -> Result<WalSegment, StoreError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalSegment {
                records,
                end: base + pos as u64,
            });
        }
        let torn = |detail: String| {
            if allow_torn {
                Ok(WalSegment {
                    records: records.clone(),
                    end: base + pos as u64,
                })
            } else {
                Err(StoreError::Corrupt {
                    offset: base + pos as u64,
                    detail,
                })
            }
        };
        if remaining < RECORD_HEADER {
            return torn(format!(
                "segment ends {remaining} byte(s) into a record header"
            ));
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len > MAX_RECORD_LEN {
            return Err(StoreError::Corrupt {
                offset: base + pos as u64,
                detail: format!("record declares an absurd length of {len} bytes"),
            });
        }
        if len > remaining - RECORD_HEADER {
            return torn(format!(
                "record declares {len} payload byte(s) but the segment ends first"
            ));
        }
        let stored_crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let payload = &bytes[pos + RECORD_HEADER..pos + RECORD_HEADER + len];
        let mut checked = bytes[pos..pos + 4].to_vec();
        checked.extend_from_slice(payload);
        if crc32(&checked) != stored_crc {
            return Err(StoreError::Corrupt {
                offset: base + pos as u64,
                detail: "record checksum mismatch".to_string(),
            });
        }
        records.push((base + pos as u64, payload.to_vec()));
        pos += RECORD_HEADER + len;
    }
}

/// The verified contents of a WAL: every complete, checksum-valid
/// record, plus where a torn tail (if any) was cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// `Some(offset)` if the file ended mid-record: the crash artifact
    /// starts at `offset` and everything before it is intact.
    pub truncated_at: Option<u64>,
    /// File length up to and including the last complete record —
    /// where a repaired log would end.
    pub len: u64,
}

/// Reads and verifies the log at `path` under the recovery policy in
/// the module docs: torn tail → truncate and report, anything else
/// invalid → [`StoreError::Corrupt`].
///
/// A zero-length file is a valid empty log (created, never written).
pub fn read_wal(path: &Path) -> Result<WalReplay, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, &e))?;
    if bytes.is_empty() {
        return Ok(WalReplay {
            records: Vec::new(),
            truncated_at: None,
            len: 0,
        });
    }
    if bytes.len() < WAL_MAGIC.len() {
        // the crash hit while the header itself was being written
        if *WAL_MAGIC.get(..bytes.len()).unwrap_or(&[]) == bytes[..] {
            return Ok(WalReplay {
                records: Vec::new(),
                truncated_at: Some(0),
                len: 0,
            });
        }
        return Err(StoreError::Corrupt {
            offset: 0,
            detail: "bad WAL magic".to_string(),
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::Corrupt {
            offset: 0,
            detail: "bad WAL magic".to_string(),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalReplay {
                records,
                truncated_at: None,
                len: pos as u64,
            });
        }
        if remaining < RECORD_HEADER {
            // partial length/checksum header: torn tail
            return Ok(WalReplay {
                records,
                truncated_at: Some(pos as u64),
                len: pos as u64,
            });
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len > MAX_RECORD_LEN {
            return Err(StoreError::Corrupt {
                offset: pos as u64,
                detail: format!("record declares an absurd length of {len} bytes"),
            });
        }
        let stored_crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > remaining - RECORD_HEADER {
            // declared payload extends past EOF: torn tail
            return Ok(WalReplay {
                records,
                truncated_at: Some(pos as u64),
                len: pos as u64,
            });
        }
        let payload = &bytes[pos + RECORD_HEADER..pos + RECORD_HEADER + len];
        let mut checked = bytes[pos..pos + 4].to_vec();
        checked.extend_from_slice(payload);
        if crc32(&checked) != stored_crc {
            return Err(StoreError::Corrupt {
                offset: pos as u64,
                detail: "record checksum mismatch".to_string(),
            });
        }
        records.push(payload.to_vec());
        pos += RECORD_HEADER + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nalist_wal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("ops.wal")
    }

    fn noop() -> nalist_obs::NoopRecorder {
        nalist_obs::NoopRecorder
    }

    fn write_log(path: &Path, payloads: &[&[u8]]) {
        let mut w = WalWriter::create(path, false).unwrap();
        for p in payloads {
            w.append(p, &Budget::unlimited(), &noop()).unwrap();
        }
    }

    #[test]
    fn round_trip_preserves_order_and_bytes() {
        let p = tmp("rt");
        write_log(&p, &[b"+ first", b"- second", b"", b"? third \x00\x80"]);
        let replay = read_wal(&p).unwrap();
        assert_eq!(
            replay.records,
            vec![
                b"+ first".to_vec(),
                b"- second".to_vec(),
                Vec::new(),
                b"? third \x00\x80".to_vec()
            ]
        );
        assert_eq!(replay.truncated_at, None);
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn zero_length_file_is_a_valid_empty_log() {
        let p = tmp("empty");
        std::fs::write(&p, b"").unwrap();
        let replay = read_wal(&p).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.truncated_at, None);
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_at_every_cut_point_truncates_never_errors() {
        let p = tmp("torn");
        write_log(&p, &[b"alpha", b"beta"]);
        let clean = std::fs::read(&p).unwrap();
        let second_record_at = 8 + 8 + 5; // magic + record("alpha")
                                          // cut anywhere inside the second record: first record survives
        for cut in second_record_at + 1..clean.len() {
            std::fs::write(&p, &clean[..cut]).unwrap();
            let replay = read_wal(&p).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(replay.records, vec![b"alpha".to_vec()], "cut at {cut}");
            assert_eq!(replay.truncated_at, Some(second_record_at as u64));
            assert_eq!(replay.len, second_record_at as u64);
        }
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_magic_is_truncation_not_corruption() {
        let p = tmp("torn_magic");
        for keep in 0..WAL_MAGIC.len() {
            std::fs::write(&p, &WAL_MAGIC[..keep]).unwrap();
            let replay = read_wal(&p).unwrap();
            assert!(replay.records.is_empty());
            assert_eq!(replay.truncated_at, if keep == 0 { None } else { Some(0) });
        }
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn mid_log_flip_is_corrupt_at_the_damaged_record() {
        let p = tmp("midflip");
        write_log(&p, &[b"alpha", b"beta", b"gamma"]);
        let clean = std::fs::read(&p).unwrap();
        // Flip the first record's body — its checksum, its payload, and
        // the length-prefix byte whose flip keeps the record inside the
        // file: always Corrupt, never a silent truncation, because a
        // crash of this writer cannot produce in-file damage.
        for i in (8..9).chain(12..8 + 8 + 5) {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x01;
            std::fs::write(&p, &dirty).unwrap();
            match read_wal(&p) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip at {i}: expected Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn inflated_length_prefix_reads_as_torn_tail() {
        // A length prefix damaged *upward* past EOF is indistinguishable
        // from a crash that cut a large append short: the reader takes
        // the prefix-consistent reading and truncates there. (In-file
        // damage, by contrast, always fails a checksum — see above.)
        let p = tmp("inflate");
        write_log(&p, &[b"alpha", b"beta"]);
        let clean = std::fs::read(&p).unwrap();
        let mut dirty = clean.clone();
        dirty[8 + 2] ^= 0x01; // len("alpha") = 5 -> 65541, far past EOF
        std::fs::write(&p, &dirty).unwrap();
        let replay = read_wal(&p).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.truncated_at, Some(8));
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn flipped_byte_in_last_complete_record_is_corrupt() {
        let p = tmp("lastflip");
        write_log(&p, &[b"only record"]);
        let clean = std::fs::read(&p).unwrap();
        // flip in the payload and in the crc of the final record
        for i in [12, 16, clean.len() - 1] {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x10;
            std::fs::write(&p, &dirty).unwrap();
            match read_wal(&p) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip at {i}: expected Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn bad_magic_is_corrupt_at_offset_zero() {
        let p = tmp("magic");
        std::fs::write(&p, b"NOTAWAL0rest").unwrap();
        assert_eq!(read_wal(&p).unwrap_err().corrupt_offset(), Some(0));
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn open_resumes_at_the_end_and_refuses_torn_logs() {
        let p = tmp("open");
        write_log(&p, &[b"one"]);
        let (mut w, replay) = WalWriter::open(&p, false).unwrap();
        assert_eq!(replay.records.len(), 1);
        w.append(b"two", &Budget::unlimited(), &noop()).unwrap();
        drop(w);
        assert_eq!(read_wal(&p).unwrap().records.len(), 2);
        // tear the tail; open must refuse
        let clean = std::fs::read(&p).unwrap();
        std::fs::write(&p, &clean[..clean.len() - 1]).unwrap();
        assert!(matches!(
            WalWriter::open(&p, false),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn injected_append_fault_leaves_log_replayable() {
        use nalist_guard::{FailAction, FailPoint};
        let p = tmp("fault");
        let mut w = WalWriter::create(&p, false).unwrap();
        w.append(b"committed", &Budget::unlimited(), &noop())
            .unwrap();
        let budget = Budget::unlimited()
            .with_failpoint(FailPoint::every(site::APPEND, FailAction::ExhaustFuel));
        assert!(matches!(
            w.append(b"never lands", &budget, &noop()),
            Err(StoreError::Resource(_))
        ));
        drop(w);
        let replay = read_wal(&p).unwrap();
        assert_eq!(replay.records, vec![b"committed".to_vec()]);
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn range_read_and_segment_parse_round_trip_from_any_boundary() {
        let p = tmp("segment");
        let payloads: [&[u8]; 3] = [b"alpha", b"bb", b"gamma rays"];
        let mut w = WalWriter::create(&p, false).unwrap();
        let mut offsets = Vec::new();
        for pl in payloads {
            offsets.push(w.append(pl, &Budget::unlimited(), &noop()).unwrap());
        }
        let end = w.end();
        drop(w);
        for (i, &from) in offsets.iter().enumerate() {
            let bytes = read_wal_range(&p, from, end).unwrap();
            let seg = parse_wal_segment(&bytes, from, false).unwrap();
            assert_eq!(seg.end, end);
            assert_eq!(seg.records.len(), payloads.len() - i);
            for (j, (at, payload)) in seg.records.iter().enumerate() {
                assert_eq!(*at, offsets[i + j]);
                assert_eq!(payload, payloads[i + j]);
            }
        }
        // an empty tail range parses to an empty segment
        let seg = parse_wal_segment(&[], end, false).unwrap();
        assert!(seg.records.is_empty());
        assert_eq!(seg.end, end);
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn range_past_eof_is_corrupt_for_the_compaction_handshake() {
        let p = tmp("range_eof");
        write_log(&p, &[b"only"]);
        let len = std::fs::metadata(&p).unwrap().len();
        assert!(matches!(
            read_wal_range(&p, len, len + 10),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            read_wal_range(&p, 10, 5),
            Err(StoreError::Format { .. })
        ));
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn shipped_segment_flips_and_cuts_are_typed_rejects() {
        let p = tmp("segment_flip");
        write_log(&p, &[b"alpha", b"beta"]);
        let end = std::fs::metadata(&p).unwrap().len();
        let from = WAL_MAGIC.len() as u64;
        let clean = read_wal_range(&p, from, end).unwrap();
        // every single-byte flip in the shipped bytes is Corrupt under
        // the strict (follower) parse: payload/CRC flips fail the
        // checksum (which covers the length prefix too), and a length
        // inflated past the segment end reads as torn — rejected
        for i in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x20;
            match parse_wal_segment(&dirty, from, false) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip at {i}: expected Corrupt, got {other:?}"),
            }
        }
        // a mid-record cut is torn-tolerated for the writer, Corrupt
        // for the follower
        let cut = &clean[..clean.len() - 1];
        let seg = parse_wal_segment(cut, from, true).unwrap();
        assert_eq!(seg.records.len(), 1);
        assert!(matches!(
            parse_wal_segment(cut, from, false),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }

    #[test]
    fn append_counters_are_reported() {
        let p = tmp("counters");
        let rec = nalist_obs::MetricsRecorder::new();
        let mut w = WalWriter::create(&p, true).unwrap();
        w.append(b"a", &Budget::unlimited(), &rec).unwrap();
        w.append(b"b", &Budget::unlimited(), &rec).unwrap();
        assert_eq!(rec.counter(Counter::WalAppends), 2);
        assert_eq!(rec.counter(Counter::WalFsyncs), 2);
        std::fs::remove_dir_all(p.parent().unwrap()).unwrap();
    }
}
