//! # nalist-gen
//!
//! Workload generation for the evaluation (DESIGN.md experiments):
//!
//! * [`attr_gen`] — random nested attributes with exact atom counts
//!   (`|N| = |SubB(N)|` sweeps for the complexity experiments);
//! * [`sigma_gen`] — random subattributes and dependency sets;
//! * [`edits`] — random `Σ` edit scripts (add/remove/query) for the
//!   incremental-maintenance cross-validation and benchmarks;
//! * [`instance_gen`] — random values/instances and Σ-satisfying
//!   instances via the completeness construction;
//! * [`scenarios`] — fixed named workloads: the paper's pub-crawl
//!   example, a genomic sequence database, and an XML-style order store;
//! * [`defects`] — seeders that plant a known defect (trivial, duplicate,
//!   subsumed, inflated LHS) into a Σ, for exercising the lint rules, and
//!   single-field certificate corrupters for exercising the checker;
//! * [`chaos`] — pathological corpora (depth bombs, atom bombs, megabyte
//!   identifiers, mangled spec files) and fail-point re-exports for the
//!   fault-tolerance harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr_gen;
pub mod chaos;
pub mod defects;
pub mod edits;
pub mod instance_gen;
pub mod scenarios;
pub mod sigma_gen;

pub use attr_gen::{attr_with_atoms, flat_attr, random_attr, AttrConfig};
pub use chaos::{durability_corpus, wire_corpus, ChaosCase, DurabilityCase, Expectation, WireCase};
pub use defects::{
    certificate_defects, render_sigma, seed_duplicate, seed_inflated_lhs, seed_trivial,
    seed_weakened, Defect,
};
pub use edits::{random_edit_script, EditConfig, EditOp};
pub use instance_gen::{random_instance, random_value, satisfying_instance, InstanceConfig};
pub use scenarios::Scenario;
pub use sigma_gen::{random_dep, random_sigma, random_subattr, SigmaConfig};
