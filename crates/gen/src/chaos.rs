//! Pathological inputs for fault-tolerance testing.
//!
//! Every case in [`corpus`] is something a hostile (or merely unlucky)
//! user could feed the toolchain: schemas nested thousands of levels
//! deep, megabyte-long identifiers, atom-count bombs, byte-order marks,
//! CRLF and NUL bytes, truncated dependency lines, and names that look
//! like filesystem paths. The contract under test is uniform — every
//! public entry point, given any of these, either succeeds or returns a
//! structured error within its deadline. It never panics and never runs
//! unbounded.
//!
//! Fault *injection* (as opposed to hostile input) is the other half of
//! the chaos harness: [`FailPoint`]s, re-exported here from
//! `nalist-guard`, let a test make a specific internal site fail or
//! panic on its nth execution.

pub use nalist_guard::{FailAction, FailPoint, INJECTED_PANIC};

/// One pathological spec: a schema source and a dependency-file source,
/// plus the coarse outcome the harness should expect.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Short unique identifier, used in test output.
    pub name: &'static str,
    /// The schema file contents (one nested attribute, possibly mangled).
    pub schema: String,
    /// The dependency file contents (possibly mangled).
    pub deps: String,
    /// Whether a correct implementation can accept this input at all.
    pub expect: Expectation,
}

/// The coarse contract for a chaos case. Deliberately loose — the
/// harness asserts *termination with a structured outcome*, not specific
/// answers — but distinguishing the two keeps accidental rejections of
/// valid input visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Valid input: must load (possibly with diagnostics), never error.
    Accept,
    /// Invalid or resource-hostile input: a structured error (parse,
    /// domain or resource) is acceptable; success is too, if the
    /// implementation is generous. Only a panic or a hang is a failure.
    Survive,
}

/// A schema nested far beyond any sane limit, properly closed.
pub fn depth_bomb(depth: usize) -> String {
    let mut s = String::with_capacity(depth * 3 + 1);
    for _ in 0..depth {
        s.push_str("L[");
    }
    s.push('λ');
    for _ in 0..depth {
        s.push(']');
    }
    s
}

/// A depth bomb with the closing brackets missing: deep *and* truncated.
pub fn truncated_depth_bomb(depth: usize) -> String {
    "L[".repeat(depth)
}

/// A record with `width` distinct flat attributes: `|SubB(N)| = width`,
/// so the subattribute lattice has `2^width` elements.
pub fn atom_bomb(width: usize) -> String {
    let mut s = String::from("Bomb(");
    for i in 0..width {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('A');
        s.push_str(&i.to_string());
    }
    s.push(')');
    s
}

/// A schema whose single attribute name is `len` bytes long.
pub fn megabyte_identifier(len: usize) -> String {
    format!("L({})", "A".repeat(len))
}

/// The full corpus, in a deterministic order.
#[must_use]
pub fn corpus() -> Vec<ChaosCase> {
    let plain_dep = "L(A) -> L(B)\n".to_owned();
    vec![
        ChaosCase {
            name: "empty_schema",
            schema: String::new(),
            deps: String::new(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "empty_deps",
            schema: "L(A, B)".to_owned(),
            deps: String::new(),
            expect: Expectation::Accept,
        },
        ChaosCase {
            name: "comment_only_deps",
            schema: "L(A, B)".to_owned(),
            deps: "# nothing here\n\n   \n# still nothing\n".to_owned(),
            expect: Expectation::Accept,
        },
        ChaosCase {
            name: "depth_bomb_closed",
            schema: depth_bomb(4096),
            deps: String::new(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "depth_bomb_truncated",
            schema: truncated_depth_bomb(65_536),
            deps: String::new(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "depth_bomb_in_dependency",
            schema: "L(A, B)".to_owned(),
            deps: format!("L(A) -> {}\n", truncated_depth_bomb(4096)),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "atom_bomb_wide",
            schema: atom_bomb(10_000),
            deps: plain_dep.clone(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "megabyte_identifier",
            schema: megabyte_identifier(1 << 20),
            deps: String::new(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "bom_prefixed_schema",
            schema: "\u{feff}L(A, B)".to_owned(),
            deps: plain_dep.clone(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "crlf_deps",
            schema: "L(A, B)".to_owned(),
            deps: "L(A) -> L(B)\r\nL(B) ->> L(A)\r\n".to_owned(),
            expect: Expectation::Accept,
        },
        ChaosCase {
            name: "nul_byte_in_schema",
            schema: "L(A\0B)".to_owned(),
            deps: String::new(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "nul_byte_in_deps",
            schema: "L(A, B)".to_owned(),
            deps: "L(A) -> L(B\0)\n".to_owned(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "truncated_dependency",
            schema: "L(A, B)".to_owned(),
            deps: "L(A) ->\n".to_owned(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "arrow_soup",
            schema: "L(A, B)".to_owned(),
            deps: "-> ->> -> L(A)\n->>->\n".to_owned(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "duplicate_attribute_names",
            schema: "L(A, A)".to_owned(),
            deps: "L(A) -> L(A, A)\n".to_owned(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "path_like_identifiers",
            // Identifiers that look like relative filesystem paths must
            // be treated as opaque names, never dereferenced.
            schema: "Dir(DotDotSlashEtc, SelfDir, Con, Nul)".to_owned(),
            deps: "Dir(DotDotSlashEtc) -> Dir(SelfDir)\n".to_owned(),
            expect: Expectation::Accept,
        },
        ChaosCase {
            name: "unbalanced_brackets",
            schema: "L(A, B]".to_owned(),
            deps: String::new(),
            expect: Expectation::Survive,
        },
        ChaosCase {
            name: "whitespace_soup",
            schema: "  \t  L(A, B)  \t ".to_owned(),
            deps: "   L(A)   ->    L(B)   \n\t\n".to_owned(),
            expect: Expectation::Accept,
        },
    ]
}

/// One hostile wire-protocol exchange for the HTTP server.
///
/// The harness opens a fresh connection, writes `bytes` (optionally
/// half-closing the write side afterwards), and reads whatever comes
/// back. The contract is the server-hardening one: a *typed* rejection
/// (the pinned status) or a clean close — never a hang past the read
/// timeout, and never a dead worker (the harness follows every case
/// with a healthy request on a new connection).
#[derive(Debug, Clone)]
pub struct WireCase {
    /// Short unique identifier, used in test output.
    pub name: &'static str,
    /// Raw bytes written to a fresh connection. An *incomplete* request
    /// left unterminated with the socket open is a slowloris stall: the
    /// server's read timeout must answer `408`.
    pub bytes: Vec<u8>,
    /// Half-close the write side after writing (a client that gave up
    /// mid-request); the server still owes a structured answer.
    pub shutdown_after_write: bool,
    /// Pinned status code of the first response; `None` accepts any
    /// complete response or a clean close.
    pub expect_status: Option<u16>,
}

/// Hostile wire-protocol corpus: oversized heads, absurd bodies,
/// truncated and stalled requests, pipelined garbage, binary junk.
/// Status pins follow the `nalist-serve` parser contract (`400`
/// malformed, `408` stall, `413` body cap, `431` head cap).
#[must_use]
pub fn wire_corpus() -> Vec<WireCase> {
    let case = |name, bytes: Vec<u8>, shutdown, expect| WireCase {
        name,
        bytes,
        shutdown_after_write: shutdown,
        expect_status: expect,
    };
    let mut huge_head = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
    huge_head.extend(std::iter::repeat(b'a').take(64 * 1024));
    huge_head.extend_from_slice(b"\r\n\r\n");
    vec![
        case(
            "request-line-garbage",
            b"\x01\x02\x03 garbage junk\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "binary-junk-not-utf8",
            [&[0xFFu8, 0xFE, 0x80, 0x80][..], b" x y\r\n\r\n"].concat(),
            false,
            Some(400),
        ),
        case(
            "lowercase-method",
            b"get / HTTP/1.1\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "missing-version",
            b"GET /\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "unsupported-version",
            b"GET / HTTP/2.0\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "extra-request-line-token",
            b"GET / HTTP/1.1 EXTRA\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "header-without-colon",
            b"GET / HTTP/1.1\r\nnocolon\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "chunked-rejected",
            b"POST /healthz HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "content-length-not-a-number",
            b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "content-length-negative",
            b"POST / HTTP/1.1\r\ncontent-length: -5\r\n\r\n".to_vec(),
            false,
            Some(400),
        ),
        case(
            "body-too-large-declared",
            b"POST /v1/a/query HTTP/1.1\r\ncontent-length: 10000000\r\n\r\n".to_vec(),
            false,
            Some(413),
        ),
        case("head-too-large", huge_head, false, Some(431)),
        case("slowloris-head", b"GET / HTT".to_vec(), false, Some(408)),
        case(
            "slowloris-body",
            b"POST / HTTP/1.1\r\ncontent-length: 50\r\n\r\nabc".to_vec(),
            false,
            Some(408),
        ),
        case(
            "truncated-head-close",
            b"GET / HTT".to_vec(),
            true,
            Some(400),
        ),
        case(
            "truncated-body-close",
            b"POST / HTTP/1.1\r\ncontent-length: 50\r\n\r\nabc".to_vec(),
            true,
            Some(400),
        ),
        case(
            "pipelined-garbage",
            b"GET /healthz HTTP/1.1\r\n\r\nXYZZY JUNK\r\n\r\n".to_vec(),
            false,
            Some(200),
        ),
        case(
            "nul-in-header-value",
            b"GET /nowhere HTTP/1.1\r\nx-a: a\0b\r\n\r\n".to_vec(),
            false,
            None,
        ),
    ]
}

/// One durability chaos case: a (possibly mangled) snapshot file and an
/// optional (possibly mangled) WAL, plus the exit codes a correct
/// `nalist recover` may produce for the pair. The invariant under test
/// is the store contract: damage is *detected* (a structured error,
/// exit 2) or *survived* (a reported torn-tail truncation, exit 0) —
/// never a panic, a hang, or a silently wrong answer.
#[derive(Debug, Clone)]
pub struct DurabilityCase {
    /// Short unique identifier, used in test output.
    pub name: &'static str,
    /// Snapshot file bytes to recover from.
    pub snapshot: Vec<u8>,
    /// WAL file bytes (`None`: recover without `--wal`).
    pub wal: Option<Vec<u8>>,
    /// Exit codes a correct implementation may produce.
    pub expect: &'static [i32],
}

/// Walks the record boundaries of a structurally valid WAL image:
/// returns the byte offset where each record's header starts (after the
/// 8-byte magic). Used to mangle *specific* records.
fn wal_record_offsets(wal: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut at = 8; // skip magic
    while at + 8 <= wal.len() {
        offsets.push(at);
        let len = u32::from_le_bytes(wal[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
    }
    offsets
}

/// The durability corpus: every way a crash (or bit rot) can damage a
/// snapshot/WAL pair, derived by mangling a *valid* pair produced by
/// the caller. Layout knowledge used here: a snapshot is
/// `magic(8) | version(4) | payload-len(4) | crc(4) | payload`, a WAL
/// is `magic(8)` followed by `len(4) | crc(4) | payload` records.
///
/// `valid_wal` must contain at least one record whose payload is at
/// least 4 bytes (any real journal qualifies).
#[must_use]
pub fn durability_corpus(valid_snapshot: &[u8], valid_wal: &[u8]) -> Vec<DurabilityCase> {
    let snap = valid_snapshot.to_vec();
    let wal = valid_wal.to_vec();
    let records = wal_record_offsets(&wal);
    assert!(
        !records.is_empty() && wal.len() > records[records.len() - 1] + 8,
        "durability_corpus needs a WAL with at least one non-empty record"
    );
    let flip = |bytes: &[u8], at: usize| {
        let mut m = bytes.to_vec();
        m[at] ^= 0x01;
        m
    };
    let last = records[records.len() - 1];
    // duplicate the last record verbatim: its CRC only covers its own
    // header+payload, so the copy is checksum-valid — the damage is
    // semantic, not structural
    let mut dup = wal.clone();
    dup.extend_from_slice(&wal[last..]);
    vec![
        DurabilityCase {
            name: "pristine_pair",
            snapshot: snap.clone(),
            wal: Some(wal.clone()),
            expect: &[0],
        },
        DurabilityCase {
            name: "truncated_snapshot_header",
            snapshot: snap[..12.min(snap.len())].to_vec(),
            wal: None,
            expect: &[2],
        },
        DurabilityCase {
            name: "snapshot_bad_magic",
            snapshot: flip(&snap, 0),
            wal: None,
            expect: &[2],
        },
        DurabilityCase {
            name: "snapshot_flipped_crc_byte",
            snapshot: flip(&snap, 16),
            wal: None,
            expect: &[2],
        },
        DurabilityCase {
            name: "snapshot_flipped_payload_byte",
            snapshot: flip(&snap, snap.len() - 1),
            wal: None,
            expect: &[2],
        },
        DurabilityCase {
            name: "zero_byte_wal",
            snapshot: snap.clone(),
            wal: Some(Vec::new()),
            expect: &[0],
        },
        DurabilityCase {
            name: "magic_only_wal",
            snapshot: snap.clone(),
            wal: Some(wal[..8].to_vec()),
            expect: &[0],
        },
        DurabilityCase {
            name: "wal_partial_magic",
            snapshot: snap.clone(),
            wal: Some(wal[..4].to_vec()),
            expect: &[0],
        },
        DurabilityCase {
            name: "wal_torn_tail_mid_record",
            snapshot: snap.clone(),
            wal: Some(wal[..wal.len() - 3].to_vec()),
            expect: &[0],
        },
        DurabilityCase {
            name: "wal_torn_tail_header_only",
            snapshot: snap.clone(),
            wal: Some(wal[..last + 5].to_vec()),
            expect: &[0],
        },
        DurabilityCase {
            name: "wal_mid_log_flipped_crc",
            snapshot: snap.clone(),
            wal: Some(flip(&wal, records[0] + 4)),
            expect: &[2],
        },
        DurabilityCase {
            name: "wal_mid_log_flipped_payload",
            snapshot: snap,
            wal: Some(flip(&wal, records[records.len() - 1] + 8)),
            expect: &[2],
        },
        DurabilityCase {
            name: "wal_duplicate_last_record",
            snapshot: valid_snapshot.to_vec(),
            wal: Some(dup),
            // checksum-valid, so the store accepts it; whether the
            // *reasoner* accepts the doubled operation depends on what
            // it was (a re-run query is harmless, a second remove is
            // a replay error)
            expect: &[0, 1],
        },
    ]
}

/// A version-1 proof certificate for the trivial statement `λ -> λ`,
/// derived by a single reflexivity axiom. Valid against *any*
/// well-formed schema and dependency file — the chaos harness's
/// universal positive certificate, so every corpus case can exercise
/// `nalist check` end to end.
pub fn universal_certificate(schema: &str, deps: &str) -> String {
    use nalist_types::json::Json;
    let sigma: Vec<Json> = deps
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| Json::Str(l.to_owned()))
        .collect();
    Json::Obj(vec![
        (
            "format".to_owned(),
            Json::Str("nalist-certificate".to_owned()),
        ),
        ("version".to_owned(), Json::Num(1.0)),
        ("schema".to_owned(), Json::Str(schema.trim().to_owned())),
        ("sigma".to_owned(), Json::Arr(sigma)),
        (
            "statement".to_owned(),
            Json::Obj(vec![
                ("type".to_owned(), Json::Str("implies".to_owned())),
                ("dep".to_owned(), Json::Str("λ -> λ".to_owned())),
            ]),
        ),
        ("verdict".to_owned(), Json::Str("implied".to_owned())),
        (
            "derivation".to_owned(),
            Json::Arr(vec![Json::Obj(vec![
                ("rule".to_owned(), Json::Str("fd-reflexivity".to_owned())),
                ("inputs".to_owned(), Json::Arr(vec![])),
                (
                    "params".to_owned(),
                    Json::Arr(vec![Json::Str("λ".to_owned()), Json::Str("λ".to_owned())]),
                ),
                ("conclusion".to_owned(), Json::Str("λ -> λ".to_owned())),
            ])]),
        ),
    ])
    .render()
}

/// Hostile certificate documents for `nalist check`: structural bombs,
/// dangling references and semantic lies. Each is paired with a short
/// name for test output. The contract mirrors [`corpus`]: the checker
/// must reject every one of these with a structured error (exit 1, 2
/// or 3) — never a panic, never a hang. They are built for the schema
/// `L(A, B)` with `Σ = { L(A) -> L(B) }`.
pub fn hostile_certificates() -> Vec<(&'static str, String)> {
    let valid = universal_certificate("L(A, B)", "L(A) -> L(B)\n");
    vec![
        ("not_json", "certificate? what certificate".to_owned()),
        ("empty_object", "{}".to_owned()),
        ("json_depth_bomb", format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000))),
        ("truncated_json", valid[..valid.len() / 2].to_owned()),
        ("future_version", valid.replace("\"version\": 1", "\"version\": 99")),
        (
            "foreign_format",
            valid.replace("nalist-certificate", "totally-other-format"),
        ),
        (
            "dangling_premise",
            valid.replace(
                "{\"rule\": \"fd-reflexivity\", \"inputs\": [], \"params\": [\"λ\", \"λ\"], \"conclusion\": \"λ -> λ\"}",
                "{\"premise\": 9999}",
            ),
        ),
        (
            "forward_reference",
            valid.replace("\"inputs\": []", "\"inputs\": [7]"),
        ),
        (
            "unknown_rule",
            valid.replace("fd-reflexivity", "rule-from-the-future"),
        ),
        (
            "schema_mismatch",
            valid.replace("L(A, B)", "M(C, D)"),
        ),
        (
            "sigma_mismatch",
            valid.replace("L(A) -> L(B)", "L(B) -> L(A)"),
        ),
        (
            "verdict_lie",
            valid.replace("\"verdict\": \"implied\"", "\"verdict\": \"not-implied\""),
        ),
        (
            "conclusion_lie",
            valid.replace("\"conclusion\": \"λ -> λ\"", "\"conclusion\": \"L(A) -> L(B)\""),
        ),
        (
            "unparseable_param",
            valid.replace("\"params\": [\"λ\", \"λ\"]", "\"params\": [\"Zzz(((\", \"λ\"]"),
        ),
        (
            "empty_derivation",
            valid.replace(
                "[{\"rule\": \"fd-reflexivity\", \"inputs\": [], \"params\": [\"λ\", \"λ\"], \"conclusion\": \"λ -> λ\"}]",
                "[]",
            ),
        ),
        (
            "witness_block_bomb",
            valid
                .replace("\"verdict\": \"implied\"", "\"verdict\": \"not-implied\"")
                .replace(
                    "[{\"rule\": \"fd-reflexivity\", \"inputs\": [], \"params\": [\"λ\", \"λ\"], \"conclusion\": \"λ -> λ\"}]",
                    "[], \"witness\": {\"free_blocks\": 64, \"t1\": 0, \"t2\": 1, \"tuples\": [\"(a, b)\", \"(c, d)\"]}",
                ),
        ),
        (
            // 5000 sound but useless axiom nodes, then a lying final
            // conclusion: the checker must wade through the padding in
            // bounded time and still catch the lie at the end.
            "node_count_bomb",
            valid.replace(
                "[{\"rule\": \"fd-reflexivity\", \"inputs\": [], \"params\": [\"λ\", \"λ\"], \"conclusion\": \"λ -> λ\"}]",
                &format!(
                    "[{}, {}]",
                    vec!["{\"rule\": \"fd-reflexivity\", \"inputs\": [], \"params\": [\"λ\", \"λ\"], \"conclusion\": \"λ -> λ\"}"; 5_000].join(", "),
                    "{\"rule\": \"fd-reflexivity\", \"inputs\": [], \"params\": [\"λ\", \"λ\"], \"conclusion\": \"L(A) -> L(B)\"}"
                ),
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_with_unique_names() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.len(), b.len());
        let mut names: Vec<&str> = a.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a.len(), "duplicate case names");
    }

    #[test]
    fn bombs_have_the_advertised_shape() {
        assert!(megabyte_identifier(1 << 20).len() > 1 << 20);
        assert_eq!(truncated_depth_bomb(3), "L[L[L[");
        assert_eq!(depth_bomb(2), "L[L[λ]]");
        let bomb = atom_bomb(100);
        assert_eq!(bomb.matches(',').count(), 99);
    }

    #[test]
    fn failpoint_reexport_is_usable() {
        let fp = FailPoint::every("chaos::test", FailAction::ExhaustFuel);
        assert_eq!(fp.site(), "chaos::test");
    }

    #[test]
    fn durability_corpus_is_deterministic_with_unique_names() {
        // a structurally plausible pair (the corpus only reads record
        // boundaries, never checksums)
        let snapshot = b"NALSNAP1\x01\0\0\0\x04\0\0\0zzzzBODY".to_vec();
        let mut wal = b"NALWAL01".to_vec();
        for payload in [&b"+first"[..], &b"?second"[..]] {
            wal.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
            wal.extend_from_slice(&[0xAA; 4]); // fake crc
            wal.extend_from_slice(payload);
        }
        let a = durability_corpus(&snapshot, &wal);
        let b = durability_corpus(&snapshot, &wal);
        assert_eq!(a.len(), b.len());
        let mut names: Vec<&str> = a.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a.len(), "duplicate case names");
        for case in &a {
            assert_eq!(
                case.snapshot == snapshot && case.wal.as_deref() == Some(&wal[..]),
                case.name == "pristine_pair",
                "only the pristine case may be unmangled: {}",
                case.name
            );
            assert!(!case.expect.is_empty());
        }
    }
}
