//! Seeding known defects into dependency sets and certificates.
//!
//! The lint rules of `nalist-lint` detect vacuous, duplicated, subsumed
//! and inflated dependencies; to test them on arbitrary workloads we need
//! generators that plant exactly one such defect at a known position.
//! Each seeder takes an existing `Σ` and returns the defective dependency
//! to append, so callers control placement and can assert which line the
//! linter blames.
//!
//! [`certificate_defects`] plays the same game against the trusted
//! checker: it takes a proof certificate document and produces every
//! applicable *single-field* mutation, each one guaranteed — by
//! construction — to be rejected by `nalist check` if the original was
//! accepted.

use nalist_algebra::Algebra;
use nalist_deps::{CompiledDep, DepKind};
use nalist_types::json::{self, Json};
use rand::Rng;

use crate::sigma_gen::random_subattr;

/// A trivial dependency (Lemma 4.3): `X → Y` with `Y ≤ X`. Lint rule
/// L001 must flag it.
pub fn seed_trivial(rng: &mut impl Rng, alg: &Algebra, density: f64) -> CompiledDep {
    let lhs = random_subattr(rng, alg, density.max(0.2));
    // any downward-closed subset of the LHS works as the RHS
    let rhs = alg.meet(&lhs, &random_subattr(rng, alg, density));
    CompiledDep::fd(lhs, rhs)
}

/// An exact copy of a random member of `sigma`, and the copied index.
/// Lint rule L003 must flag the *later* of the two occurrences.
pub fn seed_duplicate(rng: &mut impl Rng, sigma: &[CompiledDep]) -> Option<(CompiledDep, usize)> {
    if sigma.is_empty() {
        return None;
    }
    let i = rng.gen_range(0..sigma.len());
    Some((sigma[i].clone(), i))
}

/// A strictly weaker variant of a random FD in `sigma`: larger LHS
/// and/or smaller RHS. The original subsumes it, so lint rule L003 must
/// flag the weakened copy. Returns `None` when `sigma` has no FD or no
/// strictly weaker variant was found in a few rolls.
pub fn seed_weakened(
    rng: &mut impl Rng,
    alg: &Algebra,
    sigma: &[CompiledDep],
    density: f64,
) -> Option<(CompiledDep, usize)> {
    let fds: Vec<usize> = (0..sigma.len())
        .filter(|&i| sigma[i].kind == DepKind::Fd)
        .collect();
    if fds.is_empty() {
        return None;
    }
    let i = fds[rng.gen_range(0..fds.len())];
    let d = &sigma[i];
    for _ in 0..16 {
        let lhs = alg.join(&d.lhs, &random_subattr(rng, alg, density));
        let rhs = alg.meet(&d.rhs, &random_subattr(rng, alg, 1.0 - density / 2.0));
        if (lhs != d.lhs || rhs != d.rhs) && !alg.fd_trivial(&lhs, &rhs) {
            return Some((CompiledDep::fd(lhs, rhs), i));
        }
    }
    None
}

/// A copy of a random member of `sigma` with extra subattributes joined
/// into the LHS. Since the original stays in `Σ`, the inflated LHS is
/// reducible: lint rule L004 must flag it (and L003 may, since the
/// original also subsumes it). Returns `None` when no member's LHS can
/// grow (e.g. every LHS is already the top element).
pub fn seed_inflated_lhs(
    rng: &mut impl Rng,
    alg: &Algebra,
    sigma: &[CompiledDep],
    density: f64,
) -> Option<(CompiledDep, usize)> {
    if sigma.is_empty() {
        return None;
    }
    let i = rng.gen_range(0..sigma.len());
    let d = &sigma[i];
    for _ in 0..16 {
        let lhs = alg.join(&d.lhs, &random_subattr(rng, alg, density.max(0.2)));
        if lhs != d.lhs {
            return Some((
                CompiledDep {
                    kind: d.kind,
                    lhs,
                    rhs: d.rhs.clone(),
                },
                i,
            ));
        }
    }
    None
}

/// Renders `sigma` as dependency-file source, one rendered dependency
/// per line — the textual form the linter (and the CLI) consume.
pub fn render_sigma(alg: &Algebra, sigma: &[CompiledDep]) -> String {
    let mut out = String::new();
    for d in sigma {
        out.push_str(&d.render(alg));
        out.push('\n');
    }
    out
}

/// One corrupted certificate document.
#[derive(Debug, Clone)]
pub struct Defect {
    /// Which field was broken, and how.
    pub label: &'static str,
    /// The mutated document, re-rendered as one-line JSON.
    pub doc: String,
}

/// Looks up a mutable object field.
fn field_mut<'a>(doc: &'a mut Json, key: &str) -> Option<&'a mut Json> {
    match doc {
        Json::Obj(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Clones `base`, walks `path` and applies `f` to the addressed value.
/// Returns `None` when the path does not exist in this document.
fn mutated(base: &Json, path: &[&str], f: &dyn Fn(&mut Json)) -> Option<Json> {
    let mut doc = base.clone();
    let mut cur = &mut doc;
    for seg in path {
        cur = field_mut(cur, seg)?;
    }
    f(cur);
    Some(doc)
}

/// Produces every applicable single-field mutation of `cert_json`.
///
/// The input must be a well-formed version-1 certificate document;
/// anything unparseable yields an empty corpus. Mutations that do not
/// apply to this certificate kind (e.g. witness mutations of a positive
/// certificate) are skipped, so the corpus size varies with the verdict.
/// Each mutation breaks exactly one field in a way that violates the
/// format contract (`format` marker, version, field types) or the
/// semantic replay (premise resolution, rule re-derivation, witness
/// recombination structure, basis coverage).
pub fn certificate_defects(cert_json: &str) -> Vec<Defect> {
    let base = match json::parse(cert_json) {
        Ok(doc) => doc,
        Err(_) => return Vec::new(),
    };
    let mut out: Vec<Defect> = Vec::new();
    let mut push = |label: &'static str, doc: Option<Json>| {
        if let Some(doc) = doc {
            out.push(Defect {
                label,
                doc: doc.render(),
            });
        }
    };

    // format contract
    push(
        "format-marker",
        mutated(&base, &["format"], &|v| {
            *v = Json::Str("not-a-certificate".to_owned());
        }),
    );
    push(
        "future-version",
        mutated(&base, &["version"], &|v| *v = Json::Num(99.0)),
    );

    // issuing context
    push(
        "schema-unparseable",
        mutated(&base, &["schema"], &|v| *v = Json::Str(String::new())),
    );
    push(
        "sigma-length",
        mutated(&base, &["sigma"], &|v| {
            if let Json::Arr(items) = v {
                if items.pop().is_none() {
                    items.push(Json::Str("Zz -> Zz".to_owned()));
                }
            }
        }),
    );
    if matches!(base.get("sigma"), Some(Json::Arr(items)) if !items.is_empty()) {
        push(
            "sigma-entry",
            mutated(&base, &["sigma"], &|v| {
                if let Json::Arr(items) = v {
                    items[0] = Json::Str(String::new());
                }
            }),
        );
    }

    // statement
    push(
        "statement-type",
        mutated(&base, &["statement", "type"], &|v| {
            *v = Json::Str("implores".to_owned());
        }),
    );
    let target_key = match base
        .get("statement")
        .and_then(|s| s.get("type"))
        .and_then(Json::as_str)
    {
        Some("basis") => "lhs",
        _ => "dep",
    };
    push(
        "statement-target",
        mutated(&base, &["statement", target_key], &|v| {
            *v = Json::Str(String::new());
        }),
    );

    // verdict: rotating to a different legal verdict always breaks the
    // pairing invariants (a positive verdict loses its witness/basis
    // object or its derivation; a negative one gains an empty proof)
    let rotated = match base.get("verdict").and_then(Json::as_str) {
        Some("implied") => "not-implied",
        _ => "implied",
    };
    push(
        "verdict-rotate",
        mutated(&base, &["verdict"], &|v| *v = Json::Str(rotated.to_owned())),
    );
    push(
        "verdict-unknown",
        mutated(&base, &["verdict"], &|v| *v = Json::Str("maybe".to_owned())),
    );

    // derivation nodes
    if let Some(Json::Arr(nodes)) = base.get("derivation") {
        let step_at = nodes.iter().position(|n| n.get("rule").is_some());
        let premise_at = nodes.iter().position(|n| n.get("premise").is_some());
        let node_mut = |label: &'static str, at: usize, f: &dyn Fn(&mut Json)| {
            let doc = mutated(&base, &["derivation"], &|v| {
                if let Json::Arr(items) = v {
                    f(&mut items[at]);
                }
            });
            (label, doc)
        };
        if let Some(i) = step_at {
            for (label, doc) in [
                node_mut("rule-unknown", i, &|n| {
                    if let Some(r) = field_mut(n, "rule") {
                        *r = Json::Str("no-such-rule".to_owned());
                    }
                }),
                node_mut("rule-self-input", i, &move |n| {
                    if let Some(r) = field_mut(n, "inputs") {
                        *r = Json::Arr(vec![Json::Num(i as f64)]);
                    }
                }),
                node_mut("step-conclusion", i, &|n| {
                    if let Some(r) = field_mut(n, "conclusion") {
                        *r = Json::Str(String::new());
                    }
                }),
            ] {
                push(label, doc);
            }
            if matches!(nodes[i].get("params"), Some(Json::Arr(p)) if !p.is_empty()) {
                let (label, doc) = node_mut("step-param", i, &|n| {
                    if let Some(Json::Arr(p)) = field_mut(n, "params") {
                        p[0] = Json::Str(String::new());
                    }
                });
                push(label, doc);
            }
        }
        if let Some(i) = premise_at {
            let (label, doc) = node_mut("premise-range", i, &|n| {
                if let Some(r) = field_mut(n, "premise") {
                    *r = Json::Num(999_999.0);
                }
            });
            push(label, doc);
        }
    }

    // witness (negative certificates): break the 2^k recombination
    // structure, the generator pinning, and the tuple payloads
    if base.get("witness").is_some() {
        push(
            "witness-zero-blocks",
            mutated(&base, &["witness", "free_blocks"], &|v| *v = Json::Num(0.0)),
        );
        push(
            "witness-extra-block",
            mutated(&base, &["witness", "free_blocks"], &|v| {
                if let Json::Num(n) = v {
                    *n += 1.0;
                }
            }),
        );
        push(
            "witness-generator-t1",
            mutated(&base, &["witness", "t1"], &|v| {
                if let Json::Num(n) = v {
                    *n += 1.0;
                }
            }),
        );
        push(
            "witness-generator-t2",
            mutated(&base, &["witness", "t2"], &|v| *v = Json::Num(0.0)),
        );
        push(
            "witness-tuple-count",
            mutated(&base, &["witness", "tuples"], &|v| {
                if let Json::Arr(items) = v {
                    items.pop();
                }
            }),
        );
        push(
            "witness-tuple-duplicate",
            mutated(&base, &["witness", "tuples"], &|v| {
                if let Json::Arr(items) = v {
                    if items.len() >= 2 {
                        items[1] = items[0].clone();
                    }
                }
            }),
        );
        push(
            "witness-tuple-garbage",
            mutated(&base, &["witness", "tuples"], &|v| {
                if let Json::Arr(items) = v {
                    if let Some(first) = items.first_mut() {
                        *first = Json::Str(String::new());
                    }
                }
            }),
        );
    }

    // basis (derived certificates): break the node map and the coverage
    if base.get("basis").is_some() {
        push(
            "basis-closure",
            mutated(&base, &["basis", "closure"], &|v| {
                *v = Json::Str(String::new());
            }),
        );
        push(
            "basis-closure-node",
            mutated(&base, &["basis", "closure_node"], &|v| {
                *v = Json::Num(999_999.0);
            }),
        );
        push(
            "basis-node-count",
            mutated(&base, &["basis", "block_nodes"], &|v| {
                if let Json::Arr(items) = v {
                    if items.pop().is_none() {
                        items.push(Json::Num(0.0));
                    }
                }
            }),
        );
        if matches!(
            base.get("basis").and_then(|b| b.get("blocks")),
            Some(Json::Arr(items)) if !items.is_empty()
        ) {
            push(
                "basis-lambda-block",
                mutated(&base, &["basis", "blocks"], &|v| {
                    if let Json::Arr(items) = v {
                        items[0] = Json::Str("λ".to_owned());
                    }
                }),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_gen::attr_with_atoms;
    use crate::sigma_gen::{random_sigma, SigmaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Algebra, Vec<CompiledDep>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = attr_with_atoms(&mut rng, 12);
        let alg = Algebra::new(&n);
        let sigma = random_sigma(&mut rng, &alg, &SigmaConfig::default());
        (alg, sigma)
    }

    #[test]
    fn trivial_seeds_are_trivial() {
        let (alg, _) = setup(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert!(seed_trivial(&mut rng, &alg, 0.4).is_trivial(&alg));
        }
    }

    #[test]
    fn duplicates_are_equal_to_their_source() {
        let (_, sigma) = setup(3);
        let mut rng = StdRng::seed_from_u64(4);
        let (dup, i) = seed_duplicate(&mut rng, &sigma).unwrap();
        assert_eq!(dup, sigma[i]);
        assert!(seed_duplicate(&mut rng, &[]).is_none());
    }

    #[test]
    fn weakened_seeds_are_subsumed() {
        let (alg, sigma) = setup(5);
        let mut rng = StdRng::seed_from_u64(6);
        if let Some((weak, i)) = seed_weakened(&mut rng, &alg, &sigma, 0.3) {
            let orig = &sigma[i];
            assert!(alg.le(&orig.lhs, &weak.lhs));
            assert!(alg.le(&weak.rhs, &orig.rhs));
            assert_ne!(&weak, orig);
        }
    }

    #[test]
    fn inflated_lhs_strictly_grows() {
        let (alg, sigma) = setup(7);
        let mut rng = StdRng::seed_from_u64(8);
        if let Some((fat, i)) = seed_inflated_lhs(&mut rng, &alg, &sigma, 0.4) {
            assert!(alg.le(&sigma[i].lhs, &fat.lhs));
            assert_ne!(fat.lhs, sigma[i].lhs);
            assert_eq!(fat.rhs, sigma[i].rhs);
        }
    }

    #[test]
    fn certificate_corpus_covers_every_family_and_differs_from_the_original() {
        let valid = crate::chaos::universal_certificate("L(A, B, C)", "L(A) -> L(B)\n");
        let defects = certificate_defects(&valid);
        assert!(defects.len() >= 10, "only {} defects", defects.len());
        for d in &defects {
            assert_ne!(
                d.doc,
                valid.trim(),
                "{} did not change the document",
                d.label
            );
            // every mutation stays parseable JSON (the corpus exercises
            // *semantic* rejection, not the JSON parser)
            json::parse(&d.doc).expect(d.label);
        }
        let labels: Vec<_> = defects.iter().map(|d| d.label).collect();
        for family in [
            "format-marker",
            "verdict-rotate",
            "rule-unknown",
            "sigma-entry",
        ] {
            assert!(labels.contains(&family), "missing {family}");
        }
    }

    #[test]
    fn garbage_certificate_input_yields_an_empty_corpus() {
        assert!(certificate_defects("not json").is_empty());
    }

    #[test]
    fn rendered_sigma_parses_back() {
        use nalist_deps::parse_sigma;
        let mut rng = StdRng::seed_from_u64(9);
        let n = attr_with_atoms(&mut rng, 10);
        let alg = Algebra::new(&n);
        let sigma = random_sigma(&mut rng, &alg, &SigmaConfig::default());
        let text = render_sigma(&alg, &sigma);
        let back: Vec<CompiledDep> = parse_sigma(&n, &text)
            .unwrap()
            .iter()
            .map(|d| d.compile(&alg).unwrap())
            .collect();
        assert_eq!(back, sigma);
    }
}
