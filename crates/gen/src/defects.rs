//! Seeding known defects into dependency sets.
//!
//! The lint rules of `nalist-lint` detect vacuous, duplicated, subsumed
//! and inflated dependencies; to test them on arbitrary workloads we need
//! generators that plant exactly one such defect at a known position.
//! Each seeder takes an existing `Σ` and returns the defective dependency
//! to append, so callers control placement and can assert which line the
//! linter blames.

use nalist_algebra::Algebra;
use nalist_deps::{CompiledDep, DepKind};
use rand::Rng;

use crate::sigma_gen::random_subattr;

/// A trivial dependency (Lemma 4.3): `X → Y` with `Y ≤ X`. Lint rule
/// L001 must flag it.
pub fn seed_trivial(rng: &mut impl Rng, alg: &Algebra, density: f64) -> CompiledDep {
    let lhs = random_subattr(rng, alg, density.max(0.2));
    // any downward-closed subset of the LHS works as the RHS
    let rhs = alg.meet(&lhs, &random_subattr(rng, alg, density));
    CompiledDep::fd(lhs, rhs)
}

/// An exact copy of a random member of `sigma`, and the copied index.
/// Lint rule L003 must flag the *later* of the two occurrences.
pub fn seed_duplicate(rng: &mut impl Rng, sigma: &[CompiledDep]) -> Option<(CompiledDep, usize)> {
    if sigma.is_empty() {
        return None;
    }
    let i = rng.gen_range(0..sigma.len());
    Some((sigma[i].clone(), i))
}

/// A strictly weaker variant of a random FD in `sigma`: larger LHS
/// and/or smaller RHS. The original subsumes it, so lint rule L003 must
/// flag the weakened copy. Returns `None` when `sigma` has no FD or no
/// strictly weaker variant was found in a few rolls.
pub fn seed_weakened(
    rng: &mut impl Rng,
    alg: &Algebra,
    sigma: &[CompiledDep],
    density: f64,
) -> Option<(CompiledDep, usize)> {
    let fds: Vec<usize> = (0..sigma.len())
        .filter(|&i| sigma[i].kind == DepKind::Fd)
        .collect();
    if fds.is_empty() {
        return None;
    }
    let i = fds[rng.gen_range(0..fds.len())];
    let d = &sigma[i];
    for _ in 0..16 {
        let lhs = alg.join(&d.lhs, &random_subattr(rng, alg, density));
        let rhs = alg.meet(&d.rhs, &random_subattr(rng, alg, 1.0 - density / 2.0));
        if (lhs != d.lhs || rhs != d.rhs) && !alg.fd_trivial(&lhs, &rhs) {
            return Some((CompiledDep::fd(lhs, rhs), i));
        }
    }
    None
}

/// A copy of a random member of `sigma` with extra subattributes joined
/// into the LHS. Since the original stays in `Σ`, the inflated LHS is
/// reducible: lint rule L004 must flag it (and L003 may, since the
/// original also subsumes it). Returns `None` when no member's LHS can
/// grow (e.g. every LHS is already the top element).
pub fn seed_inflated_lhs(
    rng: &mut impl Rng,
    alg: &Algebra,
    sigma: &[CompiledDep],
    density: f64,
) -> Option<(CompiledDep, usize)> {
    if sigma.is_empty() {
        return None;
    }
    let i = rng.gen_range(0..sigma.len());
    let d = &sigma[i];
    for _ in 0..16 {
        let lhs = alg.join(&d.lhs, &random_subattr(rng, alg, density.max(0.2)));
        if lhs != d.lhs {
            return Some((
                CompiledDep {
                    kind: d.kind,
                    lhs,
                    rhs: d.rhs.clone(),
                },
                i,
            ));
        }
    }
    None
}

/// Renders `sigma` as dependency-file source, one rendered dependency
/// per line — the textual form the linter (and the CLI) consume.
pub fn render_sigma(alg: &Algebra, sigma: &[CompiledDep]) -> String {
    let mut out = String::new();
    for d in sigma {
        out.push_str(&d.render(alg));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_gen::attr_with_atoms;
    use crate::sigma_gen::{random_sigma, SigmaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Algebra, Vec<CompiledDep>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = attr_with_atoms(&mut rng, 12);
        let alg = Algebra::new(&n);
        let sigma = random_sigma(&mut rng, &alg, &SigmaConfig::default());
        (alg, sigma)
    }

    #[test]
    fn trivial_seeds_are_trivial() {
        let (alg, _) = setup(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert!(seed_trivial(&mut rng, &alg, 0.4).is_trivial(&alg));
        }
    }

    #[test]
    fn duplicates_are_equal_to_their_source() {
        let (_, sigma) = setup(3);
        let mut rng = StdRng::seed_from_u64(4);
        let (dup, i) = seed_duplicate(&mut rng, &sigma).unwrap();
        assert_eq!(dup, sigma[i]);
        assert!(seed_duplicate(&mut rng, &[]).is_none());
    }

    #[test]
    fn weakened_seeds_are_subsumed() {
        let (alg, sigma) = setup(5);
        let mut rng = StdRng::seed_from_u64(6);
        if let Some((weak, i)) = seed_weakened(&mut rng, &alg, &sigma, 0.3) {
            let orig = &sigma[i];
            assert!(alg.le(&orig.lhs, &weak.lhs));
            assert!(alg.le(&weak.rhs, &orig.rhs));
            assert_ne!(&weak, orig);
        }
    }

    #[test]
    fn inflated_lhs_strictly_grows() {
        let (alg, sigma) = setup(7);
        let mut rng = StdRng::seed_from_u64(8);
        if let Some((fat, i)) = seed_inflated_lhs(&mut rng, &alg, &sigma, 0.4) {
            assert!(alg.le(&sigma[i].lhs, &fat.lhs));
            assert_ne!(fat.lhs, sigma[i].lhs);
            assert_eq!(fat.rhs, sigma[i].rhs);
        }
    }

    #[test]
    fn rendered_sigma_parses_back() {
        use nalist_deps::parse_sigma;
        let mut rng = StdRng::seed_from_u64(9);
        let n = attr_with_atoms(&mut rng, 10);
        let alg = Algebra::new(&n);
        let sigma = random_sigma(&mut rng, &alg, &SigmaConfig::default());
        let text = render_sigma(&alg, &sigma);
        let back: Vec<CompiledDep> = parse_sigma(&n, &text)
            .unwrap()
            .iter()
            .map(|d| d.compile(&alg).unwrap())
            .collect();
        assert_eq!(back, sigma);
    }
}
