//! Random nested-attribute generation for the evaluation workloads
//! (experiments E-THM64a/b of DESIGN.md).
//!
//! The paper's size measure is `|N| = |SubB(N)|` — the number of atoms
//! (flat leaves + list nodes). [`attr_with_atoms`] produces attributes of
//! an exact atom count with controllable list density and nesting depth,
//! so complexity sweeps can hold everything but `|N|` fixed.

use nalist_types::attr::NestedAttr;
use rand::Rng;

/// Shape parameters for random attribute generation.
#[derive(Debug, Clone, Copy)]
pub struct AttrConfig {
    /// Target number of atoms `|SubB(N)|` (exact).
    pub atoms: usize,
    /// Probability that a generated atom is a list node rather than a
    /// flat leaf (0 produces a flat relational schema).
    pub list_prob: f64,
    /// Maximum nesting depth of list/record structure.
    pub max_depth: usize,
    /// Maximum children per record node.
    pub max_fanout: usize,
}

impl Default for AttrConfig {
    fn default() -> Self {
        AttrConfig {
            atoms: 12,
            list_prob: 0.3,
            max_depth: 5,
            max_fanout: 4,
        }
    }
}

/// Generates a nested attribute with exactly `cfg.atoms` atoms.
///
/// The root is always a record (mirroring real schemas); fresh names
/// `A0, A1, …` / `L0, L1, …` keep flats and labels disjoint.
pub fn random_attr(rng: &mut impl Rng, cfg: &AttrConfig) -> NestedAttr {
    let mut next_flat = 0usize;
    let mut next_label = 0usize;
    let children = gen_children(rng, cfg, cfg.atoms, 1, &mut next_flat, &mut next_label);
    let label = fresh_label(&mut next_label);
    NestedAttr::record(label, children).expect("atoms ≥ 1 produces children")
}

/// Convenience: a random attribute with exactly `atoms` atoms and default
/// shape parameters.
pub fn attr_with_atoms(rng: &mut impl Rng, atoms: usize) -> NestedAttr {
    random_attr(
        rng,
        &AttrConfig {
            atoms,
            ..AttrConfig::default()
        },
    )
}

/// A flat relational schema `L(A0, …, A{n-1})` (the RDM special case).
pub fn flat_attr(atoms: usize) -> NestedAttr {
    NestedAttr::record(
        "R",
        (0..atoms)
            .map(|i| NestedAttr::flat(format!("A{i}")))
            .collect(),
    )
    .expect("atoms ≥ 1")
}

fn fresh_flat(next: &mut usize) -> String {
    let name = format!("A{next}");
    *next += 1;
    name
}

fn fresh_label(next: &mut usize) -> String {
    let name = format!("L{next}");
    *next += 1;
    name
}

/// Generates a list of sibling attributes that together contribute
/// exactly `budget` atoms.
fn gen_children(
    rng: &mut impl Rng,
    cfg: &AttrConfig,
    budget: usize,
    depth: usize,
    next_flat: &mut usize,
    next_label: &mut usize,
) -> Vec<NestedAttr> {
    let mut out = Vec::new();
    let mut remaining = budget;
    while remaining > 0 {
        let take = if out.len() + 1 >= cfg.max_fanout {
            remaining
        } else {
            rng.gen_range(1..=remaining)
        };
        out.push(gen_one(rng, cfg, take, depth, next_flat, next_label));
        remaining -= take;
    }
    out
}

/// Generates one attribute contributing exactly `budget ≥ 1` atoms.
fn gen_one(
    rng: &mut impl Rng,
    cfg: &AttrConfig,
    budget: usize,
    depth: usize,
    next_flat: &mut usize,
    next_label: &mut usize,
) -> NestedAttr {
    debug_assert!(budget >= 1);
    if depth >= cfg.max_depth && budget > 1 {
        // depth exhausted: flatten the remaining budget into one record
        let children: Vec<NestedAttr> = (0..budget)
            .map(|_| NestedAttr::flat(fresh_flat(next_flat)))
            .collect();
        return NestedAttr::record(fresh_label(next_label), children).expect("budget ≥ 1");
    }
    if budget == 1 {
        // a single atom: flat leaf, or an information-less list L[λ]
        if depth < cfg.max_depth && rng.gen_bool(cfg.list_prob) {
            NestedAttr::list(fresh_label(next_label), NestedAttr::Null)
        } else {
            NestedAttr::flat(fresh_flat(next_flat))
        }
    } else if depth < cfg.max_depth && rng.gen_bool(cfg.list_prob) {
        // list node costs one atom; content takes the rest
        let inner_budget = budget - 1;
        let inner = if depth + 1 < cfg.max_depth && rng.gen_bool(0.5) {
            // wrap multiple children in a record; the record occupies its
            // own level, so the children sit two levels below the list
            let children = gen_children(rng, cfg, inner_budget, depth + 2, next_flat, next_label);
            if children.len() == 1 {
                children.into_iter().next().expect("one child")
            } else {
                NestedAttr::record(fresh_label(next_label), children).expect("children ≥ 1")
            }
        } else {
            gen_one(rng, cfg, inner_budget, depth + 1, next_flat, next_label)
        };
        NestedAttr::list(fresh_label(next_label), inner)
    } else {
        // record with ≥ 2 children splitting the budget
        let children = gen_children(rng, cfg, budget, depth + 1, next_flat, next_label);
        if children.len() == 1 {
            children.into_iter().next().expect("one child")
        } else {
            NestedAttr::record(fresh_label(next_label), children).expect("children ≥ 1")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_atom_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        for atoms in 1..=40 {
            for _ in 0..5 {
                let n = attr_with_atoms(&mut rng, atoms);
                assert_eq!(n.basis_size(), atoms, "{n}");
                n.validate().unwrap();
            }
        }
    }

    #[test]
    fn flat_config_produces_relational_schema() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = AttrConfig {
            atoms: 10,
            list_prob: 0.0,
            ..AttrConfig::default()
        };
        let n = random_attr(&mut rng, &cfg);
        assert_eq!(n.list_node_count(), 0);
        assert_eq!(n.flat_leaf_count(), 10);
    }

    #[test]
    fn high_list_prob_produces_lists() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = AttrConfig {
            atoms: 20,
            list_prob: 0.9,
            ..AttrConfig::default()
        };
        let n = random_attr(&mut rng, &cfg);
        assert!(n.list_node_count() > 0);
        assert_eq!(n.basis_size(), 20);
    }

    #[test]
    fn depth_bounded() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = AttrConfig {
            atoms: 30,
            list_prob: 0.8,
            max_depth: 3,
            max_fanout: 3,
        };
        for _ in 0..10 {
            let n = random_attr(&mut rng, &cfg);
            // one extra level for the flattening record at the depth limit
            assert!(
                n.depth() <= cfg.max_depth + 2,
                "depth {} for {n}",
                n.depth()
            );
            assert_eq!(n.basis_size(), 30);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = attr_with_atoms(&mut StdRng::seed_from_u64(42), 15);
        let b = attr_with_atoms(&mut StdRng::seed_from_u64(42), 15);
        assert_eq!(a, b);
    }

    #[test]
    fn names_disjoint() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = attr_with_atoms(&mut rng, 25);
        nalist_types::Universe::from_attr(&n).unwrap();
    }

    #[test]
    fn flat_attr_shape() {
        let n = flat_attr(5);
        assert_eq!(n.to_string(), "R(A0, A1, A2, A3, A4)");
        assert_eq!(n.basis_size(), 5);
    }
}
