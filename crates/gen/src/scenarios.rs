//! Fixed, named workload scenarios: the paper's running example plus two
//! domains its introduction motivates (genomic sequence databases and
//! XML-style documents).

use nalist_deps::{parse_sigma, Dependency, Instance};
use nalist_types::attr::NestedAttr;
use nalist_types::parser::parse_attr;

/// A named scenario: ambient attribute, dependency set, sample instance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name.
    pub name: &'static str,
    /// The ambient nested attribute `N`.
    pub attr: NestedAttr,
    /// The dependency set `Σ`.
    pub sigma: Vec<Dependency>,
    /// A sample instance over `N`.
    pub instance: Instance,
}

/// The paper's Example 4.2: `Pubcrawl(Person, Visit[Drink(Beer, Pub)])`
/// with the exact seven-tuple snapshot.
pub fn pubcrawl() -> Scenario {
    let attr = parse_attr("Pubcrawl(Person, Visit[Drink(Beer, Pub)])").expect("static schema");
    let sigma = parse_sigma(
        &attr,
        "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n\
         Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
    )
    .expect("static dependencies");
    let instance = Instance::from_strs(
        attr.clone(),
        &[
            "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])",
            "(Sven, [(Kindl, Deanos), (Lübzer, Highflyers)])",
            "(Klaus-Dieter, [(Guiness, Irish Pub), (Speights, 3Bar), (Guiness, Irish Pub)])",
            "(Klaus-Dieter, [(Kölsch, Irish Pub), (Bönnsch, 3Bar), (Guiness, Irish Pub)])",
            "(Klaus-Dieter, [(Guiness, Highflyers), (Speights, Deanos), (Guiness, 3Bar)])",
            "(Klaus-Dieter, [(Kölsch, Highflyers), (Bönnsch, Deanos), (Guiness, 3Bar)])",
            "(Sebastian, [])",
        ],
    )
    .expect("static instance");
    Scenario {
        name: "pubcrawl",
        attr,
        sigma,
        instance,
    }
}

/// A genomic sequence database (the paper cites sequence databases as a
/// natural home for lists): a gene carries an ordered list of exons and
/// an ordered residue list of its protein product.
pub fn genomic() -> Scenario {
    let attr = parse_attr("Gene(Locus, Exons[Exon(Start, End)], Product(Protein, Residues[Acid]))")
        .expect("static schema");
    let sigma = parse_sigma(
        &attr,
        "# the locus determines the exon structure\n\
         Gene(Locus) -> Gene(Exons[Exon(Start, End)])\n\
         # the protein name determines its residue sequence\n\
         Gene(Product(Protein)) -> Gene(Product(Residues[Acid]))\n\
         # exon structure and protein vary independently per locus\n\
         Gene(Locus) ->> Gene(Product(Protein, Residues[Acid]))",
    )
    .expect("static dependencies");
    let instance = Instance::from_strs(
        attr.clone(),
        &[
            "(BRCA1, [(100, 200), (300, 400)], (P38398, [M, D, L, S]))",
            "(TP53, [(50, 150)], (P04637, [M, E, E, P]))",
            "(MDM2, [(10, 60), (80, 120), (140, 160)], (Q00987, [M, C, N]))",
        ],
    )
    .expect("static instance");
    Scenario {
        name: "genomic",
        attr,
        sigma,
        instance,
    }
}

/// An XML-ish order document (the paper names XML as a key consumer of
/// list types): an order holds an ordered line-item list; the customer
/// determines the shipping route list; items and route are independent.
pub fn xml_orders() -> Scenario {
    let attr = parse_attr("Order(Customer, Items[Item(Sku, Qty)], Route[Hop], Priority)")
        .expect("static schema");
    let sigma = parse_sigma(
        &attr,
        "Order(Customer) -> Order(Route[Hop])\n\
         # the item list (and the priority it implies) is independent of the route\n\
         Order(Customer) ->> Order(Items[Item(Sku, Qty)], Priority)\n\
         Order(Customer, Items[λ]) -> Order(Priority)",
    )
    .expect("static dependencies");
    let instance = Instance::from_strs(
        attr.clone(),
        &[
            "(acme, [(widget, 2), (bolt, 10)], [hub1, hub2], express)",
            "(acme, [(nut, 5)], [hub1, hub2], standard)",
            "(globex, [], [hub3], standard)",
        ],
    )
    .expect("static instance");
    Scenario {
        name: "xml_orders",
        attr,
        sigma,
        instance,
    }
}

/// A sensor time-series store (the paper names time-series data among
/// the motivations for list types): a sensor keeps an ordered window of
/// readings plus calibration metadata.
pub fn timeseries() -> Scenario {
    let attr = parse_attr("Stream(Sensor, Window[Reading(Ts, Val)], Calib(Gain, Offset))")
        .expect("static schema");
    let sigma = parse_sigma(
        &attr,
        "# a sensor's calibration is fixed\n\
         Stream(Sensor) -> Stream(Calib(Gain, Offset))\n\
         # the sensor determines the sampling timestamps of its window\n\
         Stream(Sensor) -> Stream(Window[Reading(Ts)])\n\
         # measured values vary independently of the calibration record\n\
         Stream(Sensor) ->> Stream(Window[Reading(Val)])",
    )
    .expect("static dependencies");
    let instance = Instance::from_strs(
        attr.clone(),
        &[
            "(s1, [(0, 17), (10, 18)], (2, 1))",
            "(s1, [(0, 21), (10, 16)], (2, 1))",
            "(s2, [(5, 99)], (1, 0))",
        ],
    )
    .expect("static instance");
    Scenario {
        name: "timeseries",
        attr,
        sigma,
        instance,
    }
}

/// All named scenarios.
pub fn all() -> Vec<Scenario> {
    vec![pubcrawl(), genomic(), xml_orders(), timeseries()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_algebra::Algebra;

    #[test]
    fn scenarios_are_well_formed() {
        for s in all() {
            s.attr.validate().unwrap();
            let alg = Algebra::new(&s.attr);
            assert!(!s.sigma.is_empty(), "{}", s.name);
            for d in &s.sigma {
                d.compile(&alg)
                    .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            }
            assert!(!s.instance.is_empty());
        }
    }

    #[test]
    fn pubcrawl_instance_satisfies_sigma() {
        let s = pubcrawl();
        let alg = Algebra::new(&s.attr);
        for d in &s.sigma {
            assert!(
                s.instance.satisfies_dep(&alg, d).unwrap(),
                "{}",
                d.display_in(&s.attr)
            );
        }
    }

    #[test]
    fn genomic_instance_satisfies_sigma() {
        let s = genomic();
        let alg = Algebra::new(&s.attr);
        for d in &s.sigma {
            assert!(
                s.instance.satisfies_dep(&alg, d).unwrap(),
                "{}",
                d.display_in(&s.attr)
            );
        }
    }

    #[test]
    fn xml_instance_satisfies_sigma() {
        let s = xml_orders();
        let alg = Algebra::new(&s.attr);
        for d in &s.sigma {
            assert!(
                s.instance.satisfies_dep(&alg, d).unwrap(),
                "{}",
                d.display_in(&s.attr)
            );
        }
    }

    #[test]
    fn scenario_atom_counts() {
        assert_eq!(pubcrawl().attr.basis_size(), 4);
        assert_eq!(genomic().attr.basis_size(), 7);
        assert_eq!(xml_orders().attr.basis_size(), 7);
        assert_eq!(timeseries().attr.basis_size(), 6);
    }

    #[test]
    fn timeseries_instance_satisfies_sigma() {
        let s = timeseries();
        let alg = Algebra::new(&s.attr);
        for d in &s.sigma {
            assert!(
                s.instance.satisfies_dep(&alg, d).unwrap(),
                "{}",
                d.display_in(&s.attr)
            );
        }
        // the shape FD follows from the timestamp FD (a weaker projection)
        let shape = Dependency::parse(&s.attr, "Stream(Sensor) -> Stream(Window[λ])").unwrap();
        assert!(s.instance.satisfies_dep(&alg, &shape).unwrap());
    }

    #[test]
    fn timeseries_with_typed_universe() {
        use nalist_types::universe::{DomainKind, Universe};
        let s = timeseries();
        let mut u = Universe::from_attr(&s.attr).unwrap();
        // tighten the numeric domains
        u.add_flat("Ts", DomainKind::Integer).unwrap();
        u.add_flat("Val", DomainKind::Integer).unwrap();
        u.add_flat("Gain", DomainKind::Integer).unwrap();
        u.add_flat("Offset", DomainKind::Integer).unwrap();
        for t in s.instance.iter() {
            assert!(t.conforms_in(&s.attr, &u), "{t}");
        }
        // a string where an integer is required is rejected
        let bad = nalist_types::parser::parse_value("(s1, [(zero, 17)], (2, 1))").unwrap();
        assert!(!bad.conforms_in(&s.attr, &u));
    }
}
