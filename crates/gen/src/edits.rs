//! Random `Σ` edit scripts for exercising the incremental reasoner
//! (`Reasoner::add` / `Reasoner::remove` / `implies`) and the CLI
//! `replay` subcommand.

use nalist_algebra::Algebra;
use nalist_deps::CompiledDep;
use rand::Rng;

use crate::sigma_gen::random_dep;

/// One operation of a `Σ` edit script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Append the dependency to `Σ`.
    Add(CompiledDep),
    /// Remove the first matching dependency from `Σ` (always a
    /// dependency a previous [`EditOp::Add`] inserted, so generated
    /// scripts never remove something absent).
    Remove(CompiledDep),
    /// Decide `Σ ⊨ σ` for the dependency.
    Query(CompiledDep),
}

/// Parameters for [`random_edit_script`].
#[derive(Debug, Clone, Copy)]
pub struct EditConfig {
    /// Number of operations in the script.
    pub ops: usize,
    /// Probability of a query op (the remainder splits between add and
    /// remove; a remove is only emitted while `Σ` is non-empty).
    pub query_prob: f64,
    /// Probability that a non-query op is a remove rather than an add.
    pub remove_prob: f64,
    /// Expected atom density of generated dependencies.
    pub density: f64,
    /// Probability that a generated dependency is an FD.
    pub fd_prob: f64,
}

impl Default for EditConfig {
    fn default() -> Self {
        EditConfig {
            ops: 24,
            query_prob: 0.5,
            remove_prob: 0.4,
            density: 0.3,
            fd_prob: 0.5,
        }
    }
}

/// A random edit script over `alg`. Removals always target a dependency
/// currently live (tracked by replaying the adds/removes while
/// generating), so the script replays cleanly on an initially empty
/// reasoner.
pub fn random_edit_script(rng: &mut impl Rng, alg: &Algebra, cfg: &EditConfig) -> Vec<EditOp> {
    let mut live: Vec<CompiledDep> = Vec::new();
    let mut out = Vec::with_capacity(cfg.ops);
    for _ in 0..cfg.ops {
        if rng.gen_bool(cfg.query_prob) {
            out.push(EditOp::Query(random_dep(
                rng,
                alg,
                cfg.density,
                cfg.fd_prob,
            )));
        } else if !live.is_empty() && rng.gen_bool(cfg.remove_prob) {
            let victim = live.remove(rng.gen_range(0..live.len()));
            out.push(EditOp::Remove(victim));
        } else {
            let dep = random_dep(rng, alg, cfg.density, cfg.fd_prob);
            live.push(dep.clone());
            out.push(EditOp::Add(dep));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_gen::attr_with_atoms;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scripts_never_remove_an_absent_dependency() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = attr_with_atoms(&mut rng, 16);
        let alg = Algebra::new(&n);
        for seed in 0..20 {
            let script = random_edit_script(
                &mut StdRng::seed_from_u64(seed),
                &alg,
                &EditConfig::default(),
            );
            let mut live: Vec<&CompiledDep> = Vec::new();
            for op in &script {
                match op {
                    EditOp::Add(d) => live.push(d),
                    EditOp::Remove(d) => {
                        let i = live
                            .iter()
                            .position(|have| *have == d)
                            .expect("remove targets a live dependency");
                        live.remove(i);
                    }
                    EditOp::Query(_) => {}
                }
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let n = attr_with_atoms(&mut StdRng::seed_from_u64(12), 12);
        let alg = Algebra::new(&n);
        let cfg = EditConfig::default();
        let s1 = random_edit_script(&mut StdRng::seed_from_u64(3), &alg, &cfg);
        let s2 = random_edit_script(&mut StdRng::seed_from_u64(3), &alg, &cfg);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), cfg.ops);
    }

    #[test]
    fn scripts_mix_all_three_ops() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = attr_with_atoms(&mut rng, 16);
        let alg = Algebra::new(&n);
        let cfg = EditConfig {
            ops: 64,
            ..EditConfig::default()
        };
        let script = random_edit_script(&mut rng, &alg, &cfg);
        let adds = script
            .iter()
            .filter(|o| matches!(o, EditOp::Add(_)))
            .count();
        let removes = script
            .iter()
            .filter(|o| matches!(o, EditOp::Remove(_)))
            .count();
        let queries = script
            .iter()
            .filter(|o| matches!(o, EditOp::Query(_)))
            .count();
        assert!(adds > 0 && removes > 0 && queries > 0, "{script:?}");
    }
}
