//! Random dependency-set generation over a fixed algebra.

use nalist_algebra::{Algebra, AtomSet};
use nalist_deps::CompiledDep;
use rand::Rng;

/// Parameters for random `Σ` generation.
#[derive(Debug, Clone, Copy)]
pub struct SigmaConfig {
    /// Number of dependencies.
    pub count: usize,
    /// Probability that a dependency is an FD (otherwise an MVD).
    pub fd_prob: f64,
    /// Expected fraction of atoms on each side.
    pub density: f64,
    /// Skip dependencies that are trivial by Lemma 4.3.
    pub skip_trivial: bool,
}

impl Default for SigmaConfig {
    fn default() -> Self {
        SigmaConfig {
            count: 8,
            fd_prob: 0.5,
            density: 0.3,
            skip_trivial: true,
        }
    }
}

/// A random element of `Sub(N)`: pick atoms independently with the given
/// density, then close downward.
pub fn random_subattr(rng: &mut impl Rng, alg: &Algebra, density: f64) -> AtomSet {
    let mut picked = AtomSet::empty(alg.atom_count());
    for a in 0..alg.atom_count() {
        if rng.gen_bool(density) {
            picked.insert(a);
        }
    }
    alg.downward_closure(&picked)
}

/// A random dependency with the given density and FD probability.
pub fn random_dep(rng: &mut impl Rng, alg: &Algebra, density: f64, fd_prob: f64) -> CompiledDep {
    let lhs = random_subattr(rng, alg, density);
    let rhs = random_subattr(rng, alg, density);
    if rng.gen_bool(fd_prob) {
        CompiledDep::fd(lhs, rhs)
    } else {
        CompiledDep::mvd(lhs, rhs)
    }
}

/// A random dependency set; with `skip_trivial`, trivial candidates are
/// re-rolled a bounded number of times (trivial ones may still appear in
/// degenerate algebras where everything is trivial).
pub fn random_sigma(rng: &mut impl Rng, alg: &Algebra, cfg: &SigmaConfig) -> Vec<CompiledDep> {
    let mut out = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let mut dep = random_dep(rng, alg, cfg.density, cfg.fd_prob);
        if cfg.skip_trivial {
            for _ in 0..32 {
                if !dep.is_trivial(alg) {
                    break;
                }
                dep = random_dep(rng, alg, cfg.density, cfg.fd_prob);
            }
        }
        out.push(dep);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_gen::attr_with_atoms;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_subattrs_are_lattice_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = attr_with_atoms(&mut rng, 20);
        let alg = Algebra::new(&n);
        for _ in 0..50 {
            let x = random_subattr(&mut rng, &alg, 0.4);
            assert!(alg.is_downward_closed(&x));
        }
    }

    #[test]
    fn density_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = attr_with_atoms(&mut rng, 10);
        let alg = Algebra::new(&n);
        assert!(random_subattr(&mut rng, &alg, 0.0).is_empty());
        assert_eq!(random_subattr(&mut rng, &alg, 1.0), alg.top_set());
    }

    #[test]
    fn sigma_respects_count_and_mostly_nontrivial() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = attr_with_atoms(&mut rng, 15);
        let alg = Algebra::new(&n);
        let sigma = random_sigma(&mut rng, &alg, &SigmaConfig::default());
        assert_eq!(sigma.len(), 8);
        let trivial = sigma.iter().filter(|d| d.is_trivial(&alg)).count();
        assert!(trivial <= 2, "{trivial} trivial dependencies");
    }

    #[test]
    fn deterministic_for_seed() {
        let n = attr_with_atoms(&mut StdRng::seed_from_u64(6), 12);
        let alg = Algebra::new(&n);
        let s1 = random_sigma(&mut StdRng::seed_from_u64(9), &alg, &SigmaConfig::default());
        let s2 = random_sigma(&mut StdRng::seed_from_u64(9), &alg, &SigmaConfig::default());
        assert_eq!(s1, s2);
    }
}
