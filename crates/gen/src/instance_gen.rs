//! Random and Σ-satisfying instance generation.

use nalist_algebra::Algebra;
use nalist_deps::{CompiledDep, Instance};
use nalist_membership::closure::closure_and_basis;
use nalist_membership::witness::combination_instance;
use nalist_types::attr::NestedAttr;
use nalist_types::value::Value;
use rand::Rng;

/// Parameters for random value generation.
#[derive(Debug, Clone, Copy)]
pub struct InstanceConfig {
    /// Number of tuples to attempt (duplicates collapse).
    pub rows: usize,
    /// Distinct base values per flat attribute (small domains make
    /// dependency violations/satisfactions likely).
    pub domain_size: u32,
    /// Maximum list length.
    pub max_list_len: usize,
}

impl Default for InstanceConfig {
    fn default() -> Self {
        InstanceConfig {
            rows: 16,
            domain_size: 3,
            max_list_len: 3,
        }
    }
}

/// A uniformly random value of `dom(n)` under the configured shape.
pub fn random_value(rng: &mut impl Rng, n: &NestedAttr, cfg: &InstanceConfig) -> Value {
    match n {
        NestedAttr::Null => Value::Ok,
        NestedAttr::Flat(name) => {
            Value::str(format!("{name}#{}", rng.gen_range(0..cfg.domain_size)))
        }
        NestedAttr::Record(_, children) => {
            Value::Tuple(children.iter().map(|c| random_value(rng, c, cfg)).collect())
        }
        NestedAttr::List(_, inner) => {
            let len = rng.gen_range(0..=cfg.max_list_len);
            Value::List((0..len).map(|_| random_value(rng, inner, cfg)).collect())
        }
    }
}

/// A random instance over `n` (no dependency guarantees).
pub fn random_instance(rng: &mut impl Rng, n: &NestedAttr, cfg: &InstanceConfig) -> Instance {
    let mut r = Instance::new(n.clone());
    for _ in 0..cfg.rows {
        let v = random_value(rng, n, cfg);
        r.insert(v).expect("random values conform by construction");
    }
    r
}

/// An instance guaranteed to satisfy `Σ`: the completeness-construction
/// combination instance for a random left-hand side `X` (Section 4.2 of
/// the paper). Returns `None` if the construction would exceed the block
/// limit.
pub fn satisfying_instance(
    rng: &mut impl Rng,
    alg: &Algebra,
    sigma: &[CompiledDep],
    density: f64,
) -> Option<Instance> {
    let x = crate::sigma_gen::random_subattr(rng, alg, density);
    let basis = closure_and_basis(alg, sigma, &x);
    combination_instance(alg, &basis).ok().map(|w| w.instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_gen::attr_with_atoms;
    use crate::sigma_gen::{random_sigma, SigmaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_values_conform() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let n = attr_with_atoms(&mut rng, 12);
            let v = random_value(&mut rng, &n, &InstanceConfig::default());
            assert!(v.conforms(&n), "{v} !: {n}");
        }
    }

    #[test]
    fn random_instances_have_rows() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = attr_with_atoms(&mut rng, 10);
        let r = random_instance(&mut rng, &n, &InstanceConfig::default());
        assert!(!r.is_empty());
        assert!(r.len() <= 16);
    }

    #[test]
    fn satisfying_instances_satisfy() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let n = attr_with_atoms(&mut rng, 10);
            let alg = Algebra::new(&n);
            let sigma = random_sigma(
                &mut rng,
                &alg,
                &SigmaConfig {
                    count: 3,
                    ..SigmaConfig::default()
                },
            );
            if let Some(r) = satisfying_instance(&mut rng, &alg, &sigma, 0.3) {
                for d in &sigma {
                    assert!(r.satisfies(&alg, d), "instance violates {}", d.render(&alg));
                }
            }
        }
    }

    #[test]
    fn empty_lists_possible() {
        let mut rng = StdRng::seed_from_u64(24);
        let n = nalist_types::parser::parse_attr("L[A]").unwrap();
        let cfg = InstanceConfig {
            rows: 64,
            ..InstanceConfig::default()
        };
        let r = random_instance(&mut rng, &n, &cfg);
        assert!(r
            .iter()
            .any(|v| matches!(v, Value::List(items) if items.is_empty())));
    }
}
