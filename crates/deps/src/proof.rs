//! Derivation trees over the inference rules of Theorem 4.6, with an
//! independent proof checker.
//!
//! A [`Proof`] certifies `Σ ⊢ σ`: leaves cite premises from `Σ` (or axiom
//! instances), inner nodes cite a rule. [`check`] re-applies every rule
//! instance bottom-up and verifies each node's recorded conclusion, so a
//! proof produced by any search procedure (e.g.
//! [`crate::naive::NaiveClosure::proof_of`]) can be validated without
//! trusting the producer.

use nalist_algebra::{Algebra, AtomSet};

use crate::dependency::CompiledDep;
use crate::rules::{apply, Rule};

/// A derivation tree for a dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Proof {
    /// A premise `σ ∈ Σ`, cited by index.
    Premise {
        /// Index into the premise list supplied to [`check`].
        index: usize,
        /// The cited dependency (must equal `sigma[index]`).
        dep: CompiledDep,
    },
    /// An application of an inference rule.
    Step {
        /// The rule applied.
        rule: Rule,
        /// Sub-proofs of the rule's dependency premises, in rule order.
        inputs: Vec<Proof>,
        /// Extra subattribute parameters of the rule instance (see
        /// [`crate::rules::apply`]).
        params: Vec<AtomSet>,
        /// The recorded conclusion.
        conclusion: CompiledDep,
    },
}

impl Proof {
    /// The dependency this proof concludes.
    pub fn conclusion(&self) -> &CompiledDep {
        match self {
            Proof::Premise { dep, .. } => dep,
            Proof::Step { conclusion, .. } => conclusion,
        }
    }

    /// Number of rule applications in the tree.
    pub fn step_count(&self) -> usize {
        match self {
            Proof::Premise { .. } => 0,
            Proof::Step { inputs, .. } => 1 + inputs.iter().map(Proof::step_count).sum::<usize>(),
        }
    }

    /// Depth of the tree (a premise has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Proof::Premise { .. } => 0,
            Proof::Step { inputs, .. } => 1 + inputs.iter().map(Proof::depth).max().unwrap_or(0),
        }
    }

    /// Pretty-prints the derivation with one rule application per line.
    pub fn render(&self, alg: &Algebra) -> String {
        let mut out = String::new();
        self.render_into(alg, 0, &mut out);
        out
    }

    fn render_into(&self, alg: &Algebra, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            Proof::Premise { index, dep } => {
                out.push_str(&format!("{pad}[premise #{index}] {}\n", dep.render(alg)));
            }
            Proof::Step {
                rule,
                inputs,
                conclusion,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}[{}] {}\n",
                    rule.name(),
                    conclusion.render(alg)
                ));
                for i in inputs {
                    i.render_into(alg, indent + 1, out);
                }
            }
        }
    }
}

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// A premise citation is out of range or disagrees with `Σ`.
    BadPremise {
        /// The cited index.
        index: usize,
    },
    /// A rule application's recorded conclusion does not match the rule's
    /// actual output (or the rule instance is malformed).
    BadStep {
        /// The offending rule.
        rule: Rule,
    },
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::BadPremise { index } => write!(f, "bad premise citation #{index}"),
            ProofError::BadStep { rule } => write!(f, "invalid application of {}", rule.name()),
        }
    }
}

impl std::error::Error for ProofError {}

/// Checks a proof against the premise list `sigma`; on success returns the
/// proven conclusion.
pub fn check<'p>(
    alg: &Algebra,
    sigma: &[CompiledDep],
    proof: &'p Proof,
) -> Result<&'p CompiledDep, ProofError> {
    match proof {
        Proof::Premise { index, dep } => {
            if sigma.get(*index) == Some(dep) {
                Ok(dep)
            } else {
                Err(ProofError::BadPremise { index: *index })
            }
        }
        Proof::Step {
            rule,
            inputs,
            params,
            conclusion,
        } => {
            let mut checked = Vec::with_capacity(inputs.len());
            for i in inputs {
                checked.push(check(alg, sigma, i)?);
            }
            let param_refs: Vec<&AtomSet> = params.iter().collect();
            match apply(alg, *rule, &checked, &param_refs) {
                Some(got) if got == *conclusion => Ok(conclusion),
                _ => Err(ProofError::BadStep { rule: *rule }),
            }
        }
    }
}

/// A node of a [`ProofDag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagNode {
    /// A premise `σ ∈ Σ`, cited by index.
    Premise {
        /// Index into the premise list.
        index: usize,
        /// The cited dependency.
        dep: CompiledDep,
    },
    /// A rule application whose inputs are earlier DAG nodes.
    Step {
        /// The rule applied.
        rule: Rule,
        /// Indices of the input nodes (must be `<` this node's index).
        inputs: Vec<usize>,
        /// Extra subattribute parameters (see [`crate::rules::apply`]).
        params: Vec<AtomSet>,
        /// The recorded conclusion.
        conclusion: CompiledDep,
    },
}

impl DagNode {
    /// The dependency this node concludes.
    pub fn conclusion(&self) -> &CompiledDep {
        match self {
            DagNode::Premise { dep, .. } => dep,
            DagNode::Step { conclusion, .. } => conclusion,
        }
    }
}

/// A derivation **DAG**: like [`Proof`], but with shared sub-derivations,
/// so that certificate size stays polynomial even when a conclusion is
/// reused many times (as happens in proofs extracted from Algorithm 5.1,
/// where the growing `X → X_new` fact feeds every later step).
///
/// Node `i` may only reference nodes `< i`; [`ProofDag::check`] verifies
/// every node once, in order, so checking is linear in the DAG size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProofDag {
    /// The nodes in topological order.
    pub nodes: Vec<DagNode>,
}

impl ProofDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        ProofDag::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the DAG empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Appends a premise citation; returns its node index.
    pub fn premise(&mut self, index: usize, dep: CompiledDep) -> usize {
        self.nodes.push(DagNode::Premise { index, dep });
        self.nodes.len() - 1
    }

    /// Applies `rule` to the given input nodes and parameters, appends the
    /// resulting step, and returns its index — or `None` if the rule
    /// instance is malformed. The conclusion is computed by
    /// [`crate::rules::apply`], so an appended step is valid by
    /// construction (the independent [`ProofDag::check`] re-verifies).
    pub fn step(
        &mut self,
        alg: &Algebra,
        rule: Rule,
        inputs: &[usize],
        params: &[AtomSet],
    ) -> Option<usize> {
        let premises: Vec<&CompiledDep> =
            inputs.iter().map(|&i| self.nodes[i].conclusion()).collect();
        let param_refs: Vec<&AtomSet> = params.iter().collect();
        let conclusion = apply(alg, rule, &premises, &param_refs)?;
        self.nodes.push(DagNode::Step {
            rule,
            inputs: inputs.to_vec(),
            params: params.to_vec(),
            conclusion,
        });
        Some(self.nodes.len() - 1)
    }

    /// The conclusion of node `i`.
    pub fn conclusion(&self, i: usize) -> &CompiledDep {
        self.nodes[i].conclusion()
    }

    /// Independently re-verifies every node against the premise list.
    /// Returns the conclusion of the last node.
    pub fn check<'s>(
        &'s self,
        alg: &Algebra,
        sigma: &[CompiledDep],
    ) -> Result<&'s CompiledDep, ProofError> {
        let mut last = None;
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                DagNode::Premise { index, dep } => {
                    if sigma.get(*index) != Some(dep) {
                        return Err(ProofError::BadPremise { index: *index });
                    }
                }
                DagNode::Step {
                    rule,
                    inputs,
                    params,
                    conclusion,
                } => {
                    if inputs.iter().any(|&j| j >= i) {
                        return Err(ProofError::BadStep { rule: *rule });
                    }
                    let premises: Vec<&CompiledDep> =
                        inputs.iter().map(|&j| self.nodes[j].conclusion()).collect();
                    let param_refs: Vec<&AtomSet> = params.iter().collect();
                    match apply(alg, *rule, &premises, &param_refs) {
                        Some(got) if got == *conclusion => {}
                        _ => return Err(ProofError::BadStep { rule: *rule }),
                    }
                }
            }
            last = Some(node.conclusion());
        }
        last.ok_or(ProofError::BadPremise { index: 0 })
    }

    /// Renders the DAG as a numbered listing, one node per line.
    pub fn render(&self, alg: &Algebra) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                DagNode::Premise { index, dep } => {
                    out.push_str(&format!("n{i}: [premise #{index}] {}\n", dep.render(alg)));
                }
                DagNode::Step {
                    rule,
                    inputs,
                    conclusion,
                    ..
                } => {
                    let from = if inputs.is_empty() {
                        String::new()
                    } else {
                        format!(
                            "  (from {})",
                            inputs
                                .iter()
                                .map(|j| format!("n{j}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    };
                    out.push_str(&format!(
                        "n{i}: [{}] {}{from}\n",
                        rule.name(),
                        conclusion.render(alg)
                    ));
                }
            }
        }
        out
    }

    /// Expands the sub-derivation rooted at node `i` into a [`Proof`]
    /// tree. Sharing is lost — sizes can blow up; intended for displaying
    /// small certificates.
    pub fn to_tree(&self, i: usize) -> Proof {
        match &self.nodes[i] {
            DagNode::Premise { index, dep } => Proof::Premise {
                index: *index,
                dep: dep.clone(),
            },
            DagNode::Step {
                rule,
                inputs,
                params,
                conclusion,
            } => Proof::Step {
                rule: *rule,
                inputs: inputs.iter().map(|&j| self.to_tree(j)).collect(),
                params: params.clone(),
                conclusion: conclusion.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;
    use nalist_types::parser::parse_attr;

    fn dep(n: &nalist_types::NestedAttr, alg: &Algebra, s: &str) -> CompiledDep {
        Dependency::parse(n, s).unwrap().compile(alg).unwrap()
    }

    #[test]
    fn valid_two_step_proof_checks() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let proof = Proof::Step {
            rule: Rule::FdTransitivity,
            inputs: vec![
                Proof::Premise {
                    index: 0,
                    dep: sigma[0].clone(),
                },
                Proof::Premise {
                    index: 1,
                    dep: sigma[1].clone(),
                },
            ],
            params: vec![],
            conclusion: dep(&n, &alg, "L(A) -> L(C)"),
        };
        let c = check(&alg, &sigma, &proof).unwrap();
        assert_eq!(c.render(&alg), "L(A) -> L(C)");
        assert_eq!(proof.step_count(), 1);
        assert_eq!(proof.depth(), 1);
        assert!(proof.render(&alg).contains("transitivity rule"));
    }

    #[test]
    fn wrong_conclusion_rejected() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let proof = Proof::Step {
            rule: Rule::FdTransitivity,
            inputs: vec![
                Proof::Premise {
                    index: 0,
                    dep: sigma[0].clone(),
                },
                Proof::Premise {
                    index: 1,
                    dep: sigma[1].clone(),
                },
            ],
            params: vec![],
            conclusion: dep(&n, &alg, "L(A) -> L(B, C)"), // not what the rule gives
        };
        assert_eq!(
            check(&alg, &sigma, &proof),
            Err(ProofError::BadStep {
                rule: Rule::FdTransitivity
            })
        );
    }

    #[test]
    fn bad_premise_rejected() {
        let n = parse_attr("L(A, B)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)")];
        let fake = Proof::Premise {
            index: 0,
            dep: dep(&n, &alg, "L(B) -> L(A)"),
        };
        assert_eq!(
            check(&alg, &sigma, &fake),
            Err(ProofError::BadPremise { index: 0 })
        );
        let oob = Proof::Premise {
            index: 7,
            dep: sigma[0].clone(),
        };
        assert_eq!(
            check(&alg, &sigma, &oob),
            Err(ProofError::BadPremise { index: 7 })
        );
    }

    #[test]
    fn dag_builds_checks_and_expands() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let mut dag = ProofDag::new();
        let p0 = dag.premise(0, sigma[0].clone());
        let p1 = dag.premise(1, sigma[1].clone());
        let t = dag
            .step(&alg, Rule::FdTransitivity, &[p0, p1], &[])
            .unwrap();
        assert_eq!(dag.conclusion(t).render(&alg), "L(A) -> L(C)");
        let root = dag.check(&alg, &sigma).unwrap();
        assert_eq!(root.render(&alg), "L(A) -> L(C)");
        // the expanded tree checks against the tree checker too
        let tree = dag.to_tree(t);
        assert_eq!(
            check(&alg, &sigma, &tree).unwrap().render(&alg),
            "L(A) -> L(C)"
        );
        assert_eq!(dag.len(), 3);
        assert!(!dag.is_empty());
    }

    #[test]
    fn dag_rejects_malformed_steps() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)")];
        let mut dag = ProofDag::new();
        let p0 = dag.premise(0, sigma[0].clone());
        // transitivity with mismatched middle is refused at build time
        assert!(dag
            .step(&alg, Rule::FdTransitivity, &[p0, p0], &[])
            .is_none());
        // a forged forward reference is caught by check
        let mut forged = ProofDag::new();
        forged.premise(0, sigma[0].clone());
        forged.nodes.push(DagNode::Step {
            rule: Rule::FdImpliesMvd,
            inputs: vec![5], // forward/out-of-range
            params: vec![],
            conclusion: sigma[0].clone(),
        });
        assert!(forged.check(&alg, &sigma).is_err());
        // a forged conclusion is caught by check
        let mut forged2 = ProofDag::new();
        let q = forged2.premise(0, sigma[0].clone());
        forged2.nodes.push(DagNode::Step {
            rule: Rule::FdImpliesMvd,
            inputs: vec![q],
            params: vec![],
            conclusion: dep(&n, &alg, "L(A) -> L(C)"), // wrong
        });
        assert!(forged2.check(&alg, &sigma).is_err());
    }

    #[test]
    fn axiom_proof_with_params() {
        let n = parse_attr("L(A, B)").unwrap();
        let alg = Algebra::new(&n);
        let x = alg.top_set();
        let y = dep(&n, &alg, "L(A) -> L(A)").lhs;
        let proof = Proof::Step {
            rule: Rule::FdReflexivity,
            inputs: vec![],
            params: vec![x.clone(), y.clone()],
            conclusion: CompiledDep::fd(x, y),
        };
        assert!(check(&alg, &[], &proof).is_ok());
    }
}
