//! Derivation trees over the inference rules of Theorem 4.6, with an
//! independent proof checker.
//!
//! A [`Proof`] certifies `Σ ⊢ σ`: leaves cite premises from `Σ` (or axiom
//! instances), inner nodes cite a rule. [`check`] re-applies every rule
//! instance bottom-up and verifies each node's recorded conclusion, so a
//! proof produced by any search procedure (e.g.
//! [`crate::naive::NaiveClosure::proof_of`]) can be validated without
//! trusting the producer.

use nalist_algebra::{Algebra, AtomSet};
use nalist_guard::{Budget, ResourceExhausted, ResourceKind};

use crate::dependency::CompiledDep;
use crate::rules::{apply, Rule};

/// A derivation tree for a dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Proof {
    /// A premise `σ ∈ Σ`, cited by index.
    Premise {
        /// Index into the premise list supplied to [`check`].
        index: usize,
        /// The cited dependency (must equal `sigma[index]`).
        dep: CompiledDep,
    },
    /// An application of an inference rule.
    Step {
        /// The rule applied.
        rule: Rule,
        /// Sub-proofs of the rule's dependency premises, in rule order.
        inputs: Vec<Proof>,
        /// Extra subattribute parameters of the rule instance (see
        /// [`crate::rules::apply`]).
        params: Vec<AtomSet>,
        /// The recorded conclusion.
        conclusion: CompiledDep,
    },
}

impl Proof {
    /// The dependency this proof concludes.
    pub fn conclusion(&self) -> &CompiledDep {
        match self {
            Proof::Premise { dep, .. } => dep,
            Proof::Step { conclusion, .. } => conclusion,
        }
    }

    /// Number of rule applications in the tree.
    pub fn step_count(&self) -> usize {
        match self {
            Proof::Premise { .. } => 0,
            Proof::Step { inputs, .. } => 1 + inputs.iter().map(Proof::step_count).sum::<usize>(),
        }
    }

    /// Depth of the tree (a premise has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Proof::Premise { .. } => 0,
            Proof::Step { inputs, .. } => 1 + inputs.iter().map(Proof::depth).max().unwrap_or(0),
        }
    }

    /// Pretty-prints the derivation with one rule application per line.
    /// Ungoverned twin of [`Proof::render_governed`].
    pub fn render(&self, alg: &Algebra) -> String {
        let mut out = String::new();
        let _ = self.render_into(alg, 0, &mut out, &Budget::unlimited());
        out
    }

    /// Budget-governed rendering: charges one fuel unit per node and
    /// honours `budget.max_depth()`, so a pathologically deep or wide
    /// derivation fails fast instead of exhausting stack or memory.
    pub fn render_governed(
        &self,
        alg: &Algebra,
        budget: &Budget,
    ) -> Result<String, ResourceExhausted> {
        let mut out = String::new();
        self.render_into(alg, 0, &mut out, budget)?;
        Ok(out)
    }

    fn render_into(
        &self,
        alg: &Algebra,
        indent: usize,
        out: &mut String,
        budget: &Budget,
    ) -> Result<(), ResourceExhausted> {
        budget.charge(1)?;
        check_depth(budget, indent as u64)?;
        let pad = "  ".repeat(indent);
        match self {
            Proof::Premise { index, dep } => {
                out.push_str(&format!("{pad}[premise #{index}] {}\n", dep.render(alg)));
            }
            Proof::Step {
                rule,
                inputs,
                conclusion,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}[{}] {}\n",
                    rule.name(),
                    conclusion.render(alg)
                ));
                for i in inputs {
                    i.render_into(alg, indent + 1, out, budget)?;
                }
            }
        }
        Ok(())
    }
}

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// A premise citation is out of range or disagrees with `Σ`.
    BadPremise {
        /// The cited index.
        index: usize,
    },
    /// A rule application's recorded conclusion does not match the rule's
    /// actual output (or the rule instance is malformed).
    BadStep {
        /// The offending rule.
        rule: Rule,
    },
    /// The derivation has no nodes, so it concludes nothing.
    EmptyDerivation,
    /// The governed checker ran out of budget before finishing.
    Resource(ResourceExhausted),
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::BadPremise { index } => write!(f, "bad premise citation #{index}"),
            ProofError::BadStep { rule } => write!(f, "invalid application of {}", rule.name()),
            ProofError::EmptyDerivation => write!(f, "empty derivation"),
            ProofError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProofError {}

impl From<ResourceExhausted> for ProofError {
    fn from(e: ResourceExhausted) -> Self {
        ProofError::Resource(e)
    }
}

/// Checks a proof against the premise list `sigma`; on success returns the
/// proven conclusion. Ungoverned twin of [`check_governed`].
pub fn check<'p>(
    alg: &Algebra,
    sigma: &[CompiledDep],
    proof: &'p Proof,
) -> Result<&'p CompiledDep, ProofError> {
    check_governed(alg, sigma, proof, &Budget::unlimited())
}

/// Budget-governed proof check: charges one fuel unit per node and honours
/// `budget.max_depth()`, so an adversarially deep tree returns
/// [`ProofError::Resource`] instead of overflowing the stack.
pub fn check_governed<'p>(
    alg: &Algebra,
    sigma: &[CompiledDep],
    proof: &'p Proof,
    budget: &Budget,
) -> Result<&'p CompiledDep, ProofError> {
    check_at(alg, sigma, proof, budget, 0)
}

fn check_depth(budget: &Budget, depth: u64) -> Result<(), ResourceExhausted> {
    match budget.max_depth() {
        Some(limit) if depth > limit => Err(ResourceExhausted {
            kind: ResourceKind::Depth,
            spent: depth,
            limit,
        }),
        _ => Ok(()),
    }
}

fn check_at<'p>(
    alg: &Algebra,
    sigma: &[CompiledDep],
    proof: &'p Proof,
    budget: &Budget,
    depth: u64,
) -> Result<&'p CompiledDep, ProofError> {
    budget.charge(1)?;
    check_depth(budget, depth)?;
    match proof {
        Proof::Premise { index, dep } => {
            if sigma.get(*index) == Some(dep) {
                Ok(dep)
            } else {
                Err(ProofError::BadPremise { index: *index })
            }
        }
        Proof::Step {
            rule,
            inputs,
            params,
            conclusion,
        } => {
            let mut checked = Vec::with_capacity(inputs.len());
            for i in inputs {
                checked.push(check_at(alg, sigma, i, budget, depth + 1)?);
            }
            let param_refs: Vec<&AtomSet> = params.iter().collect();
            match apply(alg, *rule, &checked, &param_refs) {
                Some(got) if got == *conclusion => Ok(conclusion),
                _ => Err(ProofError::BadStep { rule: *rule }),
            }
        }
    }
}

/// A node of a [`ProofDag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagNode {
    /// A premise `σ ∈ Σ`, cited by index.
    Premise {
        /// Index into the premise list.
        index: usize,
        /// The cited dependency.
        dep: CompiledDep,
    },
    /// A rule application whose inputs are earlier DAG nodes.
    Step {
        /// The rule applied.
        rule: Rule,
        /// Indices of the input nodes (must be `<` this node's index).
        inputs: Vec<usize>,
        /// Extra subattribute parameters (see [`crate::rules::apply`]).
        params: Vec<AtomSet>,
        /// The recorded conclusion.
        conclusion: CompiledDep,
    },
}

impl DagNode {
    /// The dependency this node concludes.
    pub fn conclusion(&self) -> &CompiledDep {
        match self {
            DagNode::Premise { dep, .. } => dep,
            DagNode::Step { conclusion, .. } => conclusion,
        }
    }
}

/// A derivation **DAG**: like [`Proof`], but with shared sub-derivations,
/// so that certificate size stays polynomial even when a conclusion is
/// reused many times (as happens in proofs extracted from Algorithm 5.1,
/// where the growing `X → X_new` fact feeds every later step).
///
/// Node `i` may only reference nodes `< i`; [`ProofDag::check`] verifies
/// every node once, in order, so checking is linear in the DAG size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProofDag {
    /// The nodes in topological order.
    pub nodes: Vec<DagNode>,
}

impl ProofDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        ProofDag::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the DAG empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Appends a premise citation; returns its node index.
    pub fn premise(&mut self, index: usize, dep: CompiledDep) -> usize {
        self.nodes.push(DagNode::Premise { index, dep });
        self.nodes.len() - 1
    }

    /// Applies `rule` to the given input nodes and parameters, appends the
    /// resulting step, and returns its index — or `None` if the rule
    /// instance is malformed. The conclusion is computed by
    /// [`crate::rules::apply`], so an appended step is valid by
    /// construction (the independent [`ProofDag::check`] re-verifies).
    pub fn step(
        &mut self,
        alg: &Algebra,
        rule: Rule,
        inputs: &[usize],
        params: &[AtomSet],
    ) -> Option<usize> {
        let premises: Vec<&CompiledDep> =
            inputs.iter().map(|&i| self.nodes[i].conclusion()).collect();
        let param_refs: Vec<&AtomSet> = params.iter().collect();
        let conclusion = apply(alg, rule, &premises, &param_refs)?;
        self.nodes.push(DagNode::Step {
            rule,
            inputs: inputs.to_vec(),
            params: params.to_vec(),
            conclusion,
        });
        Some(self.nodes.len() - 1)
    }

    /// The conclusion of node `i`.
    ///
    /// # Panics
    /// If `i` is out of range; use [`ProofDag::try_conclusion`] for
    /// untrusted indices.
    pub fn conclusion(&self, i: usize) -> &CompiledDep {
        self.nodes[i].conclusion()
    }

    /// The conclusion of node `i`, or `None` if `i` is out of range.
    pub fn try_conclusion(&self, i: usize) -> Option<&CompiledDep> {
        self.nodes.get(i).map(DagNode::conclusion)
    }

    /// Independently re-verifies every node against the premise list.
    /// Returns the conclusion of the last node. Ungoverned twin of
    /// [`ProofDag::check_governed`].
    pub fn check<'s>(
        &'s self,
        alg: &Algebra,
        sigma: &[CompiledDep],
    ) -> Result<&'s CompiledDep, ProofError> {
        self.check_governed(alg, sigma, &Budget::unlimited())
    }

    /// Budget-governed DAG check: charges one fuel unit per node plus one
    /// per cited input edge, so a certificate-sized bomb trips the budget
    /// instead of monopolising the checker.
    pub fn check_governed<'s>(
        &'s self,
        alg: &Algebra,
        sigma: &[CompiledDep],
        budget: &Budget,
    ) -> Result<&'s CompiledDep, ProofError> {
        let mut last = None;
        for (i, node) in self.nodes.iter().enumerate() {
            budget.charge(1)?;
            match node {
                DagNode::Premise { index, dep } => {
                    if sigma.get(*index) != Some(dep) {
                        return Err(ProofError::BadPremise { index: *index });
                    }
                }
                DagNode::Step {
                    rule,
                    inputs,
                    params,
                    conclusion,
                } => {
                    budget.charge(inputs.len() as u64)?;
                    if inputs.iter().any(|&j| j >= i) {
                        return Err(ProofError::BadStep { rule: *rule });
                    }
                    let premises: Vec<&CompiledDep> =
                        inputs.iter().map(|&j| self.nodes[j].conclusion()).collect();
                    let param_refs: Vec<&AtomSet> = params.iter().collect();
                    match apply(alg, *rule, &premises, &param_refs) {
                        Some(got) if got == *conclusion => {}
                        _ => return Err(ProofError::BadStep { rule: *rule }),
                    }
                }
            }
            last = Some(node.conclusion());
        }
        last.ok_or(ProofError::EmptyDerivation)
    }

    /// Renders the DAG as a numbered listing, one node per line.
    /// Ungoverned twin of [`ProofDag::render_governed`].
    pub fn render(&self, alg: &Algebra) -> String {
        self.render_governed(alg, &Budget::unlimited())
            .unwrap_or_default()
    }

    /// Budget-governed rendering: charges one fuel unit per node plus one
    /// per cited input edge.
    pub fn render_governed(
        &self,
        alg: &Algebra,
        budget: &Budget,
    ) -> Result<String, ResourceExhausted> {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            budget.charge(1)?;
            match node {
                DagNode::Premise { index, dep } => {
                    out.push_str(&format!("n{i}: [premise #{index}] {}\n", dep.render(alg)));
                }
                DagNode::Step {
                    rule,
                    inputs,
                    conclusion,
                    ..
                } => {
                    budget.charge(inputs.len() as u64)?;
                    let from = if inputs.is_empty() {
                        String::new()
                    } else {
                        format!(
                            "  (from {})",
                            inputs
                                .iter()
                                .map(|j| format!("n{j}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    };
                    out.push_str(&format!(
                        "n{i}: [{}] {}{from}\n",
                        rule.name(),
                        conclusion.render(alg)
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Expands the sub-derivation rooted at node `i` into a [`Proof`]
    /// tree. Sharing is lost — sizes can blow up; intended for displaying
    /// small certificates. Ungoverned twin of
    /// [`ProofDag::to_tree_governed`].
    pub fn to_tree(&self, i: usize) -> Proof {
        self.to_tree_governed(i, &Budget::unlimited())
            .expect("unlimited budget never exhausts")
    }

    /// Budget-governed tree expansion: charges one fuel unit per expanded
    /// node and honours `budget.max_depth()`. Because sharing is lost, a
    /// small DAG can expand to an exponentially large tree — governed
    /// expansion is the only safe entry point for untrusted input.
    pub fn to_tree_governed(&self, i: usize, budget: &Budget) -> Result<Proof, ResourceExhausted> {
        self.expand(i, budget, 0)
    }

    fn expand(&self, i: usize, budget: &Budget, depth: u64) -> Result<Proof, ResourceExhausted> {
        budget.charge(1)?;
        check_depth(budget, depth)?;
        match &self.nodes[i] {
            DagNode::Premise { index, dep } => Ok(Proof::Premise {
                index: *index,
                dep: dep.clone(),
            }),
            DagNode::Step {
                rule,
                inputs,
                params,
                conclusion,
            } => {
                let mut subtrees = Vec::with_capacity(inputs.len());
                for &j in inputs {
                    subtrees.push(self.expand(j, budget, depth + 1)?);
                }
                Ok(Proof::Step {
                    rule: *rule,
                    inputs: subtrees,
                    params: params.clone(),
                    conclusion: conclusion.clone(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;
    use nalist_types::parser::parse_attr;

    fn dep(n: &nalist_types::NestedAttr, alg: &Algebra, s: &str) -> CompiledDep {
        Dependency::parse(n, s).unwrap().compile(alg).unwrap()
    }

    #[test]
    fn valid_two_step_proof_checks() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let proof = Proof::Step {
            rule: Rule::FdTransitivity,
            inputs: vec![
                Proof::Premise {
                    index: 0,
                    dep: sigma[0].clone(),
                },
                Proof::Premise {
                    index: 1,
                    dep: sigma[1].clone(),
                },
            ],
            params: vec![],
            conclusion: dep(&n, &alg, "L(A) -> L(C)"),
        };
        let c = check(&alg, &sigma, &proof).unwrap();
        assert_eq!(c.render(&alg), "L(A) -> L(C)");
        assert_eq!(proof.step_count(), 1);
        assert_eq!(proof.depth(), 1);
        assert!(proof.render(&alg).contains("transitivity rule"));
    }

    #[test]
    fn wrong_conclusion_rejected() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let proof = Proof::Step {
            rule: Rule::FdTransitivity,
            inputs: vec![
                Proof::Premise {
                    index: 0,
                    dep: sigma[0].clone(),
                },
                Proof::Premise {
                    index: 1,
                    dep: sigma[1].clone(),
                },
            ],
            params: vec![],
            conclusion: dep(&n, &alg, "L(A) -> L(B, C)"), // not what the rule gives
        };
        assert_eq!(
            check(&alg, &sigma, &proof),
            Err(ProofError::BadStep {
                rule: Rule::FdTransitivity
            })
        );
    }

    #[test]
    fn bad_premise_rejected() {
        let n = parse_attr("L(A, B)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)")];
        let fake = Proof::Premise {
            index: 0,
            dep: dep(&n, &alg, "L(B) -> L(A)"),
        };
        assert_eq!(
            check(&alg, &sigma, &fake),
            Err(ProofError::BadPremise { index: 0 })
        );
        let oob = Proof::Premise {
            index: 7,
            dep: sigma[0].clone(),
        };
        assert_eq!(
            check(&alg, &sigma, &oob),
            Err(ProofError::BadPremise { index: 7 })
        );
    }

    #[test]
    fn dag_builds_checks_and_expands() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let mut dag = ProofDag::new();
        let p0 = dag.premise(0, sigma[0].clone());
        let p1 = dag.premise(1, sigma[1].clone());
        let t = dag
            .step(&alg, Rule::FdTransitivity, &[p0, p1], &[])
            .unwrap();
        assert_eq!(dag.conclusion(t).render(&alg), "L(A) -> L(C)");
        let root = dag.check(&alg, &sigma).unwrap();
        assert_eq!(root.render(&alg), "L(A) -> L(C)");
        // the expanded tree checks against the tree checker too
        let tree = dag.to_tree(t);
        assert_eq!(
            check(&alg, &sigma, &tree).unwrap().render(&alg),
            "L(A) -> L(C)"
        );
        assert_eq!(dag.len(), 3);
        assert!(!dag.is_empty());
    }

    #[test]
    fn dag_rejects_malformed_steps() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)")];
        let mut dag = ProofDag::new();
        let p0 = dag.premise(0, sigma[0].clone());
        // transitivity with mismatched middle is refused at build time
        assert!(dag
            .step(&alg, Rule::FdTransitivity, &[p0, p0], &[])
            .is_none());
        // a forged forward reference is caught by check
        let mut forged = ProofDag::new();
        forged.premise(0, sigma[0].clone());
        forged.nodes.push(DagNode::Step {
            rule: Rule::FdImpliesMvd,
            inputs: vec![5], // forward/out-of-range
            params: vec![],
            conclusion: sigma[0].clone(),
        });
        assert!(forged.check(&alg, &sigma).is_err());
        // a forged conclusion is caught by check
        let mut forged2 = ProofDag::new();
        let q = forged2.premise(0, sigma[0].clone());
        forged2.nodes.push(DagNode::Step {
            rule: Rule::FdImpliesMvd,
            inputs: vec![q],
            params: vec![],
            conclusion: dep(&n, &alg, "L(A) -> L(C)"), // wrong
        });
        assert!(forged2.check(&alg, &sigma).is_err());
    }

    #[test]
    fn governed_paths_trip_budget_and_depth() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let mut dag = ProofDag::new();
        let p0 = dag.premise(0, sigma[0].clone());
        let p1 = dag.premise(1, sigma[1].clone());
        let t = dag
            .step(&alg, Rule::FdTransitivity, &[p0, p1], &[])
            .unwrap();

        // out of fuel: every governed entry point reports Resource
        let starved = Budget::unlimited().with_fuel(1);
        assert!(matches!(
            dag.check_governed(&alg, &sigma, &starved),
            Err(ProofError::Resource(_))
        ));
        assert!(dag
            .render_governed(&alg, &Budget::unlimited().with_fuel(1))
            .is_err());
        assert!(dag
            .to_tree_governed(t, &Budget::unlimited().with_fuel(1))
            .is_err());

        // depth cap: the expanded tree has depth 1, a cap of 0 trips it
        let shallow = Budget::unlimited().with_max_depth(0);
        let tree = dag.to_tree(t);
        assert!(matches!(
            check_governed(&alg, &sigma, &tree, &shallow),
            Err(ProofError::Resource(e)) if e.kind == ResourceKind::Depth
        ));
        assert!(tree
            .render_governed(&alg, &Budget::unlimited().with_max_depth(0))
            .is_err());

        // ample budget agrees with the ungoverned twin everywhere
        let ample = Budget::unlimited().with_fuel(1_000).with_max_depth(64);
        assert_eq!(
            dag.check_governed(&alg, &sigma, &ample).unwrap(),
            dag.check(&alg, &sigma).unwrap()
        );
        assert_eq!(dag.render_governed(&alg, &ample).unwrap(), dag.render(&alg));
        assert_eq!(dag.to_tree_governed(t, &ample).unwrap(), tree);
        assert_eq!(
            tree.render_governed(&alg, &ample).unwrap(),
            tree.render(&alg)
        );
    }

    #[test]
    fn empty_dag_is_a_typed_error() {
        let n = parse_attr("L(A)").unwrap();
        let alg = Algebra::new(&n);
        assert_eq!(
            ProofDag::new().check(&alg, &[]),
            Err(ProofError::EmptyDerivation)
        );
        assert!(ProofDag::new().try_conclusion(0).is_none());
    }

    #[test]
    fn axiom_proof_with_params() {
        let n = parse_attr("L(A, B)").unwrap();
        let alg = Algebra::new(&n);
        let x = alg.top_set();
        let y = dep(&n, &alg, "L(A) -> L(A)").lhs;
        let proof = Proof::Step {
            rule: Rule::FdReflexivity,
            inputs: vec![],
            params: vec![x.clone(), y.clone()],
            conclusion: CompiledDep::fd(x, y),
        };
        assert!(check(&alg, &[], &proof).is_ok());
    }
}
