//! Finite instances `r ⊆ dom(N)` and the satisfaction of FDs and MVDs
//! (Definition 4.1).
//!
//! An FD `X → Y` is satisfied when any two tuples agreeing on `X` (under
//! `π^N_X`) also agree on `Y`. An MVD `X ↠ Y` is satisfied when for all
//! `t1, t2` agreeing on `X` there is a `t ∈ r` combining `t1`'s
//! `X ⊔ Y`-projection with `t2`'s `X ⊔ Y^C`-projection — equivalently,
//! within every `X`-group the observed
//! `(π_{X⊔Y}, π_{X⊔Y^C})` pairs form a full cross product.

use std::collections::{BTreeMap, BTreeSet};

use nalist_algebra::{Algebra, AtomSet};
use nalist_types::attr::NestedAttr;
use nalist_types::error::{ParseError, TypeError};
use nalist_types::parser::parse_value;
use nalist_types::projection::project_unchecked;
use nalist_types::value::Value;

use crate::dependency::{CompiledDep, Dependency};
use nalist_types::parser::DepKind;

/// A finite set of values over a fixed nested attribute `N`
/// (set semantics, deterministic iteration order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    attr: NestedAttr,
    tuples: BTreeSet<Value>,
}

impl Instance {
    /// Creates an empty instance over `n`.
    pub fn new(n: NestedAttr) -> Self {
        Instance {
            attr: n,
            tuples: BTreeSet::new(),
        }
    }

    /// The ambient attribute `N`.
    pub fn attr(&self) -> &NestedAttr {
        &self.attr
    }

    /// Inserts a tuple after checking `t ∈ dom(N)`.
    pub fn insert(&mut self, t: Value) -> Result<bool, TypeError> {
        if !t.conforms(&self.attr) {
            return Err(TypeError::ValueMismatch {
                attr: self.attr.to_string(),
                value: t.to_string(),
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Inserts a tuple written in the paper's value notation.
    pub fn insert_str(&mut self, src: &str) -> Result<bool, InstanceError> {
        let v = parse_value(src).map_err(InstanceError::Parse)?;
        self.insert(v).map_err(InstanceError::Type)
    }

    /// Builds an instance from parsed value literals.
    pub fn from_strs(n: NestedAttr, rows: &[&str]) -> Result<Self, InstanceError> {
        let mut r = Instance::new(n);
        for row in rows {
            r.insert_str(row)?;
        }
        Ok(r)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.tuples.iter()
    }

    /// Does the instance contain `t`?
    pub fn contains(&self, t: &Value) -> bool {
        self.tuples.contains(t)
    }

    /// The projection `π_X(r) = {π^N_X(t) | t ∈ r}` onto a subattribute
    /// `x ≤ N` (set semantics — duplicates collapse).
    pub fn project(&self, x: &NestedAttr) -> Result<Instance, TypeError> {
        if !nalist_types::subattr::is_subattr(x, &self.attr) {
            return Err(TypeError::NotSubattribute {
                sub: x.to_string(),
                sup: self.attr.to_string(),
            });
        }
        let mut out = Instance::new(x.clone());
        for t in &self.tuples {
            out.tuples.insert(project_unchecked(&self.attr, x, t)?);
        }
        Ok(out)
    }

    /// Does the instance satisfy the FD `X → Y` (Definition 4.1)?
    pub fn satisfies_fd(&self, alg: &Algebra, x: &AtomSet, y: &AtomSet) -> bool {
        let xa = alg.to_attr(x);
        let ya = alg.to_attr(y);
        let mut seen: BTreeMap<Value, Value> = BTreeMap::new();
        for t in &self.tuples {
            let px = project_unchecked(&self.attr, &xa, t).expect("tuples conform");
            let py = project_unchecked(&self.attr, &ya, t).expect("tuples conform");
            if let Some(prev) = seen.get(&px) {
                if *prev != py {
                    return false;
                }
            } else {
                seen.insert(px, py);
            }
        }
        true
    }

    /// Does the instance satisfy the MVD `X ↠ Y` (Definition 4.1)?
    pub fn satisfies_mvd(&self, alg: &Algebra, x: &AtomSet, y: &AtomSet) -> bool {
        let xy = alg.to_attr(&alg.join(x, y));
        let xyc = alg.to_attr(&alg.join(x, &alg.compl(y)));
        let xa = alg.to_attr(x);
        // group tuples by π_X, collecting the (π_{X⊔Y}, π_{X⊔Y^C}) pairs
        let mut groups: BTreeMap<Value, BTreeSet<(Value, Value)>> = BTreeMap::new();
        for t in &self.tuples {
            let px = project_unchecked(&self.attr, &xa, t).expect("tuples conform");
            let pl = project_unchecked(&self.attr, &xy, t).expect("tuples conform");
            let pr = project_unchecked(&self.attr, &xyc, t).expect("tuples conform");
            groups.entry(px).or_default().insert((pl, pr));
        }
        // the MVD holds iff every group's pair set is a full cross product
        for pairs in groups.values() {
            let lefts: BTreeSet<&Value> = pairs.iter().map(|(l, _)| l).collect();
            let rights: BTreeSet<&Value> = pairs.iter().map(|(_, r)| r).collect();
            if lefts.len() * rights.len() != pairs.len() {
                return false;
            }
        }
        true
    }

    /// Does the instance satisfy the given compiled dependency?
    pub fn satisfies(&self, alg: &Algebra, dep: &CompiledDep) -> bool {
        match dep.kind {
            DepKind::Fd => self.satisfies_fd(alg, &dep.lhs, &dep.rhs),
            DepKind::Mvd => self.satisfies_mvd(alg, &dep.lhs, &dep.rhs),
        }
    }

    /// Does the instance satisfy the tree-level dependency?
    pub fn satisfies_dep(&self, alg: &Algebra, dep: &Dependency) -> Result<bool, TypeError> {
        Ok(self.satisfies(alg, &dep.compile(alg)?))
    }

    /// Does the instance satisfy every dependency in `sigma`?
    pub fn satisfies_all(&self, alg: &Algebra, sigma: &[CompiledDep]) -> bool {
        sigma.iter().all(|d| self.satisfies(alg, d))
    }
}

impl std::fmt::Display for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{{")?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        write!(f, "}}")
    }
}

/// Errors while building instances from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// Value literal failed to parse.
    Parse(ParseError),
    /// Value does not conform to the instance's attribute.
    Type(TypeError),
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::Parse(e) => write!(f, "parse error: {e}"),
            InstanceError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for InstanceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_types::parser::parse_attr;

    /// The paper's Example 4.2 snapshot.
    pub fn pubcrawl_instance() -> (NestedAttr, Algebra, Instance) {
        let n = parse_attr("Pubcrawl(Person, Visit[Drink(Beer, Pub)])").unwrap();
        let alg = Algebra::new(&n);
        let r = Instance::from_strs(
            n.clone(),
            &[
                "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])",
                "(Sven, [(Kindl, Deanos), (Lübzer, Highflyers)])",
                "(Klaus-Dieter, [(Guiness, Irish Pub), (Speights, 3Bar), (Guiness, Irish Pub)])",
                "(Klaus-Dieter, [(Kölsch, Irish Pub), (Bönnsch, 3Bar), (Guiness, Irish Pub)])",
                "(Klaus-Dieter, [(Guiness, Highflyers), (Speights, Deanos), (Guiness, 3Bar)])",
                "(Klaus-Dieter, [(Kölsch, Highflyers), (Bönnsch, Deanos), (Guiness, 3Bar)])",
                "(Sebastian, [])",
            ],
        )
        .unwrap();
        (n, alg, r)
    }

    fn compile(n: &NestedAttr, alg: &Algebra, s: &str) -> CompiledDep {
        Dependency::parse(n, s).unwrap().compile(alg).unwrap()
    }

    #[test]
    fn example_42_verdicts() {
        let (n, alg, r) = pubcrawl_instance();
        assert_eq!(r.len(), 7);
        // FD Person -> Visit[Drink(Pub)] is NOT satisfied
        let fd_pub = compile(&n, &alg, "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])");
        assert!(!r.satisfies(&alg, &fd_pub));
        // FD Person -> Visit[Drink(Beer)] is NOT satisfied
        let fd_beer = compile(&n, &alg, "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Beer)])");
        assert!(!r.satisfies(&alg, &fd_beer));
        // MVD Person ->> Visit[Drink(Pub)] IS satisfied
        let mvd_pub = compile(&n, &alg, "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])");
        assert!(r.satisfies(&alg, &mvd_pub));
        // FD Person -> Visit[λ] IS satisfied ("person determines the number
        // of bars visited")
        let fd_len = compile(&n, &alg, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])");
        assert!(r.satisfies(&alg, &fd_len));
    }

    #[test]
    fn mvd_symmetric_side_also_holds() {
        // X ↠ Y implies X ↠ Y^C; check the Beer side explicitly.
        let (n, alg, r) = pubcrawl_instance();
        let mvd_beer = compile(
            &n,
            &alg,
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
        );
        assert!(r.satisfies(&alg, &mvd_beer));
    }

    #[test]
    fn fd_violation_needs_two_tuples() {
        let n = parse_attr("L(A, B)").unwrap();
        let alg = Algebra::new(&n);
        let mut r = Instance::new(n.clone());
        r.insert_str("(a, b1)").unwrap();
        let fd = compile(&n, &alg, "L(A) -> L(B)");
        assert!(r.satisfies(&alg, &fd));
        r.insert_str("(a, b2)").unwrap();
        assert!(!r.satisfies(&alg, &fd));
        // but the MVD A ->> B is trivially satisfied (X ⊔ Y = N)
        let mvd = compile(&n, &alg, "L(A) ->> L(B)");
        assert!(r.satisfies(&alg, &mvd));
    }

    #[test]
    fn mvd_cross_product_check() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let mvd = compile(&n, &alg, "L(A) ->> L(B)");
        // full cross product on (B, C) for A = a: satisfied
        let r = Instance::from_strs(
            n.clone(),
            &["(a, b1, c1)", "(a, b1, c2)", "(a, b2, c1)", "(a, b2, c2)"],
        )
        .unwrap();
        assert!(r.satisfies(&alg, &mvd));
        // remove one combination: violated
        let r2 =
            Instance::from_strs(n.clone(), &["(a, b1, c1)", "(a, b1, c2)", "(a, b2, c1)"]).unwrap();
        assert!(!r2.satisfies(&alg, &mvd));
        // different A-groups do not interact
        let r3 = Instance::from_strs(n.clone(), &["(a, b1, c1)", "(a2, b2, c2)"]).unwrap();
        assert!(r3.satisfies(&alg, &mvd));
    }

    #[test]
    fn empty_and_singleton_satisfy_everything() {
        let (n, alg, _) = pubcrawl_instance();
        let deps = [
            compile(&n, &alg, "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])"),
            compile(&n, &alg, "λ ->> Pubcrawl(Visit[Drink(Beer)])"),
        ];
        let empty = Instance::new(n.clone());
        let mut single = Instance::new(n.clone());
        single.insert_str("(Sven, [])").unwrap();
        for d in &deps {
            assert!(empty.satisfies(&alg, d));
            assert!(single.satisfies(&alg, d));
        }
    }

    #[test]
    fn projection_collapses_duplicates() {
        let (n, _, r) = pubcrawl_instance();
        let person = nalist_types::parser::parse_subattr_of(&n, "Pubcrawl(Person)").unwrap();
        let p = r.project(&person).unwrap();
        assert_eq!(p.len(), 3); // Sven, Klaus-Dieter, Sebastian
    }

    #[test]
    fn insert_rejects_ill_typed() {
        let n = parse_attr("L(A, B)").unwrap();
        let mut r = Instance::new(n);
        assert!(r.insert(Value::str("flat")).is_err());
        assert!(r.insert_str("(a)").is_err());
        assert!(matches!(r.insert_str("(a,"), Err(InstanceError::Parse(_))));
    }

    #[test]
    fn projection_rejects_non_subattribute() {
        let (_, _, r) = pubcrawl_instance();
        assert!(r.project(&parse_attr("Z").unwrap()).is_err());
    }

    #[test]
    fn empty_list_groups_correctly() {
        // Sebastian's [] must not break grouping/projection machinery.
        let (n, alg, r) = pubcrawl_instance();
        let fd = compile(&n, &alg, "Pubcrawl(Visit[λ]) -> Pubcrawl(Person)");
        // list-shape π: Sven's lists have length 2, Klaus-Dieter's length 3,
        // Sebastian's 0 — so shape determines person here.
        assert!(r.satisfies(&alg, &fd));
    }
}
