//! # nalist-deps
//!
//! Functional and multi-valued dependencies over nested attributes with
//! base, record and finite list types (Section 4 of Hartmann & Link,
//! ENTCS 91, 2004):
//!
//! * [`Dependency`]/[`dependency::CompiledDep`] — FDs `X → Y` and MVDs
//!   `X ↠ Y` with `X, Y ∈ Sub(N)` (Definition 4.1), triviality via
//!   Lemma 4.3;
//! * [`Instance`] — finite sets `r ⊆ dom(N)` with projection-based
//!   satisfaction checking;
//! * [`join`] — the generalised join and Fagin's lossless-join
//!   characterisation of MVDs (Theorem 4.4);
//! * [`rules`] — the 14 inference rules of Theorem 4.6 (including the
//!   novel *mixed meet rule*), [`proof`] — checkable derivation trees;
//! * [`naive`] — the exponential enumeration of `Σ⁺` used as the baseline
//!   and ground truth for the membership algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chase;
pub mod dependency;
pub mod footprint;
pub mod instance;
pub mod join;
pub mod naive;
pub mod proof;
pub mod rules;

pub use chase::{chase, ChaseError, ChaseResult};
pub use dependency::{parse_sigma, CompiledDep, Dependency};
pub use footprint::PreparedDep;
pub use instance::Instance;
pub use nalist_types::parser::DepKind;
pub use proof::{DagNode, Proof, ProofDag};
pub use rules::Rule;
