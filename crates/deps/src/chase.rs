//! The chase for MVDs over nested instances: repair an instance to
//! satisfy a set of dependencies by adding the recombination tuples the
//! MVDs demand (Definition 4.1), or report why no repair exists.
//!
//! In the relational model the MVD chase always succeeds: the required
//! recombination tuple of any two `X`-agreeing tuples always *exists* as
//! a value. **With lists this fails in a characteristic way**: the
//! recombination of `t1`'s `X⊔Y`-projection with `t2`'s
//! `X⊔Y^C`-projection is only a value when the two agree on the overlap
//! `X ⊔ (Y ⊓ Y^C)` — list shapes shared by both sides. An unrepairable
//! chase step is therefore exactly a violation of the FD `X → Y ⊓ Y^C`
//! that the paper's *mixed meet rule* derives from `X ↠ Y`; the chase
//! makes that rule's semantic content operational.
//!
//! FDs cannot be repaired by adding tuples, so they are checked and
//! reported rather than chased.

use nalist_algebra::Algebra;
use nalist_guard::{Budget, ResourceExhausted};
use nalist_obs::{site, Counter, Recorder};
use nalist_types::parser::DepKind;
use nalist_types::value::Value;

use crate::dependency::CompiledDep;
use crate::instance::Instance;
use crate::join::merge_values;

/// The result of a successful chase.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The repaired instance (a superset of the input; satisfies every
    /// MVD of `Σ`).
    pub instance: Instance,
    /// Number of tuples added.
    pub added: usize,
    /// Number of chase rounds until fixpoint.
    pub rounds: usize,
}

/// Why the chase stopped without producing a repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseError {
    /// An FD of `Σ` is violated; adding tuples cannot fix that.
    FdViolated {
        /// Index of the FD in `Σ`.
        index: usize,
    },
    /// An MVD demanded a recombination tuple that does not exist as a
    /// value — the two witnesses agree on `X` but disagree on the shared
    /// list shapes `Y ⊓ Y^C` (the mixed-meet part), so the (possibly
    /// partially chased) instance violates the FD `X → Y ⊓ Y^C` that the
    /// mixed meet rule derives from the MVD. This is the list-specific
    /// failure mode absent from the relational chase. Note the witnesses
    /// may be tuples *added* by earlier chase steps of other MVDs, not
    /// necessarily tuples of the input instance.
    Unrepairable {
        /// Index of the MVD in `Σ`.
        index: usize,
        /// A witness pair whose recombination cannot exist.
        t1: Box<Value>,
        /// The second witness.
        t2: Box<Value>,
    },
    /// The instance grew past the configured bound.
    TooLarge {
        /// The configured bound.
        max_tuples: usize,
    },
    /// The chase ran out of its resource [`Budget`] (fuel, deadline or
    /// cancellation) before reaching a fixpoint.
    Resource(ResourceExhausted),
}

impl std::fmt::Display for ChaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaseError::FdViolated { index } => {
                write!(f, "FD #{index} is violated; the chase cannot repair FDs")
            }
            ChaseError::Unrepairable { index, t1, t2 } => write!(
                f,
                "MVD #{index} demands a recombination of {t1} and {t2} that does not \
                 exist as a value (shared list shapes disagree — the mixed-meet FD is violated)"
            ),
            ChaseError::TooLarge { max_tuples } => {
                write!(f, "chase exceeded {max_tuples} tuples")
            }
            ChaseError::Resource(e) => write!(f, "chase stopped: {e}"),
        }
    }
}

impl std::error::Error for ChaseError {}

/// Chases `instance` with the MVDs of `sigma` until every MVD is
/// satisfied, then checks the FDs. `max_tuples` bounds the blow-up.
pub fn chase(
    alg: &Algebra,
    sigma: &[CompiledDep],
    instance: &Instance,
    max_tuples: usize,
) -> Result<ChaseResult, ChaseError> {
    chase_governed(alg, sigma, instance, max_tuples, &Budget::unlimited())
}

/// [`chase`] under a resource [`Budget`]: fuel is charged per projected
/// tuple and per attempted recombination (the two places where chase work
/// actually accrues), so runaway fixpoints stop with
/// [`ChaseError::Resource`] instead of spinning past their deadline.
pub fn chase_governed(
    alg: &Algebra,
    sigma: &[CompiledDep],
    instance: &Instance,
    max_tuples: usize,
    budget: &Budget,
) -> Result<ChaseResult, ChaseError> {
    budget
        .failpoint("deps::chase")
        .map_err(ChaseError::Resource)?;
    let mut r = instance.clone();
    let original = instance.len();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for (index, dep) in sigma.iter().enumerate() {
            if dep.kind != DepKind::Mvd {
                continue;
            }
            let x_attr = alg.to_attr(&dep.lhs);
            let left_attr = alg.to_attr(&alg.join(&dep.lhs, &dep.rhs));
            let right_attr = alg.to_attr(&alg.join(&dep.lhs, &alg.compl(&dep.rhs)));
            // group tuples by π_X, remembering a representative per side
            use std::collections::BTreeMap;
            let mut groups: BTreeMap<Value, Vec<(Value, Value, Value)>> = BTreeMap::new();
            for t in r.iter() {
                budget.charge(1).map_err(ChaseError::Resource)?;
                let px = nalist_types::projection::project_unchecked(r.attr(), &x_attr, t)
                    .expect("tuples conform");
                let pl = nalist_types::projection::project_unchecked(r.attr(), &left_attr, t)
                    .expect("tuples conform");
                let pr = nalist_types::projection::project_unchecked(r.attr(), &right_attr, t)
                    .expect("tuples conform");
                groups.entry(px).or_default().push((pl, pr, t.clone()));
            }
            for members in groups.values() {
                for (l1, _, t1) in members {
                    for (_, r2, t2) in members {
                        budget.charge(1).map_err(ChaseError::Resource)?;
                        match merge_values(&left_attr, &right_attr, l1, r2) {
                            Some(t) => {
                                if !r.contains(&t) {
                                    if r.len() >= max_tuples {
                                        return Err(ChaseError::TooLarge { max_tuples });
                                    }
                                    r.insert(t).expect("merged values conform");
                                    changed = true;
                                }
                            }
                            None => {
                                return Err(ChaseError::Unrepairable {
                                    index,
                                    t1: Box::new(t1.clone()),
                                    t2: Box::new(t2.clone()),
                                });
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // FDs are checked, not repaired
    for (index, dep) in sigma.iter().enumerate() {
        if dep.kind == DepKind::Fd && !r.satisfies(alg, dep) {
            return Err(ChaseError::FdViolated { index });
        }
    }
    debug_assert!(r.satisfies_all(alg, sigma));
    Ok(ChaseResult {
        added: r.len() - original,
        rounds,
        instance: r,
    })
}

/// [`chase_governed`] with an observability [`Recorder`]: one span per
/// chase (payload in = input tuples, payload out = tuples added) plus
/// the [`Counter::ChaseRounds`] and [`Counter::ChaseTuples`] work
/// counters. With a disabled recorder this is exactly
/// [`chase_governed`] — no span, no counter traffic.
pub fn chase_observed(
    alg: &Algebra,
    sigma: &[CompiledDep],
    instance: &Instance,
    max_tuples: usize,
    budget: &Budget,
    rec: &dyn Recorder,
) -> Result<ChaseResult, ChaseError> {
    if !rec.enabled() {
        return chase_governed(alg, sigma, instance, max_tuples, budget);
    }
    let token = rec.enter(site::CHASE, instance.len() as u64);
    let result = chase_governed(alg, sigma, instance, max_tuples, budget);
    match &result {
        Ok(out) => {
            rec.add(Counter::ChaseRounds, out.rounds as u64);
            rec.add(Counter::ChaseTuples, out.added as u64);
            rec.exit(token, out.added as u64);
        }
        Err(_) => rec.exit(token, 0),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;
    use nalist_types::parser::parse_attr;

    fn setup(attr: &str, deps: &[&str]) -> (Algebra, Vec<CompiledDep>) {
        let n = parse_attr(attr).unwrap();
        let alg = Algebra::new(&n);
        let sigma = deps
            .iter()
            .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
            .collect();
        (alg, sigma)
    }

    #[test]
    fn relational_chase_completes_the_cross_product() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) ->> L(B)"]);
        let r = Instance::from_strs(alg.attr().clone(), &["(a, b1, c1)", "(a, b2, c2)"]).unwrap();
        assert!(!r.satisfies(&alg, &sigma[0]));
        let out = chase(&alg, &sigma, &r, 100).unwrap();
        assert_eq!(out.instance.len(), 4); // full cross product
        assert_eq!(out.added, 2);
        assert!(out.instance.satisfies(&alg, &sigma[0]));
        // the original tuples survive
        for t in r.iter() {
            assert!(out.instance.contains(t));
        }
    }

    #[test]
    fn satisfied_instance_is_a_fixpoint() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) ->> L(B)"]);
        let r = Instance::from_strs(
            alg.attr().clone(),
            &["(a, b1, c1)", "(a, b1, c2)", "(a, b2, c1)", "(a, b2, c2)"],
        )
        .unwrap();
        let out = chase(&alg, &sigma, &r, 100).unwrap();
        assert_eq!(out.added, 0);
        assert_eq!(out.instance, r);
    }

    #[test]
    fn list_shape_conflict_is_unrepairable() {
        // λ ↠ L[λ] with lists of different lengths: the recombination
        // cannot exist — exactly the mixed-meet FD λ → L[λ] failing.
        let (alg, sigma) = setup("L[A]", &["λ ->> L[λ]"]);
        let r = Instance::from_strs(alg.attr().clone(), &["[]", "[a]"]).unwrap();
        match chase(&alg, &sigma, &r, 100) {
            Err(ChaseError::Unrepairable { index: 0, .. }) => {}
            other => panic!("expected Unrepairable, got {other:?}"),
        }
        // with matching shapes the chase succeeds
        let ok = Instance::from_strs(alg.attr().clone(), &["[a]", "[b]"]).unwrap();
        let out = chase(&alg, &sigma, &ok, 100).unwrap();
        assert!(out.instance.satisfies(&alg, &sigma[0]));
    }

    #[test]
    fn nested_chase_on_pubcrawl_fragment() {
        // two Sven tuples that satisfy the shape FD but not the MVD:
        // chasing adds the two missing beer/pub recombinations
        let (alg, sigma) = setup(
            "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
            &["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
        );
        let r = Instance::from_strs(
            alg.attr().clone(),
            &[
                "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])",
                "(Sven, [(Kindl, Deanos), (Lübzer, Highflyers)])",
            ],
        )
        .unwrap();
        // this fragment already satisfies the MVD (it is its own chase)
        let out = chase(&alg, &sigma, &r, 100).unwrap();
        assert_eq!(out.added, 0);
        // drop one tuple: now the MVD fails and the chase restores it
        let partial = Instance::from_strs(
            alg.attr().clone(),
            &[
                "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])",
                "(Sven, [(Kindl, Highflyers), (Lübzer, Deanos)])",
            ],
        )
        .unwrap();
        let out = chase(&alg, &sigma, &partial, 100).unwrap();
        assert!(out.instance.satisfies(&alg, &sigma[0]));
        assert_eq!(out.added, 2);
    }

    #[test]
    fn fd_violation_reported_not_repaired() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) ->> L(B)", "L(A) -> L(C)"]);
        let r = Instance::from_strs(alg.attr().clone(), &["(a, b1, c1)", "(a, b2, c2)"]).unwrap();
        assert_eq!(
            chase(&alg, &sigma, &r, 100).unwrap_err(),
            ChaseError::FdViolated { index: 1 }
        );
    }

    #[test]
    fn growth_bound_enforced() {
        let (alg, sigma) = setup("L(A, B, C, D)", &["L(A) ->> L(B)", "L(A) ->> L(C)"]);
        // 4 tuples whose chase needs the full 2×2×2 grid (8 tuples)
        let r = Instance::from_strs(alg.attr().clone(), &["(a, b1, c1, d1)", "(a, b2, c2, d2)"])
            .unwrap();
        assert_eq!(
            chase(&alg, &sigma, &r, 3).unwrap_err(),
            ChaseError::TooLarge { max_tuples: 3 }
        );
        let out = chase(&alg, &sigma, &r, 100).unwrap();
        assert!(out.instance.satisfies_all(&alg, &sigma));
        assert!(out.instance.len() >= 8, "{}", out.instance.len());
    }

    #[test]
    fn governed_chase_stops_at_fuel() {
        let (alg, sigma) = setup("L(A, B, C, D)", &["L(A) ->> L(B)", "L(A) ->> L(C)"]);
        let r = Instance::from_strs(alg.attr().clone(), &["(a, b1, c1, d1)", "(a, b2, c2, d2)"])
            .unwrap();
        let starved = Budget::unlimited().with_fuel(3);
        match chase_governed(&alg, &sigma, &r, 100, &starved) {
            Err(ChaseError::Resource(e)) => {
                assert_eq!(e.kind, nalist_guard::ResourceKind::Fuel);
            }
            other => panic!("expected Resource, got {other:?}"),
        }
        // With ample fuel the governed chase agrees with the ungoverned one.
        let roomy = Budget::unlimited().with_fuel(1_000_000);
        let out = chase_governed(&alg, &sigma, &r, 100, &roomy).unwrap();
        assert_eq!(out.instance, chase(&alg, &sigma, &r, 100).unwrap().instance);
    }

    #[test]
    fn governed_chase_failpoint() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) ->> L(B)"]);
        let r = Instance::from_strs(alg.attr().clone(), &["(a, b1, c1)"]).unwrap();
        let b = Budget::unlimited().with_failpoint(nalist_guard::FailPoint::every(
            "deps::chase",
            nalist_guard::FailAction::ExhaustFuel,
        ));
        assert!(matches!(
            chase_governed(&alg, &sigma, &r, 100, &b),
            Err(ChaseError::Resource(_))
        ));
    }

    #[test]
    fn observed_chase_matches_governed_and_counts_work() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) ->> L(B)"]);
        let r = Instance::from_strs(alg.attr().clone(), &["(a, b1, c1)", "(a, b2, c2)"]).unwrap();
        let budget = Budget::unlimited();
        let plain = chase_governed(&alg, &sigma, &r, 100, &budget).unwrap();
        let rec = nalist_obs::MetricsRecorder::new();
        let observed = chase_observed(&alg, &sigma, &r, 100, &budget, &rec).unwrap();
        assert_eq!(observed.instance, plain.instance);
        assert_eq!(observed.rounds, plain.rounds);
        let snap = rec.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(counter("chase_rounds"), plain.rounds as u64);
        assert_eq!(counter("chase_tuples"), plain.added as u64);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].site, nalist_obs::site::CHASE);
        assert_eq!(snap.spans[0].payload_out, plain.added as u64);
        // the disabled recorder takes the zero-cost path
        let quiet = chase_observed(&alg, &sigma, &r, 100, &budget, nalist_obs::noop()).unwrap();
        assert_eq!(quiet.instance, plain.instance);
    }

    #[test]
    fn chase_of_witness_instance_is_identity() {
        // witnesses from the completeness construction already satisfy Σ
        let (alg, sigma) = setup("L(A, M[B], C)", &["L(A) ->> L(M[B])"]);
        let x = alg
            .from_attr(&nalist_types::parser::parse_subattr_of(alg.attr(), "L(A)").unwrap())
            .unwrap();
        // NOTE: uses the deps-level machinery only; the witness itself is
        // exercised in the membership crate. Here: chase idempotence on a
        // manually built satisfying instance.
        let _ = x;
        let r =
            Instance::from_strs(alg.attr().clone(), &["(a, [m1], c1)", "(a, [m2], c1)"]).unwrap();
        let out = chase(&alg, &sigma, &r, 100).unwrap();
        assert_eq!(out.added, 0);
    }
}
