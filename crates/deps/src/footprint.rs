//! Precomputed dependency footprints for the change-driven closure
//! engine.
//!
//! Algorithm 5.1 evaluates, for every dependency `U → V` / `U ↠ V` and
//! every partition block `W`, the anchoring test
//! `∃a ∈ SubB(U): a ∉ X_new ∧ possessed_by(a, W)`. Possession of a
//! *maximal* atom degenerates to membership (`above(a) = {a}`), so with
//! the masks precomputed here the common case is a handful of
//! word-parallel bitset operations:
//!
//! * `lhs & W & !X_new == ∅` — no LHS atom of `U` is even a candidate
//!   (possession implies membership), so `W` cannot anchor;
//! * `lhs_max & W & !X_new ≠ ∅` — a maximal LHS atom anchors outright;
//! * otherwise only the (typically very few) non-maximal LHS atoms need
//!   their `above(a) ⊆ W` subset checks.
//!
//! The LHS mask doubles as the dependency's *dirty footprint*: a
//! dependency at fixpoint needs reprocessing only when an atom of its LHS
//! enters `X_new` or belongs to a block that changed (see
//! `nalist-membership`'s `closure` module for the invariant argument).

use nalist_algebra::{Algebra, AtomId, AtomSet};
use nalist_types::parser::DepKind;

use crate::dependency::CompiledDep;

/// A [`CompiledDep`] with its anchor masks precomputed against a fixed
/// [`Algebra`].
#[derive(Debug, Clone)]
pub struct PreparedDep {
    /// FD or MVD.
    pub kind: DepKind,
    /// `SubB(U)`.
    pub lhs: AtomSet,
    /// `SubB(V)`.
    pub rhs: AtomSet,
    /// `SubB(U) ∩ MaxB(N)` — LHS atoms whose possession test is pure
    /// membership.
    pub lhs_max: AtomSet,
    /// The non-maximal LHS atoms, each with its `above` mask (possession
    /// is `above(a) ⊆ W`).
    pub lhs_nonmax: Vec<(AtomId, AtomSet)>,
    /// `⋃{above(a) : a ∈ SubB(U)}` — if this is contained in a block,
    /// every LHS atom in the block is possessed by it.
    pub above_union: AtomSet,
}

impl PreparedDep {
    /// Is block `w` an anchor for this dependency, i.e. does it possess
    /// an LHS atom outside `x_new`?
    pub fn anchors(&self, x_new: &AtomSet, w: &AtomSet) -> bool {
        // possession implies membership: no LHS atom in W \ X_new, no anchor
        if !self.lhs.intersects_excluding(w, x_new) {
            return false;
        }
        // any maximal LHS atom in W \ X_new is possessed outright
        if self.lhs_max.intersects_excluding(w, x_new) {
            return true;
        }
        self.lhs_nonmax
            .iter()
            .any(|(a, above)| !x_new.contains(*a) && w.contains(*a) && above.is_subset(w))
    }
}

impl CompiledDep {
    /// Precomputes the anchor masks of this dependency for `alg`.
    pub fn prepare(&self, alg: &Algebra) -> PreparedDep {
        let lhs_max = alg.maximal_atoms_of(&self.lhs);
        let mut above_union = AtomSet::empty(alg.atom_count());
        let mut lhs_nonmax = Vec::new();
        for a in self.lhs.iter() {
            let info = alg.atom(a);
            above_union.union_with(&info.above);
            if !info.maximal {
                lhs_nonmax.push((a, info.above.clone()));
            }
        }
        PreparedDep {
            kind: self.kind,
            lhs: self.lhs.clone(),
            rhs: self.rhs.clone(),
            lhs_max,
            lhs_nonmax,
            above_union,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;
    use nalist_types::parser::{parse_attr, parse_subattr_of};

    fn prep(attr: &str, dep: &str) -> (Algebra, PreparedDep) {
        let n = parse_attr(attr).unwrap();
        let alg = Algebra::new(&n);
        let d = Dependency::parse(&n, dep)
            .unwrap()
            .compile(&alg)
            .unwrap()
            .prepare(&alg);
        (alg, d)
    }

    #[test]
    fn masks_partition_the_lhs() {
        let (alg, d) = prep("A'(B, C[D(E, F[G])])", "A'(B, C[λ]) ->> A'(C[D(E)])");
        // lhs atoms: 0=B (maximal), 1=C (list, non-maximal)
        assert_eq!(d.lhs_max, AtomSet::from_indices(5, [0]));
        assert_eq!(d.lhs_nonmax.len(), 1);
        assert_eq!(d.lhs_nonmax[0].0, 1);
        assert_eq!(d.lhs_nonmax[0].1, alg.atom(1).above);
        // above_union = above(B) ∪ above(C) = everything
        assert_eq!(d.above_union, alg.top_set());
    }

    #[test]
    fn anchors_matches_naive_definition() {
        let srcs = [
            ("A'(B, C[D(E, F[G])])", "A'(B, C[λ]) ->> A'(C[D(E)])"),
            ("K[L(M[N'(A, B)], C)]", "K[L(M[λ], λ)] -> K[L(λ, C)]"),
            ("L(A, B, C)", "L(A) -> L(B)"),
        ];
        for (attr, dep) in srcs {
            let (alg, d) = prep(attr, dep);
            let elements = nalist_algebra::lattice::enumerate_sets(&alg);
            for x in &elements {
                for w in &elements {
                    let naive = d
                        .lhs
                        .iter()
                        .any(|a| !x.contains(a) && alg.possessed_by(a, w));
                    assert_eq!(d.anchors(x, w), naive, "{dep} with X={x:?}, W={w:?}");
                }
            }
        }
    }

    #[test]
    fn prepare_preserves_sides() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let c = Dependency::parse(&n, "L(A) ->> L(B)")
            .unwrap()
            .compile(&alg)
            .unwrap();
        let p = c.prepare(&alg);
        assert_eq!(p.kind, c.kind);
        assert_eq!(p.lhs, c.lhs);
        assert_eq!(p.rhs, c.rhs);
        let x = alg
            .from_attr(&parse_subattr_of(&n, "L(A)").unwrap())
            .unwrap();
        assert!(!p.anchors(&x, &x)); // the only lhs atom is in X
    }
}
