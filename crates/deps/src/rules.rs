//! The inference rules of Theorem 4.6 — a sound and complete system for
//! the implication of FDs and MVDs in the presence of base, record and
//! finite list types.
//!
//! All rules except the *mixed meet rule* are the natural generalisations
//! of the relational system (Beeri/Fagin/Howard via Paredaens et al.),
//! with set operations replaced by the Brouwerian operations of `Sub(N)`:
//!
//! | rule | premises | conclusion | side condition |
//! |------|----------|------------|----------------|
//! | reflexivity axiom        | —                  | `X → Y`          | `Y ≤ X` |
//! | extension rule           | `X → Y`            | `X⊔Z → Y⊔Z`      | `Z ∈ Sub(N)` |
//! | transitivity rule        | `X → Y`, `Y → Z`   | `X → Z`          | |
//! | FD join rule             | `X → Y`, `X → Z`   | `X → Y⊔Z`        | |
//! | MVD reflexivity axiom    | —                  | `X ↠ Y`          | `Y ≤ X` |
//! | complementation rule     | `X ↠ Y`            | `X ↠ Y^C`        | |
//! | MVD augmentation rule    | `X ↠ Y`            | `X⊔U ↠ Y⊔V`      | `V ≤ U` |
//! | MVD transitivity rule    | `X ↠ Y`, `Y ↠ Z`   | `X ↠ Z ∸ Y`      | |
//! | implication rule         | `X → Y`            | `X ↠ Y`          | |
//! | coalescence rule         | `X ↠ Y`, `W → Z`   | `X → Z`          | `Z ≤ Y`, `W ≤ X ⊔ Y^C` |
//! | multi-valued join rule   | `X ↠ Y`, `X ↠ Z`   | `X ↠ Y⊔Z`        | |
//! | multi-valued meet rule   | `X ↠ Y`, `X ↠ Z`   | `X ↠ Y⊓Z`        | |
//! | pseudo-difference rule   | `X ↠ Y`, `X ↠ Z`   | `X ↠ Y∸Z`        | |
//! | **mixed meet rule**      | `X ↠ Y`            | `X → Y⊓Y^C`      | |
//!
//! The mixed meet rule is the paper's novelty: in a relational schema
//! `Y ⊓ Y^C = ∅` always, so the rule is vacuous there; with lists the
//! meet of `Y` with its Brouwerian complement keeps the non-maximal basis
//! attributes of `Y` that `Y` does not *possess* — deriving a non-trivial
//! FD from an MVD.
//!
//! Soundness of every rule is property-tested against random instances in
//! the integration suite; completeness is validated empirically by
//! comparing the naive closure under these rules with Algorithm 5.1.

use nalist_algebra::{Algebra, AtomSet};
use nalist_types::parser::DepKind;

use crate::dependency::CompiledDep;

/// Names of the 14 inference rules of Theorem 4.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// `Y ≤ X ⊢ X → Y`.
    FdReflexivity,
    /// `X → Y ⊢ X ⊔ Z → Y ⊔ Z`.
    FdExtension,
    /// `X → Y, Y → Z ⊢ X → Z`.
    FdTransitivity,
    /// `X → Y, X → Z ⊢ X → Y ⊔ Z`.
    FdJoin,
    /// `Y ≤ X ⊢ X ↠ Y`.
    MvdReflexivity,
    /// `X ↠ Y ⊢ X ↠ Y^C` (Brouwerian-complement rule).
    MvdComplementation,
    /// `X ↠ Y, V ≤ U ⊢ X ⊔ U ↠ Y ⊔ V`.
    MvdAugmentation,
    /// `X ↠ Y, Y ↠ Z ⊢ X ↠ Z ∸ Y`.
    MvdTransitivity,
    /// `X → Y ⊢ X ↠ Y` (implication rule).
    FdImpliesMvd,
    /// `X ↠ Y, W → Z, Z ≤ Y, W ≤ X ⊔ Y^C ⊢ X → Z`.
    ///
    /// This is the Brouwerian generalisation of the relational
    /// coalescence rule (`W ∩ Y = ∅` becomes `W ≤ X ⊔ Y^C`, which is
    /// strictly more permissive when `W` and `Y` share non-maximal basis
    /// attributes such as list shapes). Soundness: for `t1, t2` agreeing
    /// on `X`, the MVD supplies `t'` agreeing with `t1` on `X ⊔ Y` and
    /// with `t2` on `X ⊔ Y^C ⊇ W`; the FD then transfers `Z ≤ Y` from
    /// `t'` to `t2`, so `t1` and `t2` agree on `Z`.
    Coalescence,
    /// `X ↠ Y, X ↠ Z ⊢ X ↠ Y ⊔ Z`.
    MvdJoin,
    /// `X ↠ Y, X ↠ Z ⊢ X ↠ Y ⊓ Z`.
    MvdMeet,
    /// `X ↠ Y, X ↠ Z ⊢ X ↠ Y ∸ Z`.
    MvdPseudoDiff,
    /// `X ↠ Y ⊢ X → Y ⊓ Y^C` (the paper's novel mixed meet rule).
    MixedMeet,
}

/// All 14 rules, in documentation order.
pub const ALL_RULES: [Rule; 14] = [
    Rule::FdReflexivity,
    Rule::FdExtension,
    Rule::FdTransitivity,
    Rule::FdJoin,
    Rule::MvdReflexivity,
    Rule::MvdComplementation,
    Rule::MvdAugmentation,
    Rule::MvdTransitivity,
    Rule::FdImpliesMvd,
    Rule::Coalescence,
    Rule::MvdJoin,
    Rule::MvdMeet,
    Rule::MvdPseudoDiff,
    Rule::MixedMeet,
];

impl Rule {
    /// Paper-style rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::FdReflexivity => "reflexivity axiom",
            Rule::FdExtension => "extension rule",
            Rule::FdTransitivity => "transitivity rule",
            Rule::FdJoin => "FD join rule",
            Rule::MvdReflexivity => "MVD reflexivity axiom",
            Rule::MvdComplementation => "complementation rule",
            Rule::MvdAugmentation => "MVD augmentation rule",
            Rule::MvdTransitivity => "MVD transitivity rule",
            Rule::FdImpliesMvd => "implication rule",
            Rule::Coalescence => "coalescence rule",
            Rule::MvdJoin => "multi-valued join rule",
            Rule::MvdMeet => "multi-valued meet rule",
            Rule::MvdPseudoDiff => "pseudo-difference rule",
            Rule::MixedMeet => "mixed meet rule",
        }
    }

    /// Stable string id used in serialized certificates. These are part
    /// of the certificate format contract (version 1): never repurpose
    /// an id — retire it and mint a new one.
    pub fn id(self) -> &'static str {
        match self {
            Rule::FdReflexivity => "fd-reflexivity",
            Rule::FdExtension => "fd-extension",
            Rule::FdTransitivity => "fd-transitivity",
            Rule::FdJoin => "fd-join",
            Rule::MvdReflexivity => "mvd-reflexivity",
            Rule::MvdComplementation => "mvd-complementation",
            Rule::MvdAugmentation => "mvd-augmentation",
            Rule::MvdTransitivity => "mvd-transitivity",
            Rule::FdImpliesMvd => "fd-implies-mvd",
            Rule::Coalescence => "coalescence",
            Rule::MvdJoin => "mvd-join",
            Rule::MvdMeet => "mvd-meet",
            Rule::MvdPseudoDiff => "mvd-pseudo-difference",
            Rule::MixedMeet => "mixed-meet",
        }
    }

    /// Resolves a stable id back to the rule. Inverse of [`Rule::id`].
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == id)
    }

    /// One-line grounding in the paper (Hartmann & Link, ENTCS 91,
    /// 2004). Shown by `nalist lint --explain <rule>` and in
    /// certificate tooling.
    pub fn cite(self) -> &'static str {
        match self {
            Rule::FdReflexivity => {
                "Theorem 4.6 (reflexivity axiom): for Y ≤ X, derive X → Y with no premises."
            }
            Rule::FdExtension => {
                "Theorem 4.6 (extension rule): from X → Y derive X⊔Z → Y⊔Z for any Z."
            }
            Rule::FdTransitivity => {
                "Theorem 4.6 (transitivity rule): from X → Y and Y → Z derive X → Z."
            }
            Rule::FdJoin => {
                "Theorem 4.6 (FD join rule): from X → Y and X → Z derive X → Y⊔Z."
            }
            Rule::MvdReflexivity => {
                "Theorem 4.6 (MVD reflexivity axiom): for Y ≤ X, derive X ↠ Y with no premises."
            }
            Rule::MvdComplementation => {
                "Theorem 4.6 (complementation rule): from X ↠ Y derive X ↠ Y^C, the Brouwerian complement taken in Sub(N)."
            }
            Rule::MvdAugmentation => {
                "Theorem 4.6 (MVD augmentation rule): from X ↠ Y and V ≤ U derive X⊔U ↠ Y⊔V."
            }
            Rule::MvdTransitivity => {
                "Theorem 4.6 (MVD transitivity rule): from X ↠ Y and Y ↠ Z derive X ↠ Z⊖Y (pseudo-difference, not set difference)."
            }
            Rule::FdImpliesMvd => {
                "Theorem 4.6 (implication rule): every FD X → Y yields the MVD X ↠ Y."
            }
            Rule::Coalescence => {
                "Theorem 4.6 (coalescence rule): from X ↠ Y and Z → W with W ≤ Y and Y⊓Z = λ, derive X → W."
            }
            Rule::MvdJoin => {
                "Theorem 4.6 (multi-valued join rule): from X ↠ Y and X ↠ Z derive X ↠ Y⊔Z."
            }
            Rule::MvdMeet => {
                "Theorem 4.6 (multi-valued meet rule): from X ↠ Y and X ↠ Z derive X ↠ Y⊓Z."
            }
            Rule::MvdPseudoDiff => {
                "Theorem 4.6 (pseudo-difference rule): from X ↠ Y and X ↠ Z derive X ↠ Y⊖Z."
            }
            Rule::MixedMeet => {
                "Theorem 4.6 (mixed meet rule): from X ↠ Y derive the FD X → Y⊓Y^C — the paper's novel interaction, non-trivial only in the presence of lists."
            }
        }
    }

    /// Number of dependency premises the rule takes (axioms take 0).
    pub fn arity(self) -> usize {
        match self {
            Rule::FdReflexivity | Rule::MvdReflexivity => 0,
            Rule::FdExtension
            | Rule::MvdComplementation
            | Rule::MvdAugmentation
            | Rule::FdImpliesMvd
            | Rule::MixedMeet => 1,
            Rule::FdTransitivity
            | Rule::FdJoin
            | Rule::MvdTransitivity
            | Rule::Coalescence
            | Rule::MvdJoin
            | Rule::MvdMeet
            | Rule::MvdPseudoDiff => 2,
        }
    }
}

/// Applies a rule instance, returning the conclusion if the premises and
/// side parameters fit the rule schema.
///
/// `premises` supplies the dependency premises in documentation order;
/// `params` supplies the extra subattribute parameters:
///
/// * `FdReflexivity`/`MvdReflexivity`: `params = [X, Y]` with `Y ≤ X`;
/// * `FdExtension`: `params = [Z]`;
/// * `MvdAugmentation`: `params = [U, V]` with `V ≤ U`;
/// * all other rules: `params = []`.
pub fn apply(
    alg: &Algebra,
    rule: Rule,
    premises: &[&CompiledDep],
    params: &[&AtomSet],
) -> Option<CompiledDep> {
    match (rule, premises, params) {
        (Rule::FdReflexivity, [], [x, y]) if alg.le(y, x) => {
            Some(CompiledDep::fd((*x).clone(), (*y).clone()))
        }
        (Rule::MvdReflexivity, [], [x, y]) if alg.le(y, x) => {
            Some(CompiledDep::mvd((*x).clone(), (*y).clone()))
        }
        (Rule::FdExtension, [p], [z]) if p.kind == DepKind::Fd => {
            Some(CompiledDep::fd(alg.join(&p.lhs, z), alg.join(&p.rhs, z)))
        }
        (Rule::FdTransitivity, [p, q], [])
            if p.kind == DepKind::Fd && q.kind == DepKind::Fd && p.rhs == q.lhs =>
        {
            Some(CompiledDep::fd(p.lhs.clone(), q.rhs.clone()))
        }
        (Rule::FdJoin, [p, q], [])
            if p.kind == DepKind::Fd && q.kind == DepKind::Fd && p.lhs == q.lhs =>
        {
            Some(CompiledDep::fd(p.lhs.clone(), alg.join(&p.rhs, &q.rhs)))
        }
        (Rule::MvdComplementation, [p], []) if p.kind == DepKind::Mvd => {
            Some(CompiledDep::mvd(p.lhs.clone(), alg.compl(&p.rhs)))
        }
        (Rule::MvdAugmentation, [p], [u, v]) if p.kind == DepKind::Mvd && alg.le(v, u) => {
            Some(CompiledDep::mvd(alg.join(&p.lhs, u), alg.join(&p.rhs, v)))
        }
        (Rule::MvdTransitivity, [p, q], [])
            if p.kind == DepKind::Mvd && q.kind == DepKind::Mvd && p.rhs == q.lhs =>
        {
            Some(CompiledDep::mvd(p.lhs.clone(), alg.pdiff(&q.rhs, &p.rhs)))
        }
        (Rule::FdImpliesMvd, [p], []) if p.kind == DepKind::Fd => {
            Some(CompiledDep::mvd(p.lhs.clone(), p.rhs.clone()))
        }
        (Rule::Coalescence, [p, q], [])
            if p.kind == DepKind::Mvd
                && q.kind == DepKind::Fd
                && alg.le(&q.rhs, &p.rhs)
                && alg.le(&q.lhs, &alg.join(&p.lhs, &alg.compl(&p.rhs))) =>
        {
            Some(CompiledDep::fd(p.lhs.clone(), q.rhs.clone()))
        }
        (Rule::MvdJoin, [p, q], [])
            if p.kind == DepKind::Mvd && q.kind == DepKind::Mvd && p.lhs == q.lhs =>
        {
            Some(CompiledDep::mvd(p.lhs.clone(), alg.join(&p.rhs, &q.rhs)))
        }
        (Rule::MvdMeet, [p, q], [])
            if p.kind == DepKind::Mvd && q.kind == DepKind::Mvd && p.lhs == q.lhs =>
        {
            Some(CompiledDep::mvd(p.lhs.clone(), alg.meet(&p.rhs, &q.rhs)))
        }
        (Rule::MvdPseudoDiff, [p, q], [])
            if p.kind == DepKind::Mvd && q.kind == DepKind::Mvd && p.lhs == q.lhs =>
        {
            Some(CompiledDep::mvd(p.lhs.clone(), alg.pdiff(&p.rhs, &q.rhs)))
        }
        (Rule::MixedMeet, [p], []) if p.kind == DepKind::Mvd => Some(CompiledDep::fd(
            p.lhs.clone(),
            alg.meet(&p.rhs, &alg.compl(&p.rhs)),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;
    use nalist_types::parser::parse_attr;

    fn setup() -> (nalist_types::NestedAttr, Algebra) {
        let n = parse_attr("L[A]").unwrap();
        let alg = Algebra::new(&n);
        (n, alg)
    }

    fn dep(n: &nalist_types::NestedAttr, alg: &Algebra, s: &str) -> CompiledDep {
        Dependency::parse(n, s).unwrap().compile(alg).unwrap()
    }

    #[test]
    fn rule_ids_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for rule in ALL_RULES {
            assert!(seen.insert(rule.id()), "duplicate id {}", rule.id());
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
            assert!(rule.cite().contains("Theorem 4.6"), "{}", rule.id());
        }
        assert_eq!(Rule::from_id("no-such-rule"), None);
    }

    #[test]
    fn mixed_meet_derives_nontrivial_fd() {
        // On N = L[A]: from λ ↠ L[λ] derive λ → L[λ] ⊓ L[λ]^C = λ → L[λ],
        // a non-trivial FD — impossible in the RDM.
        let (n, alg) = setup();
        let premise = dep(&n, &alg, "λ ->> L[λ]");
        let got = apply(&alg, Rule::MixedMeet, &[&premise], &[]).unwrap();
        assert_eq!(got.render(&alg), "λ -> L[λ]");
        assert!(!got.is_trivial(&alg));
    }

    #[test]
    fn complementation_is_brouwerian() {
        // (L[λ])^C = L[A], not "the rest": complement may overlap.
        let (n, alg) = setup();
        let premise = dep(&n, &alg, "λ ->> L[λ]");
        let got = apply(&alg, Rule::MvdComplementation, &[&premise], &[]).unwrap();
        assert_eq!(got.render(&alg), "λ ->> L[A]");
    }

    #[test]
    fn reflexivity_requires_side_condition() {
        let (n, alg) = setup();
        let x = alg
            .from_attr(&nalist_types::parser::parse_subattr_of(&n, "L[λ]").unwrap())
            .unwrap();
        let top = alg.top_set();
        assert!(apply(&alg, Rule::FdReflexivity, &[], &[&top, &x]).is_some());
        assert!(apply(&alg, Rule::FdReflexivity, &[], &[&x, &top]).is_none());
    }

    #[test]
    fn transitivity_needs_matching_middle() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let p = dep(&n, &alg, "L(A) -> L(B)");
        let q = dep(&n, &alg, "L(B) -> L(C)");
        let r = apply(&alg, Rule::FdTransitivity, &[&p, &q], &[]).unwrap();
        assert_eq!(r.render(&alg), "L(A) -> L(C)");
        assert!(apply(&alg, Rule::FdTransitivity, &[&q, &p], &[]).is_none());
        // kind mismatch rejected
        let m = dep(&n, &alg, "L(B) ->> L(C)");
        assert!(apply(&alg, Rule::FdTransitivity, &[&p, &m], &[]).is_none());
    }

    #[test]
    fn coalescence_side_conditions() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let p = dep(&n, &alg, "L(A) ->> L(B)");
        let q = dep(&n, &alg, "L(C) -> L(B)");
        // W = L(C) ≤ X ⊔ Y^C = L(A, C), Z = L(B) ≤ Y ⇒ L(A) → L(B)
        let r = apply(&alg, Rule::Coalescence, &[&p, &q], &[]).unwrap();
        assert_eq!(r.render(&alg), "L(A) -> L(B)");
        // W = L(B) ≰ X ⊔ Y^C: rejected
        let q2 = dep(&n, &alg, "L(B) -> L(B)");
        assert!(apply(&alg, Rule::Coalescence, &[&p, &q2], &[]).is_none());
        // violated Z ≤ Y
        let q3 = dep(&n, &alg, "L(C) -> L(C)");
        assert!(apply(&alg, Rule::Coalescence, &[&p, &q3], &[]).is_none());
    }

    #[test]
    fn augmentation_and_extension() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let fd = dep(&n, &alg, "L(A) -> L(B)");
        let z = alg
            .from_attr(&nalist_types::parser::parse_subattr_of(&n, "L(C)").unwrap())
            .unwrap();
        let got = apply(&alg, Rule::FdExtension, &[&fd], &[&z]).unwrap();
        assert_eq!(got.render(&alg), "L(A, C) -> L(B, C)");
        let mvd = dep(&n, &alg, "L(A) ->> L(B)");
        let u = z.clone();
        let v = alg.bottom_set();
        let got2 = apply(&alg, Rule::MvdAugmentation, &[&mvd], &[&u, &v]).unwrap();
        assert_eq!(got2.render(&alg), "L(A, C) ->> L(B)");
        // V ≰ U rejected
        assert!(apply(&alg, Rule::MvdAugmentation, &[&mvd], &[&v, &u]).is_none());
    }

    #[test]
    fn mvd_lattice_rules() {
        let n = parse_attr("L(A, B, C, D)").unwrap();
        let alg = Algebra::new(&n);
        let p = dep(&n, &alg, "L(A) ->> L(B, C)");
        let q = dep(&n, &alg, "L(A) ->> L(C, D)");
        assert_eq!(
            apply(&alg, Rule::MvdJoin, &[&p, &q], &[])
                .unwrap()
                .render(&alg),
            "L(A) ->> L(B, C, D)"
        );
        assert_eq!(
            apply(&alg, Rule::MvdMeet, &[&p, &q], &[])
                .unwrap()
                .render(&alg),
            "L(A) ->> L(C)"
        );
        assert_eq!(
            apply(&alg, Rule::MvdPseudoDiff, &[&p, &q], &[])
                .unwrap()
                .render(&alg),
            "L(A) ->> L(B)"
        );
    }

    #[test]
    fn mvd_transitivity() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let p = dep(&n, &alg, "L(A) ->> L(B)");
        let q = dep(&n, &alg, "L(B) ->> L(C)");
        let got = apply(&alg, Rule::MvdTransitivity, &[&p, &q], &[]).unwrap();
        assert_eq!(got.render(&alg), "L(A) ->> L(C)");
    }

    #[test]
    fn all_rules_metadata() {
        assert_eq!(ALL_RULES.len(), 14);
        for r in ALL_RULES {
            assert!(!r.name().is_empty());
            assert!(r.arity() <= 2);
        }
        // two axioms, five unary, seven binary
        assert_eq!(ALL_RULES.iter().filter(|r| r.arity() == 0).count(), 2);
        assert_eq!(ALL_RULES.iter().filter(|r| r.arity() == 1).count(), 5);
        assert_eq!(ALL_RULES.iter().filter(|r| r.arity() == 2).count(), 7);
    }
}
