//! The generalised join `r1 ⋈ r2` (Section 4) and Fagin's lossless-join
//! characterisation of MVDs (Theorem 4.4): `r` satisfies `X ↠ Y` iff
//! `r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)`.

use nalist_algebra::{Algebra, AtomSet};
use nalist_types::attr::NestedAttr;
use nalist_types::error::TypeError;
use nalist_types::value::Value;

use crate::instance::Instance;

/// Merges a value `v1 ∈ dom(X)` with `v2 ∈ dom(Y)` into the unique
/// `t ∈ dom(X ⊔ Y)` with `π_X(t) = v1` and `π_Y(t) = v2`, or `None` if the
/// two disagree on the common part `X ⊓ Y` (including list lengths).
pub fn merge_values(x: &NestedAttr, y: &NestedAttr, v1: &Value, v2: &Value) -> Option<Value> {
    match (x, y, v1, v2) {
        // a bottomed side contributes nothing
        (NestedAttr::Null, _, Value::Ok, _) => Some(v2.clone()),
        (_, NestedAttr::Null, _, Value::Ok) => Some(v1.clone()),
        (NestedAttr::Flat(a), NestedAttr::Flat(b), _, _) if a == b => {
            if v1 == v2 {
                Some(v1.clone())
            } else {
                None
            }
        }
        (
            NestedAttr::Record(l, xs),
            NestedAttr::Record(k, ys),
            Value::Tuple(t1),
            Value::Tuple(t2),
        ) if l == k && xs.len() == ys.len() && t1.len() == xs.len() && t2.len() == ys.len() => {
            let mut out = Vec::with_capacity(xs.len());
            for ((xc, yc), (a, b)) in xs.iter().zip(ys).zip(t1.iter().zip(t2)) {
                out.push(merge_values(xc, yc, a, b)?);
            }
            Some(Value::Tuple(out))
        }
        (NestedAttr::List(l, xi), NestedAttr::List(k, yi), Value::List(l1), Value::List(l2))
            if l == k =>
        {
            // both sides see the list: lengths are common information
            if l1.len() != l2.len() {
                return None;
            }
            let mut out = Vec::with_capacity(l1.len());
            for (a, b) in l1.iter().zip(l2) {
                out.push(merge_values(xi, yi, a, b)?);
            }
            Some(Value::List(out))
        }
        _ => None,
    }
}

/// The generalised join `r1 ⋈ r2` of `r1 ⊆ dom(X)` and `r2 ⊆ dom(Y)`:
/// all `t ∈ dom(X ⊔ Y)` with `π_X(t) ∈ r1` and `π_Y(t) ∈ r2`
/// (Section 4 of the paper).
///
/// Fails if the two instances do not live in a common `Sub(N)`.
pub fn generalized_join(r1: &Instance, r2: &Instance) -> Result<Instance, TypeError> {
    let x = r1.attr();
    let y = r2.attr();
    let xy = nalist_algebra::treealg::tree_join(x, y)?;
    let mut out = Instance::new(xy);
    for t1 in r1.iter() {
        for t2 in r2.iter() {
            if let Some(t) = merge_values(x, y, t1, t2) {
                out.insert(t)?;
            }
        }
    }
    Ok(out)
}

/// Theorem 4.4: does `r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)` hold?
///
/// **Erratum note** (see EXPERIMENTS.md): satisfaction of `X ↠ Y` always
/// implies losslessness, but the converse stated by Theorem 4.4 fails in
/// corner cases where `r` violates the FD `X → Y ⊓ Y^C`: on `N = L[A]`
/// with `r = {[], [a]}`, `X = λ`, `Y = L[λ]` the complement `Y^C` is all
/// of `N`, the decomposition is trivially lossless, yet the MVD is
/// violated (no tuple can combine the shape of `[]` with the content of
/// `[a]`). The corrected equivalence — property-tested in the
/// integration suite — is
///
/// `r ⊨ X ↠ Y  ⟺  r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)  and  r ⊨ X → Y ⊓ Y^C`,
///
/// because two projected tuples merge in the generalised join exactly
/// when they agree on `(X⊔Y) ⊓ (X⊔Y^C) = X ⊔ (Y ⊓ Y^C)`.
pub fn lossless_decomposition(
    alg: &Algebra,
    r: &Instance,
    x: &AtomSet,
    y: &AtomSet,
) -> Result<bool, TypeError> {
    let left = alg.to_attr(&alg.join(x, y));
    let right = alg.to_attr(&alg.join(x, &alg.compl(y)));
    let p1 = r.project(&left)?;
    let p2 = r.project(&right)?;
    let joined = generalized_join(&p1, &p2)?;
    Ok(joined == *r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;
    use nalist_types::parser::{parse_attr, parse_subattr_of};

    fn pubcrawl() -> (NestedAttr, Algebra, Instance) {
        let n = parse_attr("Pubcrawl(Person, Visit[Drink(Beer, Pub)])").unwrap();
        let alg = Algebra::new(&n);
        let r = Instance::from_strs(
            n.clone(),
            &[
                "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])",
                "(Sven, [(Kindl, Deanos), (Lübzer, Highflyers)])",
                "(Klaus-Dieter, [(Guiness, Irish Pub), (Speights, 3Bar), (Guiness, Irish Pub)])",
                "(Klaus-Dieter, [(Kölsch, Irish Pub), (Bönnsch, 3Bar), (Guiness, Irish Pub)])",
                "(Klaus-Dieter, [(Guiness, Highflyers), (Speights, Deanos), (Guiness, 3Bar)])",
                "(Klaus-Dieter, [(Kölsch, Highflyers), (Bönnsch, Deanos), (Guiness, 3Bar)])",
                "(Sebastian, [])",
            ],
        )
        .unwrap();
        (n, alg, r)
    }

    #[test]
    fn example_45_decomposition_is_lossless() {
        // Person ↠ Visit[Drink(Pub)] holds, so projecting to
        // (Person, Visit[Drink(Beer)]) and (Person, Visit[Drink(Pub)])
        // reconstructs r.
        let (n, alg, r) = pubcrawl();
        let d = Dependency::parse(&n, "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
            .unwrap()
            .compile(&alg)
            .unwrap();
        assert!(r.satisfies(&alg, &d));
        assert!(lossless_decomposition(&alg, &r, &d.lhs, &d.rhs).unwrap());
        // the paper's projections have 5 and 4 distinct tuples respectively
        let beer_side = parse_subattr_of(&n, "Pubcrawl(Person, Visit[Drink(Beer)])").unwrap();
        let pub_side = parse_subattr_of(&n, "Pubcrawl(Person, Visit[Drink(Pub)])").unwrap();
        assert_eq!(r.project(&beer_side).unwrap().len(), 5);
        assert_eq!(r.project(&pub_side).unwrap().len(), 4);
    }

    #[test]
    fn violated_mvd_gives_lossy_decomposition() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let r = Instance::from_strs(n.clone(), &["(a, b1, c1)", "(a, b2, c2)"]).unwrap();
        let d = Dependency::parse(&n, "L(A) ->> L(B)")
            .unwrap()
            .compile(&alg)
            .unwrap();
        assert!(!r.satisfies(&alg, &d));
        assert!(!lossless_decomposition(&alg, &r, &d.lhs, &d.rhs).unwrap());
    }

    #[test]
    fn fd_satisfaction_implies_lossless_but_not_conversely() {
        // The paper's remark after Theorem 4.4: r = {(a,b1),(a,b2)} does not
        // satisfy L(A) → L(B) yet decomposes losslessly.
        let n = parse_attr("L(A, B)").unwrap();
        let alg = Algebra::new(&n);
        let r = Instance::from_strs(n.clone(), &["(a, b1)", "(a, b2)"]).unwrap();
        let d = Dependency::parse(&n, "L(A) -> L(B)")
            .unwrap()
            .compile(&alg)
            .unwrap();
        assert!(!r.satisfies(&alg, &d));
        assert!(lossless_decomposition(&alg, &r, &d.lhs, &d.rhs).unwrap());
    }

    #[test]
    fn merge_respects_list_lengths() {
        let x = parse_attr("L[M(A, λ)]").unwrap();
        let y = parse_attr("L[M(λ, B)]").unwrap();
        let v1 = nalist_types::parser::parse_value("[(a1, ok), (a2, ok)]").unwrap();
        let v2 = nalist_types::parser::parse_value("[(ok, b1), (ok, b2)]").unwrap();
        let merged = merge_values(&x, &y, &v1, &v2).unwrap();
        assert_eq!(merged.to_string(), "[(a1, b1), (a2, b2)]");
        // length mismatch: no merge
        let v3 = nalist_types::parser::parse_value("[(ok, b1)]").unwrap();
        assert!(merge_values(&x, &y, &v1, &v3).is_none());
    }

    #[test]
    fn merge_disagreement_on_common_part() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let x = parse_subattr_of(&n, "L(A, B, λ)").unwrap();
        let y = parse_subattr_of(&n, "L(λ, B, C)").unwrap();
        let v1 = nalist_types::parser::parse_value("(a, b, ok)").unwrap();
        let v2 = nalist_types::parser::parse_value("(ok, b, c)").unwrap();
        assert_eq!(
            merge_values(&x, &y, &v1, &v2).unwrap().to_string(),
            "(a, b, c)"
        );
        let v2bad = nalist_types::parser::parse_value("(ok, b', c)").unwrap();
        assert!(merge_values(&x, &y, &v1, &v2bad).is_none());
    }

    #[test]
    fn join_of_incompatible_instances_fails() {
        let r1 = Instance::new(parse_attr("L(A, λ)").unwrap());
        let r2 = Instance::new(parse_attr("M(B)").unwrap());
        assert!(generalized_join(&r1, &r2).is_err());
    }

    #[test]
    fn empty_join() {
        let n = parse_attr("L(A, B)").unwrap();
        let x = parse_subattr_of(&n, "L(A, λ)").unwrap();
        let y = parse_subattr_of(&n, "L(λ, B)").unwrap();
        let mut r1 = Instance::new(x);
        let r2 = Instance::new(y);
        assert!(generalized_join(&r1, &r2).unwrap().is_empty());
        r1.insert_str("(a, ok)").unwrap();
        assert!(generalized_join(&r1, &r2).unwrap().is_empty());
    }
}
