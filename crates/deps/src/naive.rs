//! The naive *enumeration* procedure the paper dismisses as "time
//! consuming and therefore impractical" (Section 5): compute the full
//! closure `Σ⁺` by exhaustively applying the 14 inference rules over all
//! of `Sub(N)` until fixpoint.
//!
//! This serves three purposes:
//!
//! * it is the **baseline** Algorithm 5.1 is compared against (its running
//!   time is exponential in `|N|`, the membership algorithm's polynomial);
//! * it provides an *independent* ground truth for cross-validating the
//!   membership algorithm on small inputs (Theorem 6.3); and
//! * because every derivation is recorded with provenance, it doubles as a
//!   breadth-first **proof search**: [`NaiveClosure::proof_of`] returns a
//!   checkable [`Proof`] for any derivable dependency.
//!
//! The saturation is semi-naive (worklist-driven): each newly derived
//! dependency is combined once with everything derived before it.

use std::collections::HashMap;
use std::collections::VecDeque;

use nalist_algebra::{Algebra, AtomSet};
use nalist_types::parser::DepKind;

use crate::dependency::CompiledDep;
use crate::proof::Proof;
use crate::rules::{apply, Rule};

/// Configuration limits guarding against blow-up (the whole point of this
/// engine is that it blows up — the limits keep tests and benches honest),
/// plus an optional restriction of the rule set.
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// Refuse to run if `|SubB(N)|` exceeds this (default 16).
    pub max_atoms: usize,
    /// Abort once this many dependencies have been derived (default 2^20).
    pub max_derived: usize,
    /// The rules the saturation may use (default: all 14 of Theorem 4.6).
    ///
    /// Restricting the set implements the study of *sub-calculi* the
    /// paper's conclusion raises — in particular derivability **without
    /// the Brouwerian-complement rule**, "of particular interest" per
    /// Section 7 (cf. Biskup's relational result, his reference \[14\]).
    pub rules: Vec<Rule>,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            max_atoms: 16,
            max_derived: 1 << 20,
            rules: crate::rules::ALL_RULES.to_vec(),
        }
    }
}

impl NaiveConfig {
    /// The full calculus minus the complementation rule (Section 7's
    /// "derivations not using the Brouwerian-complement rule").
    pub fn without_complementation() -> Self {
        let rules = crate::rules::ALL_RULES
            .iter()
            .copied()
            .filter(|r| *r != Rule::MvdComplementation)
            .collect();
        NaiveConfig {
            rules,
            ..NaiveConfig::default()
        }
    }

    fn allows(&self, rule: Rule) -> bool {
        self.rules.contains(&rule)
    }
}

/// Why the naive engine refused or aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveError {
    /// `|SubB(N)|` exceeds the configured bound.
    TooManyAtoms {
        /// Actual atom count.
        atoms: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The derived set exceeded the configured bound.
    TooManyDependencies {
        /// Configured maximum.
        max: usize,
    },
}

impl std::fmt::Display for NaiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaiveError::TooManyAtoms { atoms, max } => {
                write!(f, "naive closure refused: |SubB(N)| = {atoms} > {max}")
            }
            NaiveError::TooManyDependencies { max } => {
                write!(f, "naive closure aborted after deriving {max} dependencies")
            }
        }
    }
}

impl std::error::Error for NaiveError {}

#[derive(Debug, Clone)]
enum Provenance {
    Premise(usize),
    Axiom {
        rule: Rule,
        params: Vec<AtomSet>,
    },
    Step {
        rule: Rule,
        inputs: Vec<CompiledDep>,
        params: Vec<AtomSet>,
    },
}

/// Statistics of a saturation run (reported by the experiment harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveStats {
    /// Dependencies in `Σ⁺` (including axiom instances).
    pub derived: usize,
    /// Total rule applications attempted.
    pub applications: usize,
    /// Elements of `Sub(N)` enumerated.
    pub lattice_size: usize,
}

/// The saturated closure `Σ⁺` with provenance.
#[derive(Debug)]
pub struct NaiveClosure<'a> {
    alg: &'a Algebra,
    sigma: Vec<CompiledDep>,
    derived: HashMap<CompiledDep, Provenance>,
    stats: NaiveStats,
}

impl<'a> NaiveClosure<'a> {
    /// Saturates `Σ` under the 14 rules of Theorem 4.6.
    pub fn compute(
        alg: &'a Algebra,
        sigma: &[CompiledDep],
        config: NaiveConfig,
    ) -> Result<Self, NaiveError> {
        if alg.atom_count() > config.max_atoms {
            return Err(NaiveError::TooManyAtoms {
                atoms: alg.atom_count(),
                max: config.max_atoms,
            });
        }
        let elements = nalist_algebra::lattice::enumerate_sets(alg);
        let mut this = NaiveClosure {
            alg,
            sigma: sigma.to_vec(),
            derived: HashMap::new(),
            stats: NaiveStats {
                lattice_size: elements.len(),
                ..NaiveStats::default()
            },
        };
        let mut queue: VecDeque<CompiledDep> = VecDeque::new();

        // seed: premises
        for (i, d) in sigma.iter().enumerate() {
            this.enqueue(d.clone(), Provenance::Premise(i), &mut queue);
        }
        // seed: all reflexivity-axiom instances (Y ≤ X)
        for x in &elements {
            for y in &elements {
                if alg.le(y, x) {
                    if config.allows(Rule::FdReflexivity) {
                        this.enqueue(
                            CompiledDep::fd(x.clone(), y.clone()),
                            Provenance::Axiom {
                                rule: Rule::FdReflexivity,
                                params: vec![x.clone(), y.clone()],
                            },
                            &mut queue,
                        );
                    }
                    if config.allows(Rule::MvdReflexivity) {
                        this.enqueue(
                            CompiledDep::mvd(x.clone(), y.clone()),
                            Provenance::Axiom {
                                rule: Rule::MvdReflexivity,
                                params: vec![x.clone(), y.clone()],
                            },
                            &mut queue,
                        );
                    }
                }
            }
        }

        // precompute (U, V ≤ U) parameter pairs for augmentation
        let mut aug_pairs: Vec<(AtomSet, AtomSet)> = Vec::new();
        for u in &elements {
            for v in &elements {
                if alg.le(v, u) {
                    aug_pairs.push((u.clone(), v.clone()));
                }
            }
        }

        while let Some(d) = queue.pop_front() {
            if this.derived.len() > config.max_derived {
                return Err(NaiveError::TooManyDependencies {
                    max: config.max_derived,
                });
            }
            // unary rules
            for rule in [
                Rule::MvdComplementation,
                Rule::FdImpliesMvd,
                Rule::MixedMeet,
            ] {
                if config.allows(rule) {
                    this.try_apply(rule, &[&d], &[], &mut queue);
                }
            }
            // parameterised unary rules
            if d.kind == DepKind::Fd {
                if config.allows(Rule::FdExtension) {
                    for z in &elements {
                        this.try_apply(Rule::FdExtension, &[&d], &[z], &mut queue);
                    }
                }
            } else if config.allows(Rule::MvdAugmentation) {
                for (u, v) in &aug_pairs {
                    this.try_apply(Rule::MvdAugmentation, &[&d], &[u, v], &mut queue);
                }
            }
            // binary rules: pair the new dependency with everything so far
            let existing: Vec<CompiledDep> = this.derived.keys().cloned().collect();
            for e in &existing {
                for rule in [
                    Rule::FdTransitivity,
                    Rule::FdJoin,
                    Rule::MvdTransitivity,
                    Rule::Coalescence,
                    Rule::MvdJoin,
                    Rule::MvdMeet,
                    Rule::MvdPseudoDiff,
                ] {
                    if config.allows(rule) {
                        this.try_apply(rule, &[&d, e], &[], &mut queue);
                        this.try_apply(rule, &[e, &d], &[], &mut queue);
                    }
                }
            }
        }
        this.stats.derived = this.derived.len();
        Ok(this)
    }

    fn enqueue(&mut self, dep: CompiledDep, prov: Provenance, queue: &mut VecDeque<CompiledDep>) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.derived.entry(dep.clone()) {
            e.insert(prov);
            queue.push_back(dep);
        }
    }

    fn try_apply(
        &mut self,
        rule: Rule,
        premises: &[&CompiledDep],
        params: &[&AtomSet],
        queue: &mut VecDeque<CompiledDep>,
    ) {
        self.stats.applications += 1;
        if let Some(conclusion) = apply(self.alg, rule, premises, params) {
            if !self.derived.contains_key(&conclusion) {
                let prov = Provenance::Step {
                    rule,
                    inputs: premises.iter().map(|p| (*p).clone()).collect(),
                    params: params.iter().map(|p| (*p).clone()).collect(),
                };
                self.enqueue(conclusion, prov, queue);
            }
        }
    }

    /// Is `dep` in `Σ⁺`?
    pub fn derives(&self, dep: &CompiledDep) -> bool {
        self.derived.contains_key(dep)
    }

    /// The attribute-set closure `X⁺ = ⊔{Y | X → Y ∈ Σ⁺}`.
    pub fn fd_closure_of(&self, x: &AtomSet) -> AtomSet {
        let mut out = self.alg.bottom_set();
        for d in self.derived.keys() {
            if d.kind == DepKind::Fd && d.lhs == *x {
                out.union_with(&d.rhs);
            }
        }
        out
    }

    /// `Dep(X) = {Y | X ↠ Y ∈ Σ⁺}` (Definition 4.9).
    pub fn dep_set_of(&self, x: &AtomSet) -> Vec<AtomSet> {
        let mut out: Vec<AtomSet> = self
            .derived
            .keys()
            .filter(|d| d.kind == DepKind::Mvd && d.lhs == *x)
            .map(|d| d.rhs.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// All derived dependencies (deterministic order).
    pub fn all(&self) -> Vec<CompiledDep> {
        let mut v: Vec<CompiledDep> = self.derived.keys().cloned().collect();
        v.sort();
        v
    }

    /// Saturation statistics.
    pub fn stats(&self) -> NaiveStats {
        self.stats
    }

    /// Reconstructs a checkable proof of `dep` from the recorded
    /// provenance, or `None` if `dep ∉ Σ⁺`.
    pub fn proof_of(&self, dep: &CompiledDep) -> Option<Proof> {
        let prov = self.derived.get(dep)?;
        Some(match prov {
            Provenance::Premise(i) => Proof::Premise {
                index: *i,
                dep: dep.clone(),
            },
            Provenance::Axiom { rule, params } => Proof::Step {
                rule: *rule,
                inputs: vec![],
                params: params.clone(),
                conclusion: dep.clone(),
            },
            Provenance::Step {
                rule,
                inputs,
                params,
            } => Proof::Step {
                rule: *rule,
                inputs: inputs
                    .iter()
                    .map(|i| {
                        self.proof_of(i)
                            .expect("provenance inputs were derived first")
                    })
                    .collect(),
                params: params.clone(),
                conclusion: dep.clone(),
            },
        })
    }

    /// Premises used by [`Proof::Premise`] citations (`Σ` as supplied).
    pub fn sigma(&self) -> &[CompiledDep] {
        &self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;
    use crate::proof::check;
    use nalist_types::parser::parse_attr;

    fn dep(n: &nalist_types::NestedAttr, alg: &Algebra, s: &str) -> CompiledDep {
        Dependency::parse(n, s).unwrap().compile(alg).unwrap()
    }

    #[test]
    fn relational_transitivity_closure() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let cl = NaiveClosure::compute(&alg, &sigma, NaiveConfig::default()).unwrap();
        assert!(cl.derives(&dep(&n, &alg, "L(A) -> L(C)")));
        assert!(cl.derives(&dep(&n, &alg, "L(A) -> L(A, B, C)")));
        assert!(!cl.derives(&dep(&n, &alg, "L(C) -> L(A)")));
        // closure of L(A) is everything
        let x = dep(&n, &alg, "L(A) -> L(A)").lhs;
        assert_eq!(cl.fd_closure_of(&x), alg.top_set());
    }

    #[test]
    fn mixed_meet_consequence_derived() {
        // On N = L[A]: λ ↠ L[λ] yields the non-trivial FD λ → L[λ].
        let n = parse_attr("L[A]").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "λ ->> L[λ]")];
        let cl = NaiveClosure::compute(&alg, &sigma, NaiveConfig::default()).unwrap();
        assert!(cl.derives(&dep(&n, &alg, "λ -> L[λ]")));
    }

    #[test]
    fn proofs_reconstruct_and_check() {
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let cl = NaiveClosure::compute(&alg, &sigma, NaiveConfig::default()).unwrap();
        let target = dep(&n, &alg, "L(A) ->> L(C)");
        let proof = cl.proof_of(&target).unwrap();
        assert_eq!(check(&alg, &sigma, &proof).unwrap(), &target);
        assert!(proof.step_count() >= 1);
        // underivable has no proof
        assert!(cl.proof_of(&dep(&n, &alg, "L(C) -> L(B)")).is_none());
    }

    #[test]
    fn refuses_large_inputs() {
        let n = parse_attr(
            "L(A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16, A17)",
        )
        .unwrap();
        let alg = Algebra::new(&n);
        assert_eq!(
            NaiveClosure::compute(&alg, &[], NaiveConfig::default()).unwrap_err(),
            NaiveError::TooManyAtoms { atoms: 17, max: 16 }
        );
    }

    #[test]
    fn empty_sigma_contains_only_trivia() {
        let n = parse_attr("L(A, B)").unwrap();
        let alg = Algebra::new(&n);
        let cl = NaiveClosure::compute(&alg, &[], NaiveConfig::default()).unwrap();
        // trivial: reflexive FDs/MVDs and their consequences (complementation
        // makes X ↠ Y with X ⊔ Y = N derivable too)
        assert!(cl.derives(&dep(&n, &alg, "L(A) -> λ")));
        assert!(cl.derives(&dep(&n, &alg, "L(A) ->> L(B)"))); // X ⊔ Y = N
        assert!(!cl.derives(&dep(&n, &alg, "L(A) -> L(B)")));
        let stats = cl.stats();
        assert_eq!(stats.lattice_size, 4);
        assert!(stats.derived >= 8);
        assert!(stats.applications > 0);
    }

    #[test]
    fn complementation_free_subcalculus() {
        // Section 7: "Derivations not using the Brouwerian-complement rule
        // are of particular interest." With Σ = {A ↠ B} on L(A, B, C, D),
        // A ↠ C⊔D needs complementation; A ↠ B does not.
        let n = parse_attr("L(A, B, C, D)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) ->> L(B)")];
        let full = NaiveClosure::compute(&alg, &sigma, NaiveConfig::default()).unwrap();
        let nc =
            NaiveClosure::compute(&alg, &sigma, NaiveConfig::without_complementation()).unwrap();
        let complemented = dep(&n, &alg, "L(A) ->> L(C, D)");
        let direct = dep(&n, &alg, "L(A) ->> L(B)");
        assert!(full.derives(&complemented));
        assert!(full.derives(&direct));
        assert!(nc.derives(&direct));
        assert!(
            !nc.derives(&complemented),
            "A ↠ C⊔D should require the complementation rule"
        );
        // the sub-calculus closure is a subset of the full closure
        for d in nc.all() {
            assert!(
                full.derives(&d),
                "{} in sub-calculus but not full",
                d.render(&alg)
            );
        }
    }

    #[test]
    fn rule_restriction_to_fd_fragment() {
        // only the three FD rules: the classical Armstrong system
        let n = parse_attr("L(A, B, C)").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![dep(&n, &alg, "L(A) -> L(B)"), dep(&n, &alg, "L(B) -> L(C)")];
        let cfg = NaiveConfig {
            rules: vec![Rule::FdReflexivity, Rule::FdExtension, Rule::FdTransitivity],
            ..NaiveConfig::default()
        };
        let cl = NaiveClosure::compute(&alg, &sigma, cfg).unwrap();
        assert!(cl.derives(&dep(&n, &alg, "L(A) -> L(C)")));
        // no MVDs at all beyond the premises (implication rule excluded)
        assert!(!cl.derives(&dep(&n, &alg, "L(A) ->> L(B)")));
    }

    #[test]
    fn trivial_mvds_all_derivable_lemma_43() {
        // Lemma 4.3: X ↠ Y is trivial iff Y ≤ X or X ⊔ Y = N; all trivial
        // dependencies must be derivable from the empty Σ.
        for src in ["L(A, B)", "L[A]", "K[L(M[A], B)]"] {
            let n = parse_attr(src).unwrap();
            let alg = Algebra::new(&n);
            let cl = NaiveClosure::compute(&alg, &[], NaiveConfig::default()).unwrap();
            let elements = nalist_algebra::lattice::enumerate_sets(&alg);
            for x in &elements {
                for y in &elements {
                    let mvd = CompiledDep::mvd(x.clone(), y.clone());
                    let fd = CompiledDep::fd(x.clone(), y.clone());
                    if alg.mvd_trivial(x, y) {
                        assert!(
                            cl.derives(&mvd),
                            "{src}: trivial {} underived",
                            mvd.render(&alg)
                        );
                    }
                    if alg.fd_trivial(x, y) {
                        assert!(
                            cl.derives(&fd),
                            "{src}: trivial {} underived",
                            fd.render(&alg)
                        );
                    }
                }
            }
        }
    }
}
