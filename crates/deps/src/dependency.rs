//! Functional and multi-valued dependencies on a nested attribute
//! (Definition 4.1) and their triviality characterisation (Lemma 4.3).

use std::fmt;

use nalist_algebra::{Algebra, AtomSet};
use nalist_types::attr::NestedAttr;
use nalist_types::error::{ParseError, TypeError};
use nalist_types::parser::{parse_dependency_of, parse_dependency_of_with, DepKind, ParseLimits};

/// A dependency `X → Y` (FD) or `X ↠ Y` (MVD) with tree-level sides.
///
/// Use [`Dependency::compile`] to obtain the atom-set form used by the
/// engines.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dependency {
    /// FD or MVD.
    pub kind: DepKind,
    /// Left-hand side `X` (canonical subattribute of the ambient `N`).
    pub lhs: NestedAttr,
    /// Right-hand side `Y`.
    pub rhs: NestedAttr,
}

impl Dependency {
    /// Creates an FD `X → Y`.
    pub fn fd(lhs: NestedAttr, rhs: NestedAttr) -> Self {
        Dependency {
            kind: DepKind::Fd,
            lhs,
            rhs,
        }
    }

    /// Creates an MVD `X ↠ Y`.
    pub fn mvd(lhs: NestedAttr, rhs: NestedAttr) -> Self {
        Dependency {
            kind: DepKind::Mvd,
            lhs,
            rhs,
        }
    }

    /// Parses `"X -> Y"` / `"X ->> Y"` (or `→`/`↠`) with both sides in the
    /// abbreviated notation, resolved against the ambient attribute `n`.
    pub fn parse(n: &NestedAttr, src: &str) -> Result<Self, ParseError> {
        let (kind, lhs, rhs) = parse_dependency_of(n, src)?;
        Ok(Dependency { kind, lhs, rhs })
    }

    /// [`Dependency::parse`] with explicit [`ParseLimits`].
    pub fn parse_with(n: &NestedAttr, src: &str, limits: ParseLimits) -> Result<Self, ParseError> {
        let (kind, lhs, rhs) = parse_dependency_of_with(n, src, limits)?;
        Ok(Dependency { kind, lhs, rhs })
    }

    /// Compiles the sides into atom sets over `alg`.
    pub fn compile(&self, alg: &Algebra) -> Result<CompiledDep, TypeError> {
        Ok(CompiledDep {
            kind: self.kind,
            lhs: alg.from_attr(&self.lhs)?,
            rhs: alg.from_attr(&self.rhs)?,
        })
    }

    /// Is the dependency trivial — satisfied by *every* finite
    /// `r ⊆ dom(N)` (Lemma 4.3)? FDs: `Y ≤ X`. MVDs: `Y ≤ X` or
    /// `X ⊔ Y = N`.
    pub fn is_trivial(&self, alg: &Algebra) -> Result<bool, TypeError> {
        let c = self.compile(alg)?;
        Ok(match self.kind {
            DepKind::Fd => alg.fd_trivial(&c.lhs, &c.rhs),
            DepKind::Mvd => alg.mvd_trivial(&c.lhs, &c.rhs),
        })
    }

    /// Renders in abbreviated notation relative to the ambient `n`.
    pub fn display_in(&self, n: &NestedAttr) -> String {
        let arrow = match self.kind {
            DepKind::Fd => "->",
            DepKind::Mvd => "->>",
        };
        format!(
            "{} {} {}",
            nalist_types::display::abbreviate(&self.lhs, n),
            arrow,
            nalist_types::display::abbreviate(&self.rhs, n)
        )
    }
}

impl fmt::Display for Dependency {
    /// Canonical (unabbreviated) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.kind {
            DepKind::Fd => "->",
            DepKind::Mvd => "->>",
        };
        write!(f, "{} {} {}", self.lhs, arrow, self.rhs)
    }
}

/// A dependency with sides compiled to downward-closed atom sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompiledDep {
    /// FD or MVD.
    pub kind: DepKind,
    /// `SubB(X)`.
    pub lhs: AtomSet,
    /// `SubB(Y)`.
    pub rhs: AtomSet,
}

impl CompiledDep {
    /// Creates a compiled FD.
    pub fn fd(lhs: AtomSet, rhs: AtomSet) -> Self {
        CompiledDep {
            kind: DepKind::Fd,
            lhs,
            rhs,
        }
    }

    /// Creates a compiled MVD.
    pub fn mvd(lhs: AtomSet, rhs: AtomSet) -> Self {
        CompiledDep {
            kind: DepKind::Mvd,
            lhs,
            rhs,
        }
    }

    /// Converts back to tree-level form.
    pub fn decompile(&self, alg: &Algebra) -> Dependency {
        Dependency {
            kind: self.kind,
            lhs: alg.to_attr(&self.lhs),
            rhs: alg.to_attr(&self.rhs),
        }
    }

    /// Is the compiled dependency trivial (Lemma 4.3)?
    pub fn is_trivial(&self, alg: &Algebra) -> bool {
        match self.kind {
            DepKind::Fd => alg.fd_trivial(&self.lhs, &self.rhs),
            DepKind::Mvd => alg.mvd_trivial(&self.lhs, &self.rhs),
        }
    }

    /// Renders in abbreviated notation.
    pub fn render(&self, alg: &Algebra) -> String {
        let arrow = match self.kind {
            DepKind::Fd => "->",
            DepKind::Mvd => "->>",
        };
        format!(
            "{} {} {}",
            alg.render(&self.lhs),
            arrow,
            alg.render(&self.rhs)
        )
    }
}

/// Parses a whole set `Σ` of dependencies, one per line (blank lines and
/// `#` comments ignored).
pub fn parse_sigma(n: &NestedAttr, src: &str) -> Result<Vec<Dependency>, ParseError> {
    parse_sigma_with(n, src, ParseLimits::default())
}

/// [`parse_sigma`] with explicit [`ParseLimits`].
pub fn parse_sigma_with(
    n: &NestedAttr,
    src: &str,
    limits: ParseLimits,
) -> Result<Vec<Dependency>, ParseError> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| Dependency::parse_with(n, l, limits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_types::parser::parse_attr;

    fn pubcrawl() -> NestedAttr {
        parse_attr("Pubcrawl(Person, Visit[Drink(Beer, Pub)])").unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let n = pubcrawl();
        let d = Dependency::parse(&n, "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])").unwrap();
        assert_eq!(d.kind, DepKind::Mvd);
        assert_eq!(
            d.display_in(&n),
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
        );
        let d2 = Dependency::parse(&n, &d.display_in(&n)).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn compile_round_trip() {
        let n = pubcrawl();
        let alg = Algebra::new(&n);
        let d = Dependency::parse(&n, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])").unwrap();
        let c = d.compile(&alg).unwrap();
        assert_eq!(c.decompile(&alg), d);
        assert_eq!(c.render(&alg), "Pubcrawl(Person) -> Pubcrawl(Visit[λ])");
    }

    #[test]
    fn triviality() {
        let n = pubcrawl();
        let alg = Algebra::new(&n);
        // Y ≤ X
        let t1 = Dependency::parse(&n, "Pubcrawl(Person, Visit[λ]) -> Pubcrawl(Person)").unwrap();
        assert!(t1.is_trivial(&alg).unwrap());
        // X ⊔ Y = N makes MVDs trivial
        let t2 = Dependency::parse(&n, "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer, Pub)])")
            .unwrap();
        assert!(t2.is_trivial(&alg).unwrap());
        // but not this one: Y ∪ X misses Beer
        let nt = Dependency::parse(&n, "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])").unwrap();
        assert!(!nt.is_trivial(&alg).unwrap());
        // and the corresponding FD is non-trivial too
        let ntf = Dependency::parse(&n, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])").unwrap();
        assert!(!ntf.is_trivial(&alg).unwrap());
    }

    #[test]
    fn parse_sigma_lines() {
        let n = pubcrawl();
        let sigma = parse_sigma(
            &n,
            "# comment\n\
             Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n\
             \n\
             Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n",
        )
        .unwrap();
        assert_eq!(sigma.len(), 2);
        assert_eq!(sigma[0].kind, DepKind::Mvd);
        assert_eq!(sigma[1].kind, DepKind::Fd);
    }

    #[test]
    fn ordering_for_sets() {
        let n = pubcrawl();
        let d1 = Dependency::parse(&n, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])").unwrap();
        let d2 = Dependency::parse(&n, "Pubcrawl(Person) ->> Pubcrawl(Visit[λ])").unwrap();
        let mut set = std::collections::BTreeSet::new();
        set.insert(d1.clone());
        set.insert(d2);
        set.insert(d1);
        assert_eq!(set.len(), 2);
    }
}
