//! Rule-by-rule certificate verification.
//!
//! [`verify`] takes the *authoritative* schema and `Σ` sources (the
//! files the caller trusts), a parsed [`Certificate`], and a
//! [`Budget`]. Nothing inside the certificate is believed: premises are
//! resolved against the caller's `Σ`, every rule application is
//! re-derived with [`nalist_deps::rules::apply`] and compared against
//! the recorded conclusion, and counterexample instances are re-checked
//! tuple by tuple with the independent satisfaction checker. A
//! certificate produced by a buggy — or malicious — prover therefore
//! cannot make the checker report success.
//!
//! Every loop charges the budget, so size bombs exhaust their fuel or
//! deadline ([`CheckError::Resource`]) instead of monopolising the
//! process.

use nalist_algebra::{Algebra, AtomSet};
use nalist_deps::rules::{apply, Rule};
use nalist_deps::{CompiledDep, Dependency, Instance};
use nalist_guard::{Budget, ResourceExhausted};
use nalist_types::parser::{parse_attr_with, parse_subattr_of_with, ParseLimits};

use crate::format::{CertNode, Certificate, Statement, Verdict};

/// Hard cap on `witness.free_blocks`: the instance has `2^k` tuples, so
/// anything past this is a size bomb regardless of budget. Mirrors the
/// emitter-side `MAX_FREE_BLOCKS` in `nalist-membership` (kept as a
/// separate constant so the checker does not link the engine).
pub const MAX_WITNESS_BLOCKS: usize = 16;

/// A successful verification: what was proved and how much work the
/// replay took (the CLI surfaces the work numbers as metrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The verified verdict.
    pub verdict: Verdict,
    /// The verified statement, re-rendered from compiled form.
    pub statement: String,
    /// Derivation nodes replayed.
    pub nodes: usize,
    /// Witness tuples re-checked.
    pub tuples: usize,
}

/// Why a well-formed certificate failed verification.
///
/// `SchemaParse`/`DepsParse` indict the *caller's input files* (CLI exit
/// code 2); [`CheckError::Resource`] is budget exhaustion (exit code 3);
/// everything else is a rejection of the certificate itself (exit
/// code 1), addressed to a derivation node where one is at fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The schema argument did not parse.
    SchemaParse {
        /// Parser detail.
        detail: String,
    },
    /// The dependency file did not parse or compile.
    DepsParse {
        /// Parser/compiler detail.
        detail: String,
    },
    /// The certificate's embedded schema is not the schema being checked
    /// against.
    SchemaMismatch {
        /// The certificate's schema string.
        cert: String,
    },
    /// The certificate's embedded `Σ` differs from the dependency file.
    SigmaMismatch {
        /// First differing index (or `Σ` length on a length mismatch).
        index: usize,
    },
    /// The statement string did not parse against the schema.
    BadStatement {
        /// Parser detail.
        detail: String,
    },
    /// The verdict and statement kinds disagree (e.g. `derived` on an
    /// `implies` statement).
    VerdictMismatch,
    /// A derivation node failed to replay.
    Node {
        /// Index of the failing node.
        node: usize,
        /// What went wrong.
        reason: NodeError,
    },
    /// A positive verdict with no derivation nodes.
    EmptyDerivation,
    /// The derivation is valid but its final conclusion is not the
    /// statement.
    GoalMismatch {
        /// What the derivation actually concludes.
        concluded: String,
    },
    /// `not-implied` without a witness object.
    MissingWitness,
    /// The witness is structurally or semantically invalid.
    Witness {
        /// Human-readable reason.
        reason: String,
    },
    /// `derived` without a basis object.
    MissingBasis,
    /// The basis node map does not prove the claimed basis.
    Basis {
        /// Human-readable reason.
        reason: String,
    },
    /// The budget ran out before verification finished.
    Resource(ResourceExhausted),
}

/// Node-addressed replay failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// A premise citation is outside `Σ`.
    PremiseOutOfRange {
        /// The cited index.
        index: usize,
    },
    /// The rule id is not one of the fourteen Theorem 4.6 rules.
    UnknownRule {
        /// The unrecognised id.
        id: String,
    },
    /// An input cites this node or a later one (the derivation must be
    /// topologically ordered — this also rejects all cyclic references).
    ForwardRef {
        /// The offending input index.
        reference: usize,
    },
    /// A parameter is not a subattribute of the schema.
    BadParam {
        /// Parser detail.
        detail: String,
    },
    /// The recorded conclusion did not parse against the schema.
    BadConclusion {
        /// Parser detail.
        detail: String,
    },
    /// The rule's side conditions rejected this instance.
    RuleRejected,
    /// The rule applied, but produced a different conclusion than
    /// recorded.
    WrongConclusion {
        /// What the rule actually derives, rendered.
        derived: String,
    },
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::PremiseOutOfRange { index } => {
                write!(f, "premise #{index} is outside Σ")
            }
            NodeError::UnknownRule { id } => write!(f, "unknown rule id {id:?}"),
            NodeError::ForwardRef { reference } => {
                write!(f, "input n{reference} is not an earlier node")
            }
            NodeError::BadParam { detail } => write!(f, "bad parameter: {detail}"),
            NodeError::BadConclusion { detail } => write!(f, "bad conclusion: {detail}"),
            NodeError::RuleRejected => write!(f, "rule side conditions rejected the instance"),
            NodeError::WrongConclusion { derived } => {
                write!(f, "rule derives {derived}, not the recorded conclusion")
            }
        }
    }
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::SchemaParse { detail } => write!(f, "schema does not parse: {detail}"),
            CheckError::DepsParse { detail } => {
                write!(f, "dependency file does not parse: {detail}")
            }
            CheckError::SchemaMismatch { cert } => write!(
                f,
                "certificate was issued for schema {cert}, not the schema under check"
            ),
            CheckError::SigmaMismatch { index } => {
                write!(
                    f,
                    "certificate Σ disagrees with the dependency file at #{index}"
                )
            }
            CheckError::BadStatement { detail } => write!(f, "bad statement: {detail}"),
            CheckError::VerdictMismatch => {
                write!(f, "verdict kind does not fit the statement kind")
            }
            CheckError::Node { node, reason } => write!(f, "node n{node}: {reason}"),
            CheckError::EmptyDerivation => write!(f, "positive verdict with empty derivation"),
            CheckError::GoalMismatch { concluded } => {
                write!(f, "derivation concludes {concluded}, not the statement")
            }
            CheckError::MissingWitness => write!(f, "verdict not-implied requires a witness"),
            CheckError::Witness { reason } => write!(f, "witness invalid: {reason}"),
            CheckError::MissingBasis => write!(f, "verdict derived requires a basis object"),
            CheckError::Basis { reason } => write!(f, "basis invalid: {reason}"),
            CheckError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<ResourceExhausted> for CheckError {
    fn from(e: ResourceExhausted) -> Self {
        CheckError::Resource(e)
    }
}

impl CheckError {
    /// True if this is budget exhaustion (CLI exit code 3).
    pub fn is_resource(&self) -> bool {
        matches!(self, CheckError::Resource(_))
    }

    /// True if the *caller's* schema/deps inputs are at fault rather
    /// than the certificate (CLI exit code 2).
    pub fn is_input_error(&self) -> bool {
        matches!(
            self,
            CheckError::SchemaParse { .. } | CheckError::DepsParse { .. }
        )
    }
}

/// Verifies `cert` against the authoritative `schema_src`/`deps_src`.
///
/// On success the certificate's claim holds: an `implied`/`derived`
/// verdict has a valid derivation from `Σ` concluding the statement, a
/// `not-implied` verdict has a concrete instance satisfying `Σ` and
/// violating the statement.
pub fn verify(
    schema_src: &str,
    deps_src: &str,
    cert: &Certificate,
    budget: &Budget,
) -> Result<Report, CheckError> {
    let limits = ParseLimits::from_budget(budget);

    // 1. the trusted inputs: schema and Σ from the caller's files
    let n = parse_attr_with(schema_src, limits).map_err(|e| CheckError::SchemaParse {
        detail: e.to_string(),
    })?;
    let alg = Algebra::try_new(&n, budget)?;
    let mut sigma = Vec::new();
    for line in deps_src.lines() {
        budget.charge(1)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let dep = Dependency::parse_with(&n, line, limits)
            .map_err(|e| CheckError::DepsParse {
                detail: e.to_string(),
            })?
            .compile(&alg)
            .map_err(|e| CheckError::DepsParse {
                detail: e.to_string(),
            })?;
        sigma.push(dep);
    }

    // 2. the certificate must have been issued for exactly these inputs
    match parse_attr_with(&cert.schema, limits) {
        Ok(cert_n) if cert_n == n => {}
        _ => {
            return Err(CheckError::SchemaMismatch {
                cert: cert.schema.clone(),
            })
        }
    }
    if cert.sigma.len() != sigma.len() {
        return Err(CheckError::SigmaMismatch { index: sigma.len() });
    }
    for (i, rendered) in cert.sigma.iter().enumerate() {
        budget.charge(1)?;
        let embedded = Dependency::parse_with(&n, rendered, limits)
            .ok()
            .and_then(|d| d.compile(&alg).ok());
        if embedded.as_ref() != Some(&sigma[i]) {
            return Err(CheckError::SigmaMismatch { index: i });
        }
    }

    // 3. the statement, compiled against the trusted schema
    let compile_sub = |src: &str| -> Result<AtomSet, String> {
        let attr = parse_subattr_of_with(&n, src, limits).map_err(|e| e.to_string())?;
        alg.from_attr(&attr).map_err(|e| e.to_string())
    };
    let target = match (&cert.statement, cert.verdict) {
        (Statement::Implies { dep }, Verdict::Implied | Verdict::NotImplied) => {
            let dep = Dependency::parse_with(&n, dep, limits)
                .map_err(|e| CheckError::BadStatement {
                    detail: e.to_string(),
                })?
                .compile(&alg)
                .map_err(|e| CheckError::BadStatement {
                    detail: e.to_string(),
                })?;
            StatementTarget::Dep(dep)
        }
        (Statement::Basis { lhs }, Verdict::Derived) => {
            let x = compile_sub(lhs).map_err(|detail| CheckError::BadStatement { detail })?;
            StatementTarget::Lhs(x)
        }
        _ => return Err(CheckError::VerdictMismatch),
    };

    // 4. replay
    match (&target, cert.verdict) {
        (StatementTarget::Dep(dep), Verdict::Implied) => {
            let conclusions = replay(&alg, &n, &sigma, cert, budget, &compile_sub)?;
            let last = conclusions.last().ok_or(CheckError::EmptyDerivation)?;
            if last != dep {
                return Err(CheckError::GoalMismatch {
                    concluded: last.render(&alg),
                });
            }
            Ok(Report {
                verdict: cert.verdict,
                statement: dep.render(&alg),
                nodes: conclusions.len(),
                tuples: 0,
            })
        }
        (StatementTarget::Dep(dep), Verdict::NotImplied) => {
            let tuples = check_witness(&alg, &n, &sigma, dep, cert, budget)?;
            Ok(Report {
                verdict: cert.verdict,
                statement: dep.render(&alg),
                nodes: 0,
                tuples,
            })
        }
        (StatementTarget::Lhs(x), Verdict::Derived) => {
            let conclusions = replay(&alg, &n, &sigma, cert, budget, &compile_sub)?;
            check_basis(&alg, x, cert, &conclusions, budget)?;
            Ok(Report {
                verdict: cert.verdict,
                statement: nalist_types::display::abbreviate(&alg.to_attr(x), &n),
                nodes: conclusions.len(),
                tuples: 0,
            })
        }
        _ => Err(CheckError::VerdictMismatch),
    }
}

enum StatementTarget {
    Dep(CompiledDep),
    Lhs(AtomSet),
}

/// Replays the derivation node by node, returning every node's verified
/// conclusion.
fn replay(
    alg: &Algebra,
    n: &nalist_types::NestedAttr,
    sigma: &[CompiledDep],
    cert: &Certificate,
    budget: &Budget,
    compile_sub: &dyn Fn(&str) -> Result<AtomSet, String>,
) -> Result<Vec<CompiledDep>, CheckError> {
    let limits = ParseLimits::from_budget(budget);
    let mut conclusions: Vec<CompiledDep> = Vec::with_capacity(cert.derivation.len());
    for (i, node) in cert.derivation.iter().enumerate() {
        let fail = |reason: NodeError| CheckError::Node { node: i, reason };
        budget.charge(1)?;
        match node {
            CertNode::Premise { index } => {
                let dep = sigma
                    .get(*index)
                    .ok_or_else(|| fail(NodeError::PremiseOutOfRange { index: *index }))?;
                conclusions.push(dep.clone());
            }
            CertNode::Step {
                rule,
                inputs,
                params,
                conclusion,
            } => {
                budget.charge((inputs.len() + params.len()) as u64)?;
                let rule = Rule::from_id(rule)
                    .ok_or_else(|| fail(NodeError::UnknownRule { id: rule.clone() }))?;
                let mut premise_refs = Vec::with_capacity(inputs.len());
                for &j in inputs {
                    if j >= i {
                        return Err(fail(NodeError::ForwardRef { reference: j }));
                    }
                    premise_refs.push(&conclusions[j]);
                }
                let mut param_sets = Vec::with_capacity(params.len());
                for p in params {
                    param_sets.push(
                        compile_sub(p).map_err(|detail| fail(NodeError::BadParam { detail }))?,
                    );
                }
                let param_refs: Vec<&AtomSet> = param_sets.iter().collect();
                let recorded = Dependency::parse_with(n, conclusion, limits)
                    .map_err(|e| {
                        fail(NodeError::BadConclusion {
                            detail: e.to_string(),
                        })
                    })?
                    .compile(alg)
                    .map_err(|e| {
                        fail(NodeError::BadConclusion {
                            detail: e.to_string(),
                        })
                    })?;
                let derived = apply(alg, rule, &premise_refs, &param_refs)
                    .ok_or_else(|| fail(NodeError::RuleRejected))?;
                if derived != recorded {
                    return Err(fail(NodeError::WrongConclusion {
                        derived: derived.render(alg),
                    }));
                }
                conclusions.push(recorded);
            }
        }
    }
    Ok(conclusions)
}

/// Re-checks a Theorem 4.4 counterexample: the instance must satisfy
/// every dependency of `Σ` and violate the target. Returns the number of
/// tuples checked.
fn check_witness(
    alg: &Algebra,
    n: &nalist_types::NestedAttr,
    sigma: &[CompiledDep],
    target: &CompiledDep,
    cert: &Certificate,
    budget: &Budget,
) -> Result<usize, CheckError> {
    let w = cert.witness.as_ref().ok_or(CheckError::MissingWitness)?;
    let invalid = |reason: String| CheckError::Witness { reason };

    // structural schema: 2^k tuples, generators pinned first and last
    if w.free_blocks == 0 || w.free_blocks > MAX_WITNESS_BLOCKS {
        return Err(invalid(format!(
            "free_blocks {} outside 1..={MAX_WITNESS_BLOCKS}",
            w.free_blocks
        )));
    }
    if w.tuples.len() != 1usize << w.free_blocks {
        return Err(invalid(format!(
            "{} tuples, expected 2^{} = {}",
            w.tuples.len(),
            w.free_blocks,
            1usize << w.free_blocks
        )));
    }
    if w.t1 != 0 || w.t2 != w.tuples.len() - 1 {
        return Err(invalid(
            "generator indices must be the first and last tuple".to_owned(),
        ));
    }

    let mut instance = Instance::new(n.clone());
    for (i, row) in w.tuples.iter().enumerate() {
        budget.charge(1)?;
        budget.check_deadline()?;
        let fresh = instance
            .insert_str(row)
            .map_err(|e| invalid(format!("tuple #{i}: {e}")))?;
        if !fresh {
            return Err(invalid(format!("tuple #{i} is a duplicate")));
        }
    }

    // the semantic heart: r ⊨ Σ …
    for (i, dep) in sigma.iter().enumerate() {
        budget.charge(instance.len() as u64)?;
        budget.check_deadline()?;
        if !instance.satisfies(alg, dep) {
            return Err(invalid(format!(
                "instance violates premise #{i}: {}",
                dep.render(alg)
            )));
        }
    }
    // … and r ⊭ σ
    budget.charge(instance.len() as u64)?;
    if instance.satisfies(alg, target) {
        return Err(invalid(format!(
            "instance satisfies the target {}",
            target.render(alg)
        )));
    }
    Ok(instance.len())
}

/// Checks a `derived` basis claim: the cited nodes must prove `X → X⁺`
/// and `X ↠ W` for every claimed block, and the blocks together with the
/// closure must cover the schema (so no part of `Sub(N)` was silently
/// dropped from the claim).
fn check_basis(
    alg: &Algebra,
    x: &AtomSet,
    cert: &Certificate,
    conclusions: &[CompiledDep],
    budget: &Budget,
) -> Result<(), CheckError> {
    let b = cert.basis.as_ref().ok_or(CheckError::MissingBasis)?;
    let invalid = |reason: String| CheckError::Basis { reason };
    let n = alg.attr().clone();
    let limits = ParseLimits::from_budget(budget);
    let compile_sub = |src: &str| -> Result<AtomSet, String> {
        let attr = parse_subattr_of_with(&n, src, limits).map_err(|e| e.to_string())?;
        alg.from_attr(&attr).map_err(|e| e.to_string())
    };

    let closure = compile_sub(&b.closure).map_err(|e| invalid(format!("closure: {e}")))?;
    let closure_claim = conclusions
        .get(b.closure_node)
        .ok_or_else(|| invalid(format!("closure_node {} out of range", b.closure_node)))?;
    if *closure_claim != CompiledDep::fd(x.clone(), closure.clone()) {
        return Err(invalid(format!(
            "node n{} concludes {}, not X → X⁺",
            b.closure_node,
            closure_claim.render(alg)
        )));
    }

    if b.block_nodes.len() != b.blocks.len() {
        return Err(invalid(format!(
            "{} blocks but {} block_nodes",
            b.blocks.len(),
            b.block_nodes.len()
        )));
    }
    let mut covered = closure.clone();
    for (k, (block_src, &node)) in b.blocks.iter().zip(&b.block_nodes).enumerate() {
        budget.charge(1)?;
        let block = compile_sub(block_src).map_err(|e| invalid(format!("block #{k}: {e}")))?;
        if block.is_empty() {
            return Err(invalid(format!("block #{k} is λ")));
        }
        let claim = conclusions
            .get(node)
            .ok_or_else(|| invalid(format!("block_nodes[{k}] = {node} out of range")))?;
        if *claim != CompiledDep::mvd(x.clone(), block.clone()) {
            return Err(invalid(format!(
                "node n{node} concludes {}, not X ↠ block #{k}",
                claim.render(alg)
            )));
        }
        covered = alg.join(&covered, &block);
    }
    if covered != alg.top_set() {
        return Err(invalid(
            "closure and blocks do not cover the schema".to_owned(),
        ));
    }
    Ok(())
}
