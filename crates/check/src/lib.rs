//! # nalist-check
//!
//! The independent, trusted certificate checker.
//!
//! The engine (`nalist-membership`) decides `Σ ⊨ σ` with Algorithm 5.1
//! and can justify every answer: a positive answer carries a derivation
//! over the fourteen inference rules of Theorem 4.6, a negative answer
//! carries the two-tuple counterexample construction of Theorem 4.4.
//! This crate verifies those justifications **without the engine**: it
//! replays the derivation rule by rule (or re-checks the counterexample
//! instance against `Σ` tuple by tuple) using only the data model, the
//! finite subattribute lattice and the rule table.
//!
//! The split follows the untrusted-prover/trusted-checker pattern: the
//! engine may use any optimisation (worklist fixpoints, caches,
//! work-stealing batches) because nothing it outputs is believed until
//! this crate has re-derived it. Correspondingly, the Cargo dependency
//! graph of `nalist-check` must never reach `nalist-membership` — CI
//! enforces this with `cargo tree`.
//!
//! Certificates are a versioned JSON format ([`format`]); verification
//! ([`verify`]) is budget-governed so hostile certificates (depth/size
//! bombs, dangling node references, capacity-mismatched attribute sets)
//! are rejected with a typed, node-addressed [`CheckError`] instead of
//! hanging the checker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod verify;

pub use format::{
    BasisData, CertNode, Certificate, FormatError, Statement, Verdict, WitnessData, FORMAT_NAME,
    FORMAT_VERSION,
};
pub use verify::{verify, CheckError, NodeError, Report, MAX_WITNESS_BLOCKS};
