//! The versioned JSON certificate format (version 1).
//!
//! A certificate is a self-contained, re-parseable record of one engine
//! answer. All attributes, subattributes, dependencies and tuples are
//! rendered in the paper's abbreviated notation, so the checker can
//! recompile them against the schema it was handed and compare compiled
//! values — a certificate produced against one schema cannot silently
//! check against another.
//!
//! ```json
//! {
//!   "format": "nalist-certificate",
//!   "version": 1,
//!   "schema": "L(A, B, C)",
//!   "sigma": ["L(A) -> L(B)", "L(B) -> L(C)"],
//!   "statement": {"type": "implies", "dep": "L(A) -> L(C)"},
//!   "verdict": "implied",
//!   "derivation": [
//!     {"premise": 0},
//!     {"premise": 1},
//!     {"rule": "fd-transitivity", "inputs": [0, 1], "params": [],
//!      "conclusion": "L(A) -> L(C)"}
//!   ]
//! }
//! ```
//!
//! *Versioning policy:* `version` is bumped on any change that alters
//! how an existing field is interpreted; adding new optional fields does
//! not bump it. Rule ids ([`nalist_deps::rules::Rule::id`]) are part of
//! the format contract and are never repurposed.
//!
//! Negative answers replace `derivation` content with a `witness`
//! (Theorem 4.4): `tuples[0]` and the last tuple are the two generator
//! tuples, and the instance as a whole satisfies `Σ` while violating the
//! statement. `dependency_basis` answers add a `basis` object pointing
//! at the derivation nodes that prove the closure FD and each block MVD.

use nalist_types::json::{self, Json};

/// The `format` field every certificate must carry.
pub const FORMAT_NAME: &str = "nalist-certificate";

/// The current (and only) format version.
pub const FORMAT_VERSION: u64 = 1;

/// What the certificate claims about `Σ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `Σ ⊨ dep` (or its refutation, per [`Verdict`]).
    Implies {
        /// The queried dependency, rendered.
        dep: String,
    },
    /// The dependency basis `DepB(lhs)` was computed.
    Basis {
        /// The queried left-hand side, rendered.
        lhs: String,
    },
}

/// The engine's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `Σ ⊨ σ`; the derivation proves it.
    Implied,
    /// `Σ ⊭ σ`; the witness refutes it.
    NotImplied,
    /// A dependency basis was derived; the `basis` object maps each part
    /// to its proving node.
    Derived,
}

impl Verdict {
    /// The wire string of this verdict.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Implied => "implied",
            Verdict::NotImplied => "not-implied",
            Verdict::Derived => "derived",
        }
    }

    /// Parses a wire string.
    pub fn from_str_opt(s: &str) -> Option<Verdict> {
        match s {
            "implied" => Some(Verdict::Implied),
            "not-implied" => Some(Verdict::NotImplied),
            "derived" => Some(Verdict::Derived),
            _ => None,
        }
    }
}

/// One derivation node: a premise citation or a rule application. Step
/// inputs refer to earlier nodes by index (the derivation is in
/// topological order, exactly like [`nalist_deps::proof::ProofDag`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertNode {
    /// Cites `Σ[index]` — the dependency itself is *not* embedded; the
    /// checker resolves the index against the `Σ` it was handed.
    Premise {
        /// Index into `Σ`.
        index: usize,
    },
    /// An application of a Theorem 4.6 rule.
    Step {
        /// Stable rule id ([`nalist_deps::rules::Rule::id`]).
        rule: String,
        /// Indices of earlier nodes supplying the rule's premises.
        inputs: Vec<usize>,
        /// Rendered subattribute parameters of the rule instance.
        params: Vec<String>,
        /// The recorded conclusion (re-derived and compared by the
        /// checker).
        conclusion: String,
    },
}

/// The Theorem 4.4 counterexample: a finite instance satisfying `Σ` and
/// violating the statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessData {
    /// Number of free dependency-basis blocks; the instance has
    /// `2^free_blocks` tuples.
    pub free_blocks: usize,
    /// Index of the all-`t1` generator tuple (always the first).
    pub t1: usize,
    /// Index of the all-`t2` generator tuple (always the last).
    pub t2: usize,
    /// The tuples, rendered in value notation.
    pub tuples: Vec<String>,
}

/// For `Verdict::Derived`: which derivation nodes prove each part of the
/// dependency basis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisData {
    /// `X⁺`, rendered.
    pub closure: String,
    /// The partition blocks `X^M`, rendered.
    pub blocks: Vec<String>,
    /// Node proving `X → X⁺`.
    pub closure_node: usize,
    /// For each block `W` (same order as `blocks`), the node proving
    /// `X ↠ W`.
    pub block_nodes: Vec<usize>,
}

/// A parsed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The schema `N`, rendered.
    pub schema: String,
    /// `Σ`, rendered one dependency per entry, in file order.
    pub sigma: Vec<String>,
    /// The certified claim.
    pub statement: Statement,
    /// The engine's answer.
    pub verdict: Verdict,
    /// Numbered derivation (empty for refutations).
    pub derivation: Vec<CertNode>,
    /// Counterexample, present iff `verdict` is `not-implied`.
    pub witness: Option<WitnessData>,
    /// Basis node map, present iff `verdict` is `derived`.
    pub basis: Option<BasisData>,
}

/// Why a certificate document could not be read. All variants are
/// *file-level* problems (exit code 2 at the CLI): the bytes do not form
/// a version-1 certificate at all. Semantic problems with a well-formed
/// certificate are [`crate::verify::CheckError`]s instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The document is not valid JSON.
    Json {
        /// Parser detail (position + description).
        detail: String,
    },
    /// The `format` field is missing or not [`FORMAT_NAME`].
    NotACertificate,
    /// The `version` field names a version this checker does not speak.
    Version {
        /// The version found (0 when missing/non-numeric).
        found: u64,
    },
    /// A required field is missing or has the wrong type.
    Field {
        /// Dotted path of the offending field.
        field: &'static str,
    },
    /// A derivation node is neither a premise citation nor a step.
    Node {
        /// Index of the malformed node.
        node: usize,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Json { detail } => write!(f, "not valid JSON: {detail}"),
            FormatError::NotACertificate => {
                write!(f, "missing `\"format\": \"{FORMAT_NAME}\"` marker")
            }
            FormatError::Version { found } => write!(
                f,
                "unsupported certificate version {found} (this checker speaks {FORMAT_VERSION})"
            ),
            FormatError::Field { field } => write!(f, "missing or ill-typed field `{field}`"),
            FormatError::Node { node } => write!(f, "derivation node {node} is malformed"),
        }
    }
}

impl std::error::Error for FormatError {}

fn str_field(obj: &Json, field: &'static str) -> Result<String, FormatError> {
    obj.get(field.rsplit('.').next().unwrap_or(field))
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or(FormatError::Field { field })
}

fn usize_field(obj: &Json, field: &'static str) -> Result<usize, FormatError> {
    obj.get(field.rsplit('.').next().unwrap_or(field))
        .and_then(Json::as_usize)
        .ok_or(FormatError::Field { field })
}

fn str_arr(obj: &Json, field: &'static str) -> Result<Vec<String>, FormatError> {
    let items = obj
        .get(field.rsplit('.').next().unwrap_or(field))
        .and_then(Json::as_arr)
        .ok_or(FormatError::Field { field })?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or(FormatError::Field { field })
        })
        .collect()
}

fn usize_arr(obj: &Json, field: &'static str) -> Result<Vec<usize>, FormatError> {
    let items = obj
        .get(field.rsplit('.').next().unwrap_or(field))
        .and_then(Json::as_arr)
        .ok_or(FormatError::Field { field })?;
    items
        .iter()
        .map(|v| v.as_usize().ok_or(FormatError::Field { field }))
        .collect()
}

impl Certificate {
    /// Parses a certificate document.
    pub fn from_json(src: &str) -> Result<Certificate, FormatError> {
        let doc = json::parse(src).map_err(|detail| FormatError::Json { detail })?;
        if doc.get("format").and_then(Json::as_str) != Some(FORMAT_NAME) {
            return Err(FormatError::NotACertificate);
        }
        let version = doc
            .get("version")
            .and_then(Json::as_usize)
            .map_or(0, |v| v as u64);
        if version != FORMAT_VERSION {
            return Err(FormatError::Version { found: version });
        }

        let statement_obj = doc
            .get("statement")
            .ok_or(FormatError::Field { field: "statement" })?;
        let statement = match statement_obj.get("type").and_then(Json::as_str) {
            Some("implies") => Statement::Implies {
                dep: str_field(statement_obj, "statement.dep")?,
            },
            Some("basis") => Statement::Basis {
                lhs: str_field(statement_obj, "statement.lhs")?,
            },
            _ => {
                return Err(FormatError::Field {
                    field: "statement.type",
                })
            }
        };

        let verdict = doc
            .get("verdict")
            .and_then(Json::as_str)
            .and_then(Verdict::from_str_opt)
            .ok_or(FormatError::Field { field: "verdict" })?;

        let nodes = doc
            .get("derivation")
            .and_then(Json::as_arr)
            .ok_or(FormatError::Field {
                field: "derivation",
            })?;
        let mut derivation = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if let Some(index) = node.get("premise") {
                let index = index.as_usize().ok_or(FormatError::Node { node: i })?;
                derivation.push(CertNode::Premise { index });
            } else if node.get("rule").is_some() {
                derivation.push(CertNode::Step {
                    rule: str_field(node, "derivation.rule")?,
                    inputs: usize_arr(node, "derivation.inputs")?,
                    params: str_arr(node, "derivation.params")?,
                    conclusion: str_field(node, "derivation.conclusion")?,
                });
            } else {
                return Err(FormatError::Node { node: i });
            }
        }

        let witness = match doc.get("witness") {
            None | Some(Json::Null) => None,
            Some(w) => Some(WitnessData {
                free_blocks: usize_field(w, "witness.free_blocks")?,
                t1: usize_field(w, "witness.t1")?,
                t2: usize_field(w, "witness.t2")?,
                tuples: str_arr(w, "witness.tuples")?,
            }),
        };

        let basis = match doc.get("basis") {
            None | Some(Json::Null) => None,
            Some(b) => Some(BasisData {
                closure: str_field(b, "basis.closure")?,
                blocks: str_arr(b, "basis.blocks")?,
                closure_node: usize_field(b, "basis.closure_node")?,
                block_nodes: usize_arr(b, "basis.block_nodes")?,
            }),
        };

        Ok(Certificate {
            schema: str_field(&doc, "schema")?,
            sigma: str_arr(&doc, "sigma")?,
            statement,
            verdict,
            derivation,
            witness,
            basis,
        })
    }

    /// Builds the JSON document tree for this certificate.
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("format".to_owned(), Json::Str(FORMAT_NAME.to_owned())),
            ("version".to_owned(), Json::Num(FORMAT_VERSION as f64)),
            ("schema".to_owned(), Json::Str(self.schema.clone())),
            (
                "sigma".to_owned(),
                Json::Arr(self.sigma.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "statement".to_owned(),
                match &self.statement {
                    Statement::Implies { dep } => Json::Obj(vec![
                        ("type".to_owned(), Json::Str("implies".to_owned())),
                        ("dep".to_owned(), Json::Str(dep.clone())),
                    ]),
                    Statement::Basis { lhs } => Json::Obj(vec![
                        ("type".to_owned(), Json::Str("basis".to_owned())),
                        ("lhs".to_owned(), Json::Str(lhs.clone())),
                    ]),
                },
            ),
            (
                "verdict".to_owned(),
                Json::Str(self.verdict.as_str().to_owned()),
            ),
            (
                "derivation".to_owned(),
                Json::Arr(
                    self.derivation
                        .iter()
                        .map(|node| match node {
                            CertNode::Premise { index } => {
                                Json::Obj(vec![("premise".to_owned(), Json::Num(*index as f64))])
                            }
                            CertNode::Step {
                                rule,
                                inputs,
                                params,
                                conclusion,
                            } => Json::Obj(vec![
                                ("rule".to_owned(), Json::Str(rule.clone())),
                                (
                                    "inputs".to_owned(),
                                    Json::Arr(
                                        inputs.iter().map(|&i| Json::Num(i as f64)).collect(),
                                    ),
                                ),
                                (
                                    "params".to_owned(),
                                    Json::Arr(params.iter().cloned().map(Json::Str).collect()),
                                ),
                                ("conclusion".to_owned(), Json::Str(conclusion.clone())),
                            ]),
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(w) = &self.witness {
            fields.push((
                "witness".to_owned(),
                Json::Obj(vec![
                    ("free_blocks".to_owned(), Json::Num(w.free_blocks as f64)),
                    ("t1".to_owned(), Json::Num(w.t1 as f64)),
                    ("t2".to_owned(), Json::Num(w.t2 as f64)),
                    (
                        "tuples".to_owned(),
                        Json::Arr(w.tuples.iter().cloned().map(Json::Str).collect()),
                    ),
                ]),
            ));
        }
        if let Some(b) = &self.basis {
            fields.push((
                "basis".to_owned(),
                Json::Obj(vec![
                    ("closure".to_owned(), Json::Str(b.closure.clone())),
                    (
                        "blocks".to_owned(),
                        Json::Arr(b.blocks.iter().cloned().map(Json::Str).collect()),
                    ),
                    ("closure_node".to_owned(), Json::Num(b.closure_node as f64)),
                    (
                        "block_nodes".to_owned(),
                        Json::Arr(b.block_nodes.iter().map(|&i| Json::Num(i as f64)).collect()),
                    ),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// Renders the certificate as a JSON document (compact, one line).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            schema: "L(A, B, C)".to_owned(),
            sigma: vec!["L(A) -> L(B)".to_owned(), "L(B) -> L(C)".to_owned()],
            statement: Statement::Implies {
                dep: "L(A) -> L(C)".to_owned(),
            },
            verdict: Verdict::Implied,
            derivation: vec![
                CertNode::Premise { index: 0 },
                CertNode::Premise { index: 1 },
                CertNode::Step {
                    rule: "fd-transitivity".to_owned(),
                    inputs: vec![0, 1],
                    params: vec![],
                    conclusion: "L(A) -> L(C)".to_owned(),
                },
            ],
            witness: None,
            basis: None,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let cert = sample();
        let doc = cert.to_json();
        assert_eq!(Certificate::from_json(&doc).unwrap(), cert);
    }

    #[test]
    fn witness_and_basis_round_trip() {
        let mut cert = sample();
        cert.verdict = Verdict::NotImplied;
        cert.derivation.clear();
        cert.witness = Some(WitnessData {
            free_blocks: 1,
            t1: 0,
            t2: 1,
            tuples: vec!["(a, b, c)".to_owned(), "(a, b, d)".to_owned()],
        });
        let doc = cert.to_json();
        assert_eq!(Certificate::from_json(&doc).unwrap(), cert);

        let mut cert2 = sample();
        cert2.verdict = Verdict::Derived;
        cert2.statement = Statement::Basis {
            lhs: "L(A)".to_owned(),
        };
        cert2.basis = Some(BasisData {
            closure: "L(A, B)".to_owned(),
            blocks: vec!["L(C)".to_owned()],
            closure_node: 2,
            block_nodes: vec![1],
        });
        let doc2 = cert2.to_json();
        assert_eq!(Certificate::from_json(&doc2).unwrap(), cert2);
    }

    #[test]
    fn rejects_foreign_and_future_documents() {
        assert!(matches!(
            Certificate::from_json("not json at all"),
            Err(FormatError::Json { .. })
        ));
        assert_eq!(
            Certificate::from_json("{}"),
            Err(FormatError::NotACertificate)
        );
        let future = sample()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert_eq!(
            Certificate::from_json(&future),
            Err(FormatError::Version { found: 99 })
        );
    }

    #[test]
    fn rejects_missing_fields() {
        let doc = sample().to_json();
        for field in ["schema", "sigma", "verdict", "derivation", "statement"] {
            let broken = doc.replace(&format!("\"{field}\""), "\"renamed\"");
            assert!(Certificate::from_json(&broken).is_err(), "{field}");
        }
    }
}
