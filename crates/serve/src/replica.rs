//! The replication follower: WAL-shipping read replicas.
//!
//! A follower is an ordinary server whose tenants are *installed*, not
//! created: a supervisor thread discovers the leader's tenants via
//! `/healthz`, and one tailer thread per tenant keeps its local
//! reasoner current in two moves —
//!
//! 1. **bootstrap** — `GET /v1/{t}/snapshot` ships the leader's live
//!    state as `NALSNAP1` bytes together with the WAL offset the
//!    snapshot is consistent with (`x-wal-from`), taken under the
//!    leader's reasoner read lock so journaled == applied;
//! 2. **tail** — `GET /v1/{t}/wal?from=<offset>` long-polls raw log
//!    bytes, which the follower re-verifies (every CRC, *strict* — a
//!    torn or flipped shipment is a typed reject and a re-fetch, never
//!    a partial apply) and replays through
//!    [`nalist_membership::apply_wal_op`], the same primitive crash
//!    recovery uses. Follower state is therefore bit-identical to the
//!    leader's by construction, not by diffing.
//!
//! The offset handshake also detects compaction: every fresh leader
//! log carries a new `wal_id` (regenerated on tenant creation and on
//! restart, which compacts), and the leader answers `416` when a
//! follower's offset outlives the log. Either signal sends the
//! follower back to step 1. While the leader is unreachable the
//! follower keeps serving reads from its last consistent state and
//! retries with backoff.
//!
//! Readiness is a latch: `/healthz` answers `503` until every
//! discovered tenant has caught up with the leader once, then stays
//! ready (stale-but-consistent reads are the point of a replica; the
//! instantaneous lag is always reported alongside).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use nalist_guard::Budget;
use nalist_membership::{apply_wal_op, restore_reasoner, WalOp};
use nalist_obs::{Counter, Recorder};
use nalist_types::json::{escape, parse as parse_json};

use crate::api::{ApiError, ServiceState, MAX_WAL_WAIT_MS};
use crate::server::{start_with_replication, Server, ServerConfig};

/// Upper bound on one fetched response body (snapshot or WAL slice).
/// The WAL endpoint caps itself at [`crate::api::MAX_WAL_SHIPMENT`];
/// this guards the snapshot path and malformed peers.
const MAX_FETCH_BYTES: usize = 256 * 1024 * 1024;

/// Backoff between retries when the leader is unreachable or answers
/// with an error the follower can only wait out.
const RETRY_BACKOFF: Duration = Duration::from_millis(200);

/// How often the supervisor re-polls the leader's tenant list.
const DISCOVERY_INTERVAL: Duration = Duration::from_millis(500);

/// Per-tenant replication progress, as exposed in `/healthz` and
/// `/metrics` on the follower.
#[derive(Debug, Clone, Default)]
pub struct TenantRepl {
    /// Next WAL byte offset to fetch from the leader.
    pub offset: u64,
    /// WAL incarnation the offset belongs to (`0` before bootstrap).
    pub wal_id: u64,
    /// Leader log length at the last successful exchange.
    pub log_len: u64,
    /// Whether this tenant has caught up with the leader at least once.
    pub caught_up: bool,
    /// Snapshot bootstraps performed (1 + one per detected compaction).
    pub bootstraps: u64,
    /// Records fetched but not yet applied (non-zero only mid-replay).
    pub pending_records: u64,
    /// Records replayed into the local reasoner, lifetime total.
    pub applied_records: u64,
    /// Shipped segments rejected by re-verification (corrupt in
    /// flight) and re-fetched.
    pub rejected_segments: u64,
}

/// Shared follower status: the server's routes read it (readiness
/// gate, write rejection, lag report), the tailer threads write it.
#[derive(Debug)]
pub struct ReplStatus {
    leader: String,
    /// Set after the first successful tenant discovery; until then the
    /// follower cannot claim readiness even with zero tenants.
    discovered: AtomicBool,
    tenants: Mutex<BTreeMap<String, TenantRepl>>,
}

impl ReplStatus {
    /// A fresh status for a follower of `leader` (`host:port`).
    #[must_use]
    pub fn new(leader: &str) -> ReplStatus {
        ReplStatus {
            leader: leader.to_string(),
            discovered: AtomicBool::new(false),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The leader's address, for the `421` pointer and the lag report.
    #[must_use]
    pub fn leader(&self) -> &str {
        &self.leader
    }

    /// Whether the follower may serve: tenants discovered and every
    /// one caught up with the leader at least once. A latch — later
    /// lag (or a leader outage) does not flip a ready follower back,
    /// because its state stays consistent, merely stale.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.discovered.load(Ordering::SeqCst)
            && self
                .tenants
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .values()
                .all(|t| t.caught_up)
    }

    /// Instantaneous lag summed over tenants: `(records fetched but
    /// not yet applied, bytes of leader log not yet fetched)`. Both
    /// are zero when fully caught up; bytes go stale (last known
    /// leader length) while the leader is unreachable.
    #[must_use]
    pub fn lag(&self) -> (u64, u64) {
        let tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let records = tenants.values().map(|t| t.pending_records).sum();
        let bytes = tenants
            .values()
            .map(|t| t.log_len.saturating_sub(t.offset))
            .sum();
        (records, bytes)
    }

    /// Total shipped segments rejected by strict re-verification
    /// (corrupt in flight) across tenants.
    #[must_use]
    pub fn rejected_segments(&self) -> u64 {
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|t| t.rejected_segments)
            .sum()
    }

    /// Total snapshot bootstraps across tenants.
    #[must_use]
    pub fn bootstraps(&self) -> u64 {
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|t| t.bootstraps)
            .sum()
    }

    /// The `"replication"` object embedded in the follower's
    /// `/metrics` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ready = self.ready();
        let (lag_records, lag_bytes) = self.lag();
        let tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let per_tenant: Vec<String> = tenants
            .iter()
            .map(|(name, t)| {
                format!(
                    "{}: {{\"offset\": {}, \"wal_id\": {}, \"log_len\": {}, \
                     \"caught_up\": {}, \"bootstraps\": {}, \"applied_records\": {}, \
                     \"rejected_segments\": {}}}",
                    escape(name),
                    t.offset,
                    t.wal_id,
                    t.log_len,
                    t.caught_up,
                    t.bootstraps,
                    t.applied_records,
                    t.rejected_segments
                )
            })
            .collect();
        format!(
            "{{\"role\": \"follower\", \"leader\": {}, \"ready\": {ready}, \
             \"lag\": {{\"records\": {lag_records}, \"bytes\": {lag_bytes}}}, \
             \"tenants\": {{{}}}}}",
            escape(&self.leader),
            per_tenant.join(", ")
        )
    }

    /// Registers newly discovered tenant names (as not-yet-caught-up,
    /// *before* their tailers spawn, so readiness cannot race past
    /// them) and marks discovery done. Returns the names that are new.
    fn admit(&self, names: &[String]) -> Vec<String> {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let fresh: Vec<String> = names
            .iter()
            .filter(|n| !tenants.contains_key(*n))
            .cloned()
            .collect();
        for name in &fresh {
            tenants.insert(name.clone(), TenantRepl::default());
        }
        drop(tenants);
        self.discovered.store(true, Ordering::SeqCst);
        fresh
    }

    /// Updates one tenant's entry in place.
    fn update(&self, name: &str, f: impl FnOnce(&mut TenantRepl)) {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        f(tenants.entry(name.to_string()).or_default());
    }
}

/// One fetched HTTP response: status, lower-cased headers, raw body.
#[derive(Debug)]
pub(crate) struct Fetched {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Fetched {
    pub(crate) fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    pub(crate) fn header_u64(&self, name: &str) -> Option<u64> {
        self.header(name).and_then(|v| v.parse().ok())
    }
}

/// A blocking binary-capable `GET` on a fresh connection. Replication
/// exchanges are infrequent relative to query traffic, so per-request
/// connect cost is irrelevant next to not sharing a socket between the
/// long-polling tailer and anything else.
pub(crate) fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<Fetched, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let req = format!("GET {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n");
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send {path}: {e}"))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read {path}: {e}"))?;
        if n == 0 {
            return Err(format!("{path}: connection closed before response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > MAX_FETCH_BYTES {
            return Err(format!("{path}: response head exceeds the fetch cap"));
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{path}: bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().ok();
        }
        headers.push((name, value));
    }
    let mut body = buf[head_end + 4..].to_vec();
    // `connection: close` lets EOF terminate the body; the declared
    // length still bounds it when present.
    loop {
        if let Some(len) = content_length {
            if len > MAX_FETCH_BYTES {
                return Err(format!("{path}: declared body exceeds the fetch cap"));
            }
            if body.len() >= len {
                body.truncate(len);
                break;
            }
        }
        if body.len() > MAX_FETCH_BYTES {
            return Err(format!("{path}: body exceeds the fetch cap"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read {path}: {e}"))?;
        if n == 0 {
            if let Some(len) = content_length {
                if body.len() < len {
                    return Err(format!("{path}: connection closed mid-body"));
                }
            }
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Fetched {
        status,
        headers,
        body,
    })
}

/// Follower configuration.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// The local server the follower answers reads from. `wal_dir` is
    /// ignored: a follower keeps no durable state of its own — on
    /// restart it re-bootstraps from the leader, which *is* its
    /// durability story.
    pub server: ServerConfig,
    /// Leader address, `host:port`.
    pub leader: String,
    /// Long-poll wait the tailers ask the leader for when caught up.
    pub poll_wait_ms: u64,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            server: ServerConfig::default(),
            leader: "127.0.0.1:7070".to_string(),
            poll_wait_ms: 400,
        }
    }
}

/// A running follower: the read-serving server plus the replication
/// threads. Stop with [`Follower::shutdown`].
#[derive(Debug)]
pub struct Follower {
    server: Server,
    status: Arc<ReplStatus>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Follower {
    /// The actually-bound local address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The shared service state (registry, budgets).
    #[must_use]
    pub fn state(&self) -> &Arc<ServiceState> {
        self.server.state()
    }

    /// The replication status the routes report from.
    #[must_use]
    pub fn status(&self) -> &Arc<ReplStatus> {
        &self.status
    }

    /// Stops tailing and shuts the server down. In-flight replays
    /// finish; the follower's state stays consistent to the last
    /// applied record.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
        self.server.shutdown();
    }
}

/// Starts a follower of `cfg.leader`: binds the local server
/// immediately (answering `503` from `/healthz` until caught up) and
/// spawns the discovery supervisor, which spawns one tailer per
/// leader tenant.
pub fn start_follower(cfg: &FollowerConfig, rec: Arc<dyn Recorder>) -> Result<Follower, ApiError> {
    let mut server_cfg = cfg.server.clone();
    server_cfg.wal_dir = None;
    let status = Arc::new(ReplStatus::new(&cfg.leader));
    let server = start_with_replication(&server_cfg, Arc::clone(&rec), Some(Arc::clone(&status)))?;
    let stop = Arc::new(AtomicBool::new(false));
    let supervisor = {
        let state = Arc::clone(server.state());
        let status = Arc::clone(&status);
        let stop = Arc::clone(&stop);
        let rec = Arc::clone(&rec);
        let cfg = cfg.clone();
        std::thread::spawn(move || supervise(&cfg, &state, &status, &rec, &stop))
    };
    Ok(Follower {
        server,
        status,
        stop,
        threads: vec![supervisor],
    })
}

/// Sleeps `total` in small steps, returning early when `stop` is set.
fn sleep_unless_stopped(stop: &AtomicBool, total: Duration) {
    let step = Duration::from_millis(25);
    let mut left = total;
    while !stop.load(Ordering::SeqCst) && !left.is_zero() {
        let d = step.min(left);
        std::thread::sleep(d);
        left = left.saturating_sub(d);
    }
}

/// The discovery loop: polls the leader's `/healthz` for tenant names
/// and spawns a tailer for each new one. Tailers are never reaped —
/// tenants cannot be deleted — so the supervisor joins them on stop.
fn supervise(
    cfg: &FollowerConfig,
    state: &Arc<ServiceState>,
    status: &Arc<ReplStatus>,
    rec: &Arc<dyn Recorder>,
    stop: &Arc<AtomicBool>,
) {
    let mut tailers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        if let Some(names) = discover(&cfg.leader) {
            for name in status.admit(&names) {
                let cfg = cfg.clone();
                let state = Arc::clone(state);
                let status = Arc::clone(status);
                let rec = Arc::clone(rec);
                let stop = Arc::clone(stop);
                tailers.push(std::thread::spawn(move || {
                    tail_tenant(&cfg, &state, &status, &rec, &stop, &name);
                }));
            }
        }
        sleep_unless_stopped(stop, DISCOVERY_INTERVAL);
    }
    for t in tailers {
        let _ = t.join();
    }
}

/// One `/healthz` poll: the leader's tenant names, if reachable.
fn discover(leader: &str) -> Option<Vec<String>> {
    let resp = http_get(leader, "/healthz", Duration::from_secs(5)).ok()?;
    if resp.status != 200 {
        return None;
    }
    let text = std::str::from_utf8(&resp.body).ok()?;
    let doc = parse_json(text).ok()?;
    let names = doc.get("names")?.as_arr()?;
    Some(
        names
            .iter()
            .filter_map(|n| n.as_str().map(str::to_string))
            .collect(),
    )
}

/// Why one tailer step could not advance.
enum TailStep {
    /// Applied (or confirmed empty); keep tailing from the new offset.
    Advanced,
    /// The offsets are for a log that no longer exists (compaction,
    /// `416`, a divergent record): snapshot again.
    Resnapshot,
    /// Transient (leader down, corrupt-in-flight shipment): retry the
    /// same exchange after backoff.
    Retry,
}

/// The per-tenant replication loop: bootstrap, then tail forever.
fn tail_tenant(
    cfg: &FollowerConfig,
    state: &Arc<ServiceState>,
    status: &Arc<ReplStatus>,
    rec: &Arc<dyn Recorder>,
    stop: &Arc<AtomicBool>,
    name: &str,
) {
    let mut bootstrapped = false;
    while !stop.load(Ordering::SeqCst) {
        if !bootstrapped {
            if bootstrap(cfg, state, status, rec, name) {
                bootstrapped = true;
            } else {
                sleep_unless_stopped(stop, RETRY_BACKOFF);
            }
            continue;
        }
        match tail_once(cfg, state, status, rec, name) {
            TailStep::Advanced => {}
            TailStep::Resnapshot => bootstrapped = false,
            TailStep::Retry => sleep_unless_stopped(stop, RETRY_BACKOFF),
        }
    }
}

/// Fetches and installs a snapshot of `name`; returns success.
fn bootstrap(
    cfg: &FollowerConfig,
    state: &Arc<ServiceState>,
    status: &Arc<ReplStatus>,
    rec: &Arc<dyn Recorder>,
    name: &str,
) -> bool {
    let path = format!("/v1/{name}/snapshot");
    let Ok(resp) = http_get(&cfg.leader, &path, Duration::from_secs(30)) else {
        return false;
    };
    if resp.status != 200 {
        return false;
    }
    let (Some(wal_id), Some(from)) = (resp.header_u64("x-wal-id"), resp.header_u64("x-wal-from"))
    else {
        return false;
    };
    let Ok(payload) = nalist_store::decode_snapshot(&resp.body) else {
        return false;
    };
    let Ok(reasoner) = restore_reasoner(&payload, &Budget::unlimited(), Arc::clone(rec)) else {
        return false;
    };
    if state.registry.install(name, reasoner).is_err() {
        return false;
    }
    rec.add(Counter::SnapshotBootstraps, 1);
    status.update(name, |t| {
        t.offset = from;
        t.wal_id = wal_id;
        t.log_len = from;
        t.pending_records = 0;
        t.bootstraps += 1;
    });
    true
}

/// One tail exchange: fetch a WAL slice at the current offset, verify
/// it strictly, replay it through the ordinary incremental edit path.
fn tail_once(
    cfg: &FollowerConfig,
    state: &Arc<ServiceState>,
    status: &Arc<ReplStatus>,
    rec: &Arc<dyn Recorder>,
    name: &str,
) -> TailStep {
    let (offset, wal_id) = {
        let mut got = (0, 0);
        status.update(name, |t| got = (t.offset, t.wal_id));
        got
    };
    let wait = cfg.poll_wait_ms.min(MAX_WAL_WAIT_MS);
    let path = format!("/v1/{name}/wal?from={offset}&wait_ms={wait}");
    let Ok(resp) = http_get(&cfg.leader, &path, Duration::from_secs(30)) else {
        return TailStep::Retry;
    };
    if resp.status == 416 {
        // The compaction handshake: our offset outlived the log.
        return TailStep::Resnapshot;
    }
    if resp.status != 200 {
        return TailStep::Retry;
    }
    match resp.header_u64("x-wal-id") {
        Some(id) if id == wal_id => {}
        // A fresh log (leader restarted and compacted, or the tenant
        // was re-created): our offset means nothing in it, even if it
        // happens to be in range.
        _ => return TailStep::Resnapshot,
    }
    let log_len = resp.header_u64("x-wal-len").unwrap_or(offset);
    // Strict re-verification: every CRC, no torn-tail tolerance. A
    // byte flipped in flight is a typed reject and a re-fetch of the
    // same offsets — never a partial or corrupted apply.
    let seg = match nalist_store::parse_wal_segment(&resp.body, offset, false) {
        Ok(seg) => seg,
        Err(_) => {
            status.update(name, |t| t.rejected_segments += 1);
            return TailStep::Retry;
        }
    };
    let records = seg.records.len() as u64;
    status.update(name, |t| {
        t.pending_records = records;
        t.log_len = log_len.max(seg.end);
    });
    if records > 0 {
        let Some(tenant) = state.registry.get(name) else {
            return TailStep::Resnapshot;
        };
        let mut r = tenant
            .reasoner
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        for (index, (record_offset, payload)) in seg.records.iter().enumerate() {
            let op = match WalOp::decode(payload, *record_offset) {
                Ok(op) => op,
                // CRC-valid but undecodable or unreplayable records mean
                // the streams diverged — resync from a fresh snapshot.
                Err(_) => return TailStep::Resnapshot,
            };
            if apply_wal_op(&mut r, op, index, &Budget::unlimited()).is_err() {
                return TailStep::Resnapshot;
            }
        }
        drop(r);
        rec.add(Counter::ReplRecordsApplied, records);
    }
    // `repl_lag` is monotone like every counter: it accumulates the
    // bytes-behind observed at each exchange. The instantaneous lag
    // lives in `/healthz` and the `/metrics` replication object.
    rec.add(Counter::ReplLag, log_len.saturating_sub(seg.end));
    status.update(name, |t| {
        t.offset = seg.end;
        t.pending_records = 0;
        t.applied_records += records;
        if t.offset >= t.log_len {
            t.caught_up = true;
        }
    });
    TailStep::Advanced
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_is_a_latch_over_all_discovered_tenants() {
        let status = ReplStatus::new("127.0.0.1:1");
        assert!(!status.ready(), "undiscovered follower must not be ready");
        let fresh = status.admit(&["a".to_string(), "b".to_string()]);
        assert_eq!(fresh, vec!["a".to_string(), "b".to_string()]);
        assert!(status.admit(&["a".to_string()]).is_empty());
        assert!(!status.ready(), "admitted but not caught up");
        status.update("a", |t| t.caught_up = true);
        assert!(!status.ready(), "one tenant still behind");
        status.update("b", |t| t.caught_up = true);
        assert!(status.ready());
    }

    #[test]
    fn lag_sums_pending_records_and_unfetched_bytes() {
        let status = ReplStatus::new("127.0.0.1:1");
        status.admit(&["a".to_string(), "b".to_string()]);
        status.update("a", |t| {
            t.offset = 100;
            t.log_len = 150;
            t.pending_records = 2;
        });
        status.update("b", |t| {
            t.offset = 80;
            t.log_len = 90;
        });
        assert_eq!(status.lag(), (2, 60));
        let json = status.to_json();
        assert!(json.contains("\"lag\": {\"records\": 2, \"bytes\": 60}"), "{json}");
        assert!(json.contains("\"ready\": false"), "{json}");
    }
}
