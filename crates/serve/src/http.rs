//! Minimal HTTP/1.1 over blocking sockets: just enough protocol for
//! the service's JSON API, hardened against the abuse the wire corpus
//! throws at it (oversized heads, absurd bodies, slowloris stalls,
//! pipelined garbage).
//!
//! Policy in one line: every defect has a *typed* outcome
//! ([`RecvError`]) that maps to exactly one status code, and none of
//! them can make a worker allocate more than the fixed limits below.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on request line + headers, bytes. A head larger than
/// this answers `431` — it is never buffered in full.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body, bytes. A `Content-Length` beyond
/// this answers `413` *before* any body byte is read.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target, query string included.
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or an HTTP/1.0 default).
    pub close: bool,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (query string stripped).
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's raw query string, if any.
    #[must_use]
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }
}

/// Why a request could not be read. Each variant maps to one response
/// (or to a silent close for the benign end-of-keep-alive cases).
#[derive(Debug)]
pub enum RecvError {
    /// Clean end of the connection between requests — not an error.
    Closed,
    /// The read timeout fired mid-request (slowloris or a stalled
    /// client): answer `408` and close.
    Timeout,
    /// Request line + headers exceeded [`MAX_HEAD_BYTES`]: `431`.
    HeadTooLarge,
    /// Declared body exceeds [`MAX_BODY_BYTES`]: `413`.
    BodyTooLarge,
    /// Anything else malformed (bad request line, bad version, broken
    /// `Content-Length`, chunked encoding): `400` with the reason.
    Malformed(String),
    /// A hard socket error; nothing sensible can be written back.
    Io(io::Error),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Finds the end of the head (`\r\n\r\n`, leniently also `\n\n`),
/// returning (head_end, body_start).
fn head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some((i, i + 4));
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some((i, i + 2));
        }
    }
    None
}

/// Reads one request from `stream`. `leftover` carries bytes read past
/// the previous request's end (pipelined clients), and is left holding
/// any bytes past this request's end.
///
/// The socket's read timeout must already be set by the caller; a
/// timeout with a partial request in the buffer is [`RecvError::
/// Timeout`], while a timeout (or EOF) on an empty buffer is the
/// benign [`RecvError::Closed`].
pub fn read_request(stream: &mut TcpStream, leftover: &mut Vec<u8>) -> Result<Request, RecvError> {
    let mut buf = std::mem::take(leftover);
    let mut chunk = [0u8; 4096];
    // Phase 1: accumulate the head.
    let (head_len, body_at) = loop {
        if let Some(found) = head_end(&buf) {
            // The limit binds even when the terminator arrived in the
            // same read chunk that crossed it.
            if found.0 > MAX_HEAD_BYTES {
                return Err(RecvError::HeadTooLarge);
            }
            break found;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RecvError::HeadTooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(RecvError::Closed);
                }
                return Err(RecvError::Malformed(
                    "connection closed mid-request".to_string(),
                ));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                if buf.is_empty() {
                    return Err(RecvError::Closed);
                }
                return Err(RecvError::Timeout);
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    };
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| RecvError::Malformed("head is not UTF-8".to_string()))?
        .to_string();
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(RecvError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RecvError::Malformed(format!("bad method {method:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(RecvError::Malformed(format!(
                "unsupported version {other:?}"
            )))
        }
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RecvError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
        close: false,
    };
    let connection = req.header("connection").map(str::to_ascii_lowercase);
    req.close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => !http11,
    };
    if req.header("transfer-encoding").is_some() {
        return Err(RecvError::Malformed(
            "chunked transfer encoding is not supported".to_string(),
        ));
    }
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RecvError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(RecvError::BodyTooLarge);
    }
    // Phase 2: the body. Bytes already in `buf` past the head come
    // first; the rest is read from the socket.
    let mut body: Vec<u8> = buf[body_at..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(RecvError::Malformed(
                    "connection closed mid-body".to_string(),
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(RecvError::Timeout),
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    *leftover = body.split_off(content_length);
    req.body = body;
    Ok(req)
}

/// One response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Ask the client to close (and close ourselves) after writing.
    pub close: bool,
    /// `Retry-After` seconds, for `429`/`503` answers.
    pub retry_after: Option<u32>,
    /// Extra headers, written verbatim after the fixed set (e.g. the
    /// `Leader:` pointer on a follower's `421`, the `x-wal-*` offsets
    /// on replication answers). Names must be valid header tokens.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
            retry_after: None,
            extra_headers: Vec::new(),
        }
    }

    /// A binary (`application/octet-stream`) response — snapshot and
    /// WAL bytes shipped to replication followers.
    #[must_use]
    pub fn octets(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/octet-stream",
            body,
            close: false,
            retry_after: None,
            extra_headers: Vec::new(),
        }
    }

    /// Marks the response as connection-closing.
    #[must_use]
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    /// Adds an extra response header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra_headers.push((name, value));
        self
    }

    /// The standard reason phrase for `status`.
    #[must_use]
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Content Too Large",
            416 => "Range Not Satisfiable",
            421 => "Misdirected Request",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialises the response to `w` (status line, headers, body).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("retry-after: {secs}\r\n"));
        }
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if self.close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Percent-decodes a URL query component (`%41` → `A`, `+` → space).
/// Invalid escapes are passed through literally rather than erroring:
/// the decoded text is parsed again downstream, which produces the
/// better diagnostic.
#[must_use]
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_plus_and_junk() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%2D%2d"), "--");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("Visit%5B%CE%BB%5D"), "Visit[λ]");
    }

    #[test]
    fn head_end_finds_both_line_conventions() {
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some((14, 18)));
        assert_eq!(head_end(b"GET / HTTP/1.1\n\nrest"), Some((14, 16)));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn request_accessors_split_path_and_query() {
        let r = Request {
            method: "GET".to_string(),
            target: "/v1/a/cert?dep=x%20y".to_string(),
            headers: vec![("host".to_string(), "h".to_string())],
            body: Vec::new(),
            close: false,
        };
        assert_eq!(r.path(), "/v1/a/cert");
        assert_eq!(r.query(), Some("dep=x%20y"));
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.header("absent"), None);
    }
}
