//! Request routing and the JSON API.
//!
//! Every route answers JSON; every failure is a structured error
//! document `{"error": {"status", "kind", "message"}}` whose status
//! code mirrors the CLI's exit-code contract: domain errors are `400`,
//! unknown tenants/routes `404`, budget exhaustion `429` (the HTTP
//! face of exit code 3), and overload `503`.
//!
//! | route | verb | answer |
//! |-------|------|--------|
//! | `/healthz` | GET | liveness + tenant count |
//! | `/metrics` | GET | the schema-versioned metrics document |
//! | `/v1/{tenant}/create` | POST | make a tenant from `{schema, deps}` |
//! | `/v1/{tenant}/query` | POST | decide `{query}` or batch `{queries}` |
//! | `/v1/{tenant}/edit` | POST | apply `{edits: [{op, dep}]}`, WAL-first |
//! | `/v1/{tenant}/cert?dep=…` | GET | decide + portable proof certificate |
//! | `/v1/{tenant}/sigma` | GET | Σ listing + cache stats (recovery audits) |
//! | `/v1/{tenant}/reload` | POST | validate a whole deps file, then swap Σ |
//! | `/v1/{tenant}/snapshot` | GET | `NALSNAP1` bytes for follower bootstrap |
//! | `/v1/{tenant}/wal?from=…` | GET | long-poll raw WAL bytes from an offset |
//!
//! A follower (started with `--follow`) answers the read routes from
//! its replicated state and rejects every write with `421` plus a
//! `leader:` header pointing at the authority.

use std::num::NonZeroUsize;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use nalist_guard::{Budget, ResourceExhausted};
use nalist_membership::{QueryError, Reasoner, ReasonerError, WalOp};
use nalist_obs::{render_snapshot_json_with, Counter, MetricsSnapshot, Recorder};
use nalist_types::json::{escape, parse as parse_json, Json};

use crate::http::{percent_decode, Request, Response};
use crate::replica::ReplStatus;
use crate::tenant::{Registry, Tenant};

/// Longest WAL slice one `wal` answer ships; a follower further behind
/// simply polls again with its advanced offset.
pub const MAX_WAL_SHIPMENT: u64 = 4 << 20;

/// Long-poll ceiling for `wal?wait_ms=`: a waiting poll pins a worker
/// thread, so the wait is bounded well under the socket read timeout.
pub const MAX_WAL_WAIT_MS: u64 = 2_000;

/// A structured API failure: one HTTP status, a stable machine-readable
/// kind, and a human message.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable kind slug (`bad_request`, `not_found`, `resource_exhausted`, …).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// A `400` domain error.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            kind: "bad_request",
            message: message.into(),
        }
    }

    /// A `404`.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            kind: "not_found",
            message: message.into(),
        }
    }

    /// A `500`.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            kind: "internal",
            message: message.into(),
        }
    }

    /// A `429`: the per-request [`Budget`] ran out — the admission
    /// contract's "shed load, don't degrade" answer.
    pub fn resource(e: ResourceExhausted) -> ApiError {
        ApiError {
            status: 429,
            kind: "resource_exhausted",
            message: e.to_string(),
        }
    }

    /// Maps a reasoner failure: budget exhaustion is `429`, anything
    /// else is the caller's fault (`400`).
    pub fn reasoner(e: &ReasonerError) -> ApiError {
        match e {
            ReasonerError::Resource(r) => ApiError::resource(*r),
            other => ApiError::bad_request(other.to_string()),
        }
    }

    /// Renders the error document and response.
    #[must_use]
    pub fn to_response(&self) -> Response {
        let body = format!(
            "{{\"error\": {{\"status\": {}, \"kind\": {}, \"message\": {}}}}}\n",
            self.status,
            escape(self.kind),
            escape(&self.message)
        );
        let mut resp = Response::json(self.status, body);
        if matches!(self.status, 429 | 503) {
            resp.retry_after = Some(1);
        }
        resp
    }
}

/// Everything a worker needs to answer requests.
#[derive(Debug)]
pub struct ServiceState {
    /// The tenant table.
    pub registry: Registry,
    /// Per-request fuel cap (`None` = unlimited).
    pub fuel: Option<u64>,
    /// Per-request deadline (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Worker count for batch query planning.
    pub batch_threads: NonZeroUsize,
    /// `Some` when this process is a replication follower: routes
    /// consult it for the readiness gate, the write rejection and the
    /// lag report. `None` on leaders and standalone servers.
    pub replication: Option<Arc<ReplStatus>>,
}

impl ServiceState {
    /// A fresh per-request budget from the server-wide caps.
    #[must_use]
    pub fn request_budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(fuel) = self.fuel {
            b = b.with_fuel(fuel);
        }
        if let Some(window) = self.deadline {
            b = b.with_deadline_in(window);
        }
        b
    }

    fn recorder(&self) -> &Arc<dyn Recorder> {
        self.registry.recorder()
    }
}

fn require_method(req: &Request, method: &str) -> Result<(), ApiError> {
    if req.method == method {
        Ok(())
    } else {
        Err(ApiError {
            status: 405,
            kind: "method_not_allowed",
            message: format!("{} {} wants {method}", req.method, req.path()),
        })
    }
}

fn parse_body(req: &Request) -> Result<Json, ApiError> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    parse_json(text).map_err(|e| ApiError::bad_request(format!("body is not valid JSON: {e}")))
}

fn body_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("missing string field {key:?}")))
}

fn body_str_list(body: &Json, key: &str) -> Result<Vec<String>, ApiError> {
    match body.get(key) {
        None => Ok(Vec::new()),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| ApiError::bad_request(format!("{key:?} must be an array")))?;
            arr.iter()
                .enumerate()
                .map(|(i, item)| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        ApiError::bad_request(format!("{key:?}[{i}] must be a string"))
                    })
                })
                .collect()
        }
    }
}

/// Routes one request. Never panics deliberately; the worker wraps the
/// call in `catch_unwind` for the accidents.
pub fn handle(state: &ServiceState, req: &Request) -> Response {
    match route(state, req) {
        Ok(resp) => resp,
        Err(e) => e.to_response(),
    }
}

fn route(state: &ServiceState, req: &Request) -> Result<Response, ApiError> {
    match req.path() {
        "/healthz" => {
            require_method(req, "GET")?;
            let names: Vec<String> = state.registry.names().iter().map(|n| escape(n)).collect();
            let base = format!(
                "\"tenants\": {}, \"names\": [{}]",
                state.registry.len(),
                names.join(", ")
            );
            match &state.replication {
                None => Ok(Response::json(
                    200,
                    format!("{{\"ok\": true, {base}, \"role\": \"leader\"}}\n"),
                )),
                Some(repl) => {
                    // Readiness gate: a follower refuses traffic (503,
                    // so load balancers skip it) until it has caught up
                    // with the leader at least once per tenant.
                    let ready = repl.ready();
                    let (lag_records, lag_bytes) = repl.lag();
                    let mut resp = Response::json(
                        if ready { 200 } else { 503 },
                        format!(
                            "{{\"ok\": {ready}, {base}, \"role\": \"follower\", \
                             \"leader\": {}, \"ready\": {ready}, \"lag\": \
                             {{\"records\": {lag_records}, \"bytes\": {lag_bytes}}}, \
                             \"bootstraps\": {}}}\n",
                            escape(repl.leader()),
                            repl.bootstraps()
                        ),
                    );
                    if !ready {
                        resp.retry_after = Some(1);
                    }
                    Ok(resp)
                }
            }
        }
        "/metrics" => {
            require_method(req, "GET")?;
            let snap = state
                .recorder()
                .try_snapshot()
                .unwrap_or_else(|| MetricsSnapshot {
                    counters: Vec::new(),
                    hists: Vec::new(),
                    spans: Vec::new(),
                    elapsed_ns: 0,
                });
            let extras: Vec<(&str, String)> = match &state.replication {
                None => Vec::new(),
                Some(repl) => vec![("replication", repl.to_json())],
            };
            Ok(Response::json(
                200,
                render_snapshot_json_with("serve", 0, true, &snap, &extras),
            ))
        }
        path => {
            let mut parts = path.split('/').skip(1);
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some("v1"), Some(tenant), Some(action), None) => {
                    tenant_route(state, req, tenant, action)
                }
                _ => Err(ApiError::not_found(format!("no route {path}"))),
            }
        }
    }
}

fn tenant_route(
    state: &ServiceState,
    req: &Request,
    tenant: &str,
    action: &str,
) -> Result<Response, ApiError> {
    let budget = state.request_budget();
    if let Some(repl) = &state.replication {
        if matches!(action, "create" | "edit" | "reload") {
            // A follower never mutates Σ itself — every write arrives
            // via the leader's WAL. `421 Misdirected Request` plus a
            // `leader:` header tells the client where to go.
            let err = ApiError {
                status: 421,
                kind: "follower_read_only",
                message: format!(
                    "this replica serves reads only; send writes to the leader at {}",
                    repl.leader()
                ),
            };
            return Ok(err
                .to_response()
                .with_header("leader", repl.leader().to_string()));
        }
    }
    if action == "create" {
        require_method(req, "POST")?;
        let body = parse_body(req)?;
        let schema = body_str(&body, "schema")?;
        let deps = body_str_list(&body, "deps")?;
        let t = state.registry.create(tenant, schema, &deps, &budget)?;
        let r = t.reasoner.read().unwrap_or_else(PoisonError::into_inner);
        return Ok(Response::json(
            201,
            format!(
                "{{\"tenant\": {}, \"schema\": {}, \"sigma\": {}}}\n",
                escape(tenant),
                escape(&r.attr().to_string()),
                r.sigma().len()
            ),
        ));
    }
    let t = state
        .registry
        .get(tenant)
        .ok_or_else(|| ApiError::not_found(format!("no tenant {tenant:?}")))?;
    match action {
        "query" => {
            require_method(req, "POST")?;
            let body = parse_body(req)?;
            let r = t.reasoner.read().unwrap_or_else(PoisonError::into_inner);
            handle_query(state, &r, &body, &budget)
        }
        "edit" => {
            require_method(req, "POST")?;
            let body = parse_body(req)?;
            let mut r = t.reasoner.write().unwrap_or_else(PoisonError::into_inner);
            let mut wal = t.wal.lock().unwrap_or_else(PoisonError::into_inner);
            handle_edit(state, &mut r, wal.as_mut(), &body, &budget)
        }
        "cert" => {
            require_method(req, "GET")?;
            let dep = req
                .query()
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("dep=").map(percent_decode))
                })
                .ok_or_else(|| ApiError::bad_request("missing query parameter dep="))?;
            let r = t.reasoner.read().unwrap_or_else(PoisonError::into_inner);
            handle_cert(&r, &dep, &budget)
        }
        "sigma" => {
            require_method(req, "GET")?;
            let r = t.reasoner.read().unwrap_or_else(PoisonError::into_inner);
            let stats = r.cache_stats();
            let deps: Vec<String> = r
                .sigma()
                .iter()
                .zip(r.dep_ids())
                .map(|(d, id)| {
                    format!(
                        "{{\"id\": {id}, \"dep\": {}}}",
                        escape(&d.display_in(r.attr()))
                    )
                })
                .collect();
            Ok(Response::json(
                200,
                format!(
                    "{{\"tenant\": {}, \"schema\": {}, \"sigma\": [{}], \
                     \"cache\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \
                     \"retained\": {}, \"evicted\": {}}}}}\n",
                    escape(tenant),
                    escape(&r.attr().to_string()),
                    deps.join(", "),
                    stats.entries,
                    stats.hits,
                    stats.misses,
                    stats.retained,
                    stats.evicted
                ),
            ))
        }
        "reload" => {
            require_method(req, "POST")?;
            let body = parse_body(req)?;
            let text = body_str(&body, "deps")?;
            let mut r = t.reasoner.write().unwrap_or_else(PoisonError::into_inner);
            let mut wal = t.wal.lock().unwrap_or_else(PoisonError::into_inner);
            handle_reload(state, tenant, &mut r, wal.as_mut(), text, &budget)
        }
        "snapshot" => {
            require_method(req, "GET")?;
            let (payload, wal_id, from) = t.replication_snapshot()?;
            let bytes = nalist_store::encode_snapshot(&payload)
                .map_err(|e| ApiError::internal(format!("cannot encode snapshot: {e}")))?;
            Ok(Response::octets(200, bytes)
                .with_header("x-wal-id", wal_id.to_string())
                .with_header("x-wal-from", from.to_string()))
        }
        "wal" => {
            require_method(req, "GET")?;
            handle_wal(state, &t, req)
        }
        other => Err(ApiError::not_found(format!(
            "no tenant action {other:?} (want create, query, edit, reload, \
             cert, sigma, snapshot or wal)"
        ))),
    }
}

fn query_u64(req: &Request, key: &str) -> Result<Option<u64>, ApiError> {
    let Some(q) = req.query() else {
        return Ok(None);
    };
    for kv in q.split('&') {
        if let Some((k, v)) = kv.split_once('=') {
            if k == key {
                return v.parse::<u64>().map(Some).map_err(|_| {
                    ApiError::bad_request(format!(
                        "query parameter {key}= must be a non-negative integer, got {v:?}"
                    ))
                });
            }
        }
    }
    Ok(None)
}

/// `GET /v1/{t}/wal?from=<offset>&wait_ms=<n>`: ships verified raw log
/// bytes from `from`, cut at a record boundary. With `wait_ms`, an
/// empty answer long-polls: the handler re-checks the log every 25 ms
/// until a record lands or the wait expires — so a caught-up follower
/// learns about new edits in tens of milliseconds without hot-looping.
fn handle_wal(state: &ServiceState, t: &Tenant, req: &Request) -> Result<Response, ApiError> {
    let from = query_u64(req, "from")?
        .ok_or_else(|| ApiError::bad_request("missing query parameter from="))?;
    let wait_ms = query_u64(req, "wait_ms")?.unwrap_or(0).min(MAX_WAL_WAIT_MS);
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    let ship = loop {
        let ship = t.wal_slice(from, MAX_WAL_SHIPMENT)?;
        if ship.records > 0 || Instant::now() >= deadline {
            break ship;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    state.recorder().add(Counter::ReplRecordsShipped, ship.records);
    Ok(Response::octets(200, ship.bytes)
        .with_header("x-wal-id", ship.wal_id.to_string())
        .with_header("x-wal-start", from.to_string())
        .with_header("x-wal-end", ship.end.to_string())
        .with_header("x-wal-len", ship.log_len.to_string()))
}

/// `POST /v1/{t}/reload` with `{"deps": "<whole deps file>"}`: validate
/// the file *fully* — every line parsed, resolved and Σ-linted — and
/// only then swap Σ under the already-held write lock, journaling each
/// remove/add before applying it (the same WAL-first path as `/edit`).
/// A file with any error changes nothing and answers `400` carrying
/// the lint report's span diagnostics.
fn handle_reload(
    state: &ServiceState,
    tenant: &str,
    r: &mut Reasoner,
    mut wal: Option<&mut nalist_store::WalWriter>,
    deps_src: &str,
    budget: &Budget,
) -> Result<Response, ApiError> {
    let schema_src = r.attr().to_string();
    let report = nalist_lint::lint_spec_governed(&schema_src, deps_src, budget).map_err(|e| {
        match e {
            nalist_lint::SpecError::Resource(res) => ApiError::resource(res),
            // The schema came from our own reasoner; failing to parse it
            // back is a server bug, not a client error.
            nalist_lint::SpecError::Parse(p) => {
                ApiError::internal(format!("own schema does not lint: {p}"))
            }
        }
    })?;
    if report.errors() > 0 {
        let lint = nalist_lint::render_json(&report, "reload", deps_src);
        return Ok(Response::json(
            400,
            format!(
                "{{\"error\": {{\"status\": 400, \"kind\": \"invalid_deps\", \
                 \"message\": {}, \"lint\": {}}}}}\n",
                escape(&format!(
                    "{} error(s) in the posted deps file; nothing was applied",
                    report.errors()
                )),
                lint.trim_end()
            ),
        ));
    }
    let limits = nalist_types::parser::ParseLimits::from_budget(budget);
    let mut new_deps = Vec::new();
    for (i, line) in deps_src.lines().enumerate() {
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let dep = nalist_deps::Dependency::parse_with(r.attr(), text, limits).map_err(|e| {
            ApiError::internal(format!("line {}: linted clean but does not parse: {e}", i + 1))
        })?;
        dep.compile(r.algebra()).map_err(|m| {
            ApiError::internal(format!(
                "line {}: linted clean but does not compile: {m}",
                i + 1
            ))
        })?;
        new_deps.push((text.to_string(), dep));
    }
    let rec = Arc::clone(state.recorder());
    let append = |op: &WalOp, wal: &mut Option<&mut nalist_store::WalWriter>| {
        if let Some(w) = wal.as_deref_mut() {
            w.append(&op.encode(), budget, rec.as_ref())
                .map_err(|e| ApiError::internal(format!("WAL append failed: {e}")))?;
        }
        Ok::<(), ApiError>(())
    };
    let old: Vec<(String, nalist_deps::Dependency)> = r
        .sigma()
        .iter()
        .map(|d| (d.display_in(r.attr()), d.clone()))
        .collect();
    let (removed, added) = (old.len(), new_deps.len());
    for (text, dep) in old {
        append(&WalOp::Remove(text), &mut wal)?;
        r.remove(&dep).map_err(|e| ApiError::reasoner(&e))?;
    }
    for (text, dep) in new_deps {
        append(&WalOp::Add(text), &mut wal)?;
        // Cannot fail for a compiled-clean dependency short of budget
        // exhaustion, which leaves the log ahead of memory — the same
        // recoverable invariant as /edit.
        r.add(dep).map_err(|e| ApiError::reasoner(&e))?;
    }
    Ok(Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"removed\": {removed}, \"added\": {added}, \
             \"sigma\": {}, \"warnings\": {}}}\n",
            escape(tenant),
            r.sigma().len(),
            report.warnings()
        ),
    ))
}

fn handle_query(
    state: &ServiceState,
    r: &Reasoner,
    body: &Json,
    budget: &Budget,
) -> Result<Response, ApiError> {
    if let Some(q) = body.get("query") {
        let text = q
            .as_str()
            .ok_or_else(|| ApiError::bad_request("\"query\" must be a string"))?;
        let verdict = r
            .implies_str_governed(text, budget)
            .map_err(|e| ApiError::reasoner(&e))?;
        return Ok(Response::json(200, format!("{{\"implied\": {verdict}}}\n")));
    }
    let texts = body_str_list(body, "queries")?;
    if texts.is_empty() {
        return Err(ApiError::bad_request(
            "body needs \"query\" (string) or \"queries\" (non-empty array)",
        ));
    }
    let limits = nalist_types::parser::ParseLimits::from_budget(budget);
    let mut targets = Vec::with_capacity(texts.len());
    for (i, text) in texts.iter().enumerate() {
        let dep = nalist_deps::Dependency::parse_with(r.attr(), text, limits)
            .map_err(|e| ApiError::bad_request(format!("queries[{i}]: {e}")))?;
        targets.push(dep);
    }
    // The batch planner computes each distinct LHS once per request.
    let verdicts = r
        .implies_batch_governed_with(&targets, budget, state.batch_threads)
        .map_err(|e| ApiError::reasoner(&e))?;
    let mut any_resource = None;
    let rendered: Vec<String> = verdicts
        .iter()
        .map(|v| match v {
            Ok(b) => b.to_string(),
            Err(QueryError::Resource(res)) => {
                any_resource = Some(*res);
                "null".to_string()
            }
            Err(e) => format!("{{\"error\": {}}}", escape(&e.to_string())),
        })
        .collect();
    if let Some(res) = any_resource {
        return Err(ApiError::resource(res));
    }
    Ok(Response::json(
        200,
        format!("{{\"verdicts\": [{}]}}\n", rendered.join(", ")),
    ))
}

fn handle_edit(
    state: &ServiceState,
    r: &mut Reasoner,
    mut wal: Option<&mut nalist_store::WalWriter>,
    body: &Json,
    budget: &Budget,
) -> Result<Response, ApiError> {
    // Accept both a single {"op", "dep"} and {"edits": [{...}]}.
    let edits: Vec<(String, String)> = if let Some(arr) = body.get("edits") {
        let arr = arr
            .as_arr()
            .ok_or_else(|| ApiError::bad_request("\"edits\" must be an array"))?;
        arr.iter()
            .enumerate()
            .map(|(i, e)| {
                let op = e.get("op").and_then(Json::as_str).ok_or_else(|| {
                    ApiError::bad_request(format!("edits[{i}]: missing string field \"op\""))
                })?;
                let dep = e.get("dep").and_then(Json::as_str).ok_or_else(|| {
                    ApiError::bad_request(format!("edits[{i}]: missing string field \"dep\""))
                })?;
                Ok((op.to_string(), dep.to_string()))
            })
            .collect::<Result<_, ApiError>>()?
    } else {
        vec![(
            body_str(body, "op")?.to_string(),
            body_str(body, "dep")?.to_string(),
        )]
    };
    let limits = nalist_types::parser::ParseLimits::from_budget(budget);
    let rec = Arc::clone(state.recorder());
    let (mut adds, mut removes) = (0u64, 0u64);
    for (i, (op, text)) in edits.iter().enumerate() {
        budget.check_deadline().map_err(ApiError::resource)?;
        let here = |e: &dyn std::fmt::Display| ApiError::bad_request(format!("edits[{i}]: {e}"));
        let dep =
            nalist_deps::Dependency::parse_with(r.attr(), text, limits).map_err(|e| here(&e))?;
        // Validate fully *before* journaling: a record that cannot
        // replay must never reach the log.
        let compiled = dep.compile(r.algebra()).map_err(|m| here(&m))?;
        let wal_op = match op.as_str() {
            "add" => WalOp::Add(text.clone()),
            "remove" => {
                if !r.compiled_sigma().contains(&compiled) {
                    return Err(here(&format!("dependency not in Σ: {text}")));
                }
                WalOp::Remove(text.clone())
            }
            other => return Err(here(&format!("unknown op {other:?} (want add or remove)"))),
        };
        if let Some(w) = wal.as_deref_mut() {
            w.append(&wal_op.encode(), budget, rec.as_ref())
                .map_err(|e| ApiError::internal(format!("WAL append failed: {e}")))?;
        }
        match op.as_str() {
            "add" => {
                r.add(dep).map_err(|e| ApiError::reasoner(&e))?;
                adds += 1;
            }
            _ => {
                r.remove(&dep).map_err(|e| ApiError::reasoner(&e))?;
                removes += 1;
            }
        }
    }
    let stats = r.cache_stats();
    Ok(Response::json(
        200,
        format!(
            "{{\"adds\": {adds}, \"removes\": {removes}, \"sigma\": {}, \
             \"cache\": {{\"entries\": {}, \"retained\": {}, \"evicted\": {}}}}}\n",
            r.sigma().len(),
            stats.entries,
            stats.retained,
            stats.evicted
        ),
    ))
}

fn handle_cert(r: &Reasoner, dep_text: &str, budget: &Budget) -> Result<Response, ApiError> {
    let limits = nalist_types::parser::ParseLimits::from_budget(budget);
    let alg = r.algebra();
    let target = nalist_deps::Dependency::parse_with(r.attr(), dep_text, limits)
        .map_err(|e| ApiError::bad_request(format!("bad dependency: {e}")))?
        .compile(alg)
        .map_err(|e| ApiError::bad_request(e.to_string()))?;
    let proof = nalist_membership::certify_governed(alg, r.compiled_sigma(), &target, budget)
        .map_err(|e| match e {
            nalist_membership::CertifyError::Resource(res) => ApiError::resource(res),
            other => ApiError::internal(other.to_string()),
        })?;
    let (implied, cert) = match proof {
        Some(dag) => (
            true,
            nalist_membership::cert::implied_certificate(alg, r.compiled_sigma(), &target, &dag),
        ),
        None => {
            let w = nalist_membership::witness::refute_governed(
                alg,
                r.compiled_sigma(),
                &target,
                budget,
            )
            .map_err(|e| match e {
                nalist_membership::witness::WitnessError::Resource(res) => ApiError::resource(res),
                other => ApiError::internal(other.to_string()),
            })?
            .ok_or_else(|| ApiError::internal("not implied but no witness found".to_string()))?;
            (
                false,
                nalist_membership::cert::refuted_certificate(alg, r.compiled_sigma(), &target, &w),
            )
        }
    };
    Ok(Response::json(
        200,
        format!(
            "{{\"implied\": {implied}, \"certificate\": {}}}\n",
            cert.to_json().trim_end()
        ),
    ))
}
