//! Open-loop traffic generation against a running server.
//!
//! *Open-loop* means arrivals follow a schedule fixed before any
//! response comes back — a Poisson process at the offered rate — so a
//! slow server cannot silently throttle the load and flatter its own
//! latency numbers (the coordinated-omission trap). Each connection
//! thread owns a slice of the offered rate with exponential
//! inter-arrival gaps; when the server falls behind, the generator
//! reports the achieved rate honestly instead of stretching the gaps.
//!
//! The workload is the service's intended shape: zipf-skewed query
//! pools per tenant (a few hot LHSs rewarded by the basis cache, a
//! long cold tail), mixed with add/remove churn that exercises
//! selective eviction and WAL journaling.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nalist_algebra::Algebra;
use nalist_gen::attr_with_atoms;
use nalist_gen::sigma_gen::random_dep;
use rand::prelude::*;

/// Loadgen parameters; defaults give a small smoke-scale run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Tenants to create and spread traffic over (named `lg0`, `lg1`, …).
    pub tenants: usize,
    /// Atoms per generated tenant schema.
    pub atoms: usize,
    /// Dependencies in each tenant's pool; the first half seeds Σ, the
    /// second half is the add/remove churn set.
    pub pool: usize,
    /// Offered load, requests per second across all connections.
    pub rps: f64,
    /// Run length.
    pub duration_ms: u64,
    /// Concurrent keep-alive connections (threads).
    pub conns: usize,
    /// Fraction of requests that are Σ edits (half adds, half removes).
    pub edit_ratio: f64,
    /// Zipf skew `s` for query selection (`0.0` = uniform).
    pub zipf_s: f64,
    /// RNG seed: same seed, same schedule and request sequence.
    pub seed: u64,
    /// Skip tenant creation (they already exist from a previous run).
    pub reuse_tenants: bool,
    /// A follower address (`host:port`) to verify after the run: wait
    /// for catch-up, require byte-identical query and Σ answers from
    /// leader and follower, and run follower certificates through the
    /// independent trusted checker.
    pub verify: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7070".to_string(),
            tenants: 2,
            atoms: 10,
            pool: 64,
            rps: 200.0,
            duration_ms: 2_000,
            conns: 4,
            edit_ratio: 0.1,
            zipf_s: 1.1,
            seed: 42,
            reuse_tenants: false,
            verify: None,
        }
    }
}

/// What `--verify` measured against the follower.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// The follower that was verified.
    pub follower: String,
    /// Time from end of load until the follower reported ready with
    /// zero lag, milliseconds.
    pub catchup_ms: u64,
    /// Σ listings compared (one per tenant, cache stats excluded).
    pub sigma_compared: u64,
    /// Σ listings that never became byte-identical.
    pub sigma_mismatches: u64,
    /// Queries answered by both leader and follower.
    pub queries_compared: u64,
    /// Query answers that were not byte-identical.
    pub query_mismatches: u64,
    /// Follower certificates run through the trusted checker.
    pub certs_checked: u64,
    /// Certificates the checker rejected.
    pub cert_failures: u64,
}

impl VerifyReport {
    /// Whether any comparison failed.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.sigma_mismatches > 0 || self.query_mismatches > 0 || self.cert_failures > 0
    }

    /// Human-readable summary lines.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "verify vs {}: caught up in {} ms; {} sigma ({} mismatched), \
             {} queries ({} mismatched), {} certs checked ({} rejected)\n",
            self.follower,
            self.catchup_ms,
            self.sigma_compared,
            self.sigma_mismatches,
            self.queries_compared,
            self.query_mismatches,
            self.certs_checked,
            self.cert_failures
        )
    }

    /// One JSON object for benchmark rows.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"follower\": {}, \"catchup_ms\": {}, \"sigma_compared\": {}, \
             \"sigma_mismatches\": {}, \"queries_compared\": {}, \"query_mismatches\": {}, \
             \"certs_checked\": {}, \"cert_failures\": {}}}",
            json_escape(&self.follower),
            self.catchup_ms,
            self.sigma_compared,
            self.sigma_mismatches,
            self.queries_compared,
            self.query_mismatches,
            self.certs_checked,
            self.cert_failures
        )
    }
}

/// What a run measured. Latencies are exact sample percentiles in
/// microseconds, not histogram bounds.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests sent (== responses awaited; the loop is synchronous
    /// per connection).
    pub sent: u64,
    /// `2xx` answers.
    pub ok: u64,
    /// `429` budget rejections.
    pub status_429: u64,
    /// `503` admission rejections.
    pub status_503: u64,
    /// Any other non-`2xx` status.
    pub other_status: u64,
    /// Socket-level failures (includes connections refused at
    /// accept-queue overflow after the `503` is written).
    pub io_errors: u64,
    /// Reconnects performed after a server-closed connection.
    pub reconnects: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
    /// Wall-clock run length, milliseconds.
    pub elapsed_ms: u64,
    /// `sent / elapsed` — compare against the offered rate.
    pub achieved_rps: f64,
    /// The offered rate, echoed for the report.
    pub offered_rps: f64,
    /// Follower verification results, when `--verify` asked for them.
    pub verify: Option<VerifyReport>,
}

impl LoadgenReport {
    /// Human-readable summary (the `nalist loadgen` output).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "offered {:.0} req/s, achieved {:.0} req/s over {} ms\n",
            self.offered_rps, self.achieved_rps, self.elapsed_ms
        ));
        out.push_str(&format!(
            "sent {}: {} ok, {} throttled (429), {} shed (503), {} other, {} io errors\n",
            self.sent, self.ok, self.status_429, self.status_503, self.other_status, self.io_errors
        ));
        out.push_str(&format!(
            "latency: p50 {} µs, p99 {} µs, mean {} µs\n",
            self.p50_us, self.p99_us, self.mean_us
        ));
        if let Some(v) = &self.verify {
            out.push_str(&v.render());
        }
        out
    }

    /// One JSON object (a BENCH_serve.json row fragment).
    #[must_use]
    pub fn to_json(&self) -> String {
        let verify = match &self.verify {
            None => String::new(),
            Some(v) => format!(", \"verify\": {}", v.to_json()),
        };
        format!(
            "{{\"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \"sent\": {}, \"ok\": {}, \
             \"rejects_429\": {}, \"rejects_503\": {}, \"other_status\": {}, \"io_errors\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {}, \"elapsed_ms\": {}{verify}}}",
            self.offered_rps,
            self.achieved_rps,
            self.sent,
            self.ok,
            self.status_429,
            self.status_503,
            self.other_status,
            self.io_errors,
            self.p50_us,
            self.p99_us,
            self.mean_us,
            self.elapsed_ms
        )
    }
}

/// A blocking HTTP/1.1 client on one keep-alive connection.
#[derive(Debug)]
pub(crate) struct Client {
    addr: String,
    stream: Option<TcpStream>,
    /// Reconnects performed (server closed or refused).
    pub reconnects: u64,
}

impl Client {
    pub(crate) fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            stream: None,
            reconnects: 0,
        }
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect(&self.addr)?;
            s.set_read_timeout(Some(Duration::from_secs(30)))?;
            s.set_nodelay(true)?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One request/response exchange; reconnects once if the pooled
    /// connection turns out to be dead.
    pub(crate) fn roundtrip(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let had_conn = self.stream.is_some();
        match self.try_roundtrip(method, target, body) {
            Ok(done) => Ok(done),
            Err(e) if had_conn => {
                // The server may have closed the keep-alive socket
                // (timeout, SIGTERM, connection cap): retry once fresh.
                self.stream = None;
                self.reconnects += 1;
                let out = self.try_roundtrip(method, target, body);
                if out.is_err() {
                    self.stream = None;
                }
                out.map_err(|_| e)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn try_roundtrip(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let stream = self.connect()?;
        let body = body.unwrap_or("");
        let req = format!(
            "{method} {target} HTTP/1.1\r\nhost: nalist\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes())?;
        stream.flush()?;
        let (status, body, close) = read_response(stream)?;
        if close {
            self.stream = None;
        }
        Ok((status, body))
    }
}

/// Reads one response; returns (status, body, server-asked-to-close).
fn read_response(stream: &mut TcpStream) -> io::Result<(u16, String, bool)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((status, String::from_utf8_lossy(&body).into_owned(), close))
}

/// One tenant's generated workload material.
struct TenantPool {
    name: String,
    schema: String,
    deps: Vec<String>,
}

/// Zipf sampler over `0..n` via a precomputed CDF and binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n.max(1));
        let mut acc = 0.0;
        for k in 1..=n.max(1) {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cdf.last().expect("non-empty cdf");
        let u = rng.gen_range(0.0..total);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn json_escape(s: &str) -> String {
    nalist_types::json::escape(s)
}

/// Builds the per-tenant schema + dependency pools, deterministically
/// from the seed.
fn build_pools(cfg: &LoadgenConfig) -> Vec<TenantPool> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.tenants.max(1))
        .map(|t| {
            let attr = attr_with_atoms(&mut rng, cfg.atoms.max(2));
            let alg = Algebra::new(&attr);
            let deps: Vec<String> = (0..cfg.pool.max(2))
                .map(|_| random_dep(&mut rng, &alg, 0.3, 0.3).render(&alg))
                .collect();
            TenantPool {
                name: format!("lg{t}"),
                schema: attr.to_string(),
                deps,
            }
        })
        .collect()
}

/// Creates the loadgen tenants over the wire. Σ is seeded with the
/// first half of each pool; the second half churns.
fn create_tenants(cfg: &LoadgenConfig, pools: &[TenantPool]) -> Result<(), String> {
    let mut client = Client::new(&cfg.addr);
    for pool in pools {
        let seed_sigma: Vec<String> = pool.deps[..pool.deps.len() / 2]
            .iter()
            .map(|d| json_escape(d))
            .collect();
        let body = format!(
            "{{\"schema\": {}, \"deps\": [{}]}}",
            json_escape(&pool.schema),
            seed_sigma.join(", ")
        );
        let (status, resp) = client
            .roundtrip("POST", &format!("/v1/{}/create", pool.name), Some(&body))
            .map_err(|e| format!("create {}: {e}", pool.name))?;
        match status {
            201 => {}
            409 if cfg.reuse_tenants => {}
            // A follower rejects creates (421) but mirrors the leader's
            // tenants — under reuse they are already there, replicated.
            421 if cfg.reuse_tenants => {}
            _ => return Err(format!("create {}: HTTP {status}: {resp}", pool.name)),
        }
    }
    Ok(())
}

/// Runs the configured workload. Tenants are created first (unless
/// `reuse_tenants` finds them); then `conns` threads each follow their
/// own Poisson arrival schedule for `duration_ms`.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let pools = Arc::new(build_pools(cfg));
    create_tenants(cfg, &pools)?;
    let conns = cfg.conns.max(1);
    let per_conn_rate = (cfg.rps / conns as f64).max(0.001);
    let duration = Duration::from_millis(cfg.duration_ms);
    let started = Instant::now();
    let mut handles = Vec::new();
    for conn_ix in 0..conns {
        let cfg = cfg.clone();
        let pools = Arc::clone(&pools);
        handles.push(std::thread::spawn(move || {
            conn_worker(&cfg, &pools, conn_ix, per_conn_rate, duration)
        }));
    }
    let mut report = LoadgenReport {
        offered_rps: cfg.rps,
        ..LoadgenReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let part = h
            .join()
            .map_err(|_| "loadgen worker panicked".to_string())?;
        report.sent += part.sent;
        report.ok += part.ok;
        report.status_429 += part.status_429;
        report.status_503 += part.status_503;
        report.other_status += part.other_status;
        report.io_errors += part.io_errors;
        report.reconnects += part.reconnects;
        latencies.extend(part.latencies_us);
    }
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    if report.elapsed_ms > 0 {
        report.achieved_rps = report.sent as f64 * 1000.0 / report.elapsed_ms as f64;
    }
    latencies.sort_unstable();
    if !latencies.is_empty() {
        let at = |q: f64| {
            let ix = ((q * latencies.len() as f64).ceil() as usize).max(1) - 1;
            latencies[ix.min(latencies.len() - 1)]
        };
        report.p50_us = at(0.50);
        report.p99_us = at(0.99);
        report.mean_us = latencies.iter().sum::<u64>() / latencies.len() as u64;
    }
    if let Some(follower) = &cfg.verify {
        report.verify = Some(verify_follower(cfg, &pools, follower)?);
    }
    Ok(report)
}

/// How long `--verify` waits for the follower to catch up after the
/// load stops before calling the run a failure.
const VERIFY_CATCHUP_TIMEOUT: Duration = Duration::from_secs(60);

/// Queries compared per tenant, and certificates checked per tenant.
const VERIFY_QUERIES: usize = 12;
const VERIFY_CERTS: usize = 4;

/// Percent-encodes a query-string value (inverse of
/// [`crate::http::percent_decode`]).
fn percent_encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~') {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// The Σ listing with the session-local cache stats stripped: the part
/// of a `/sigma` answer that must be byte-identical between leader and
/// follower.
fn sigma_prefix(body: &str) -> &str {
    body.split(", \"cache\"").next().unwrap_or(body)
}

/// The post-run verification pass: catch-up wait, byte-identical Σ and
/// query answers, follower certificates through the trusted checker.
fn verify_follower(
    cfg: &LoadgenConfig,
    pools: &[TenantPool],
    follower: &str,
) -> Result<VerifyReport, String> {
    let mut report = VerifyReport {
        follower: follower.to_string(),
        ..VerifyReport::default()
    };
    let t0 = Instant::now();
    let mut fc = Client::new(follower);
    let mut lc = Client::new(&cfg.addr);
    // 1. Wait until the follower reports ready. Readiness alone can
    // race the last WAL poll, so the authoritative catch-up signal is
    // the Σ comparison below, retried until it matches.
    loop {
        if let Ok((200, _)) = fc.roundtrip("GET", "/healthz", None) {
            break;
        }
        if t0.elapsed() > VERIFY_CATCHUP_TIMEOUT {
            return Err(format!("follower {follower} never became ready"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // 2. Per tenant: Σ must become byte-identical (modulo cache stats).
    for pool in pools {
        let target = format!("/v1/{}/sigma", pool.name);
        report.sigma_compared += 1;
        let mut matched = false;
        while t0.elapsed() <= VERIFY_CATCHUP_TIMEOUT {
            let (ls, lb) = lc
                .roundtrip("GET", &target, None)
                .map_err(|e| format!("leader sigma {}: {e}", pool.name))?;
            let fs = fc.roundtrip("GET", &target, None);
            if let (200, Ok((200, fb))) = (ls, fs) {
                if sigma_prefix(&lb) == sigma_prefix(&fb) {
                    matched = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if !matched {
            report.sigma_mismatches += 1;
        }
    }
    report.catchup_ms = t0.elapsed().as_millis() as u64;
    // 3. The same queries to both sides must answer byte-identically.
    for pool in pools {
        let target = format!("/v1/{}/query", pool.name);
        for dep in pool.deps.iter().take(VERIFY_QUERIES) {
            let body = format!("{{\"query\": {}}}", json_escape(dep));
            let (ls, lb) = lc
                .roundtrip("POST", &target, Some(&body))
                .map_err(|e| format!("leader query {}: {e}", pool.name))?;
            let (fs, fb) = fc
                .roundtrip("POST", &target, Some(&body))
                .map_err(|e| format!("follower query {}: {e}", pool.name))?;
            report.queries_compared += 1;
            if ls != fs || lb != fb {
                report.query_mismatches += 1;
            }
        }
    }
    // 4. Follower certificates must pass the independent checker,
    // verified against the *leader's* authoritative schema + Σ.
    let budget = nalist_guard::Budget::unlimited();
    for pool in pools {
        let (status, sigma_body) = lc
            .roundtrip("GET", &format!("/v1/{}/sigma", pool.name), None)
            .map_err(|e| format!("leader sigma {}: {e}", pool.name))?;
        if status != 200 {
            continue;
        }
        let doc = nalist_types::json::parse(&sigma_body)
            .map_err(|e| format!("sigma {}: {e}", pool.name))?;
        let schema = doc
            .get("schema")
            .and_then(nalist_types::json::Json::as_str)
            .ok_or_else(|| format!("sigma {}: no schema", pool.name))?
            .to_string();
        let deps_src: String = doc
            .get("sigma")
            .and_then(nalist_types::json::Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|d| d.get("dep").and_then(nalist_types::json::Json::as_str))
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .unwrap_or_default();
        for dep in pool.deps.iter().take(VERIFY_CERTS) {
            let target = format!("/v1/{}/cert?dep={}", pool.name, percent_encode(dep));
            let (status, cert_body) = fc
                .roundtrip("GET", &target, None)
                .map_err(|e| format!("follower cert {}: {e}", pool.name))?;
            if status != 200 {
                report.certs_checked += 1;
                report.cert_failures += 1;
                continue;
            }
            report.certs_checked += 1;
            let ok = nalist_types::json::parse(&cert_body)
                .ok()
                .and_then(|doc| doc.get("certificate").map(nalist_types::json::Json::render))
                .and_then(|src| nalist_check::Certificate::from_json(&src).ok())
                .and_then(|cert| nalist_check::verify(&schema, &deps_src, &cert, &budget).ok())
                .is_some();
            if !ok {
                report.cert_failures += 1;
            }
        }
    }
    Ok(report)
}

/// Per-thread tallies; merged by [`run`].
struct ConnPart {
    sent: u64,
    ok: u64,
    status_429: u64,
    status_503: u64,
    other_status: u64,
    io_errors: u64,
    reconnects: u64,
    latencies_us: Vec<u64>,
}

fn conn_worker(
    cfg: &LoadgenConfig,
    pools: &[TenantPool],
    conn_ix: usize,
    rate: f64,
    duration: Duration,
) -> ConnPart {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x9E37 + conn_ix as u64 * 0x1000_0001));
    let zipf = Zipf::new(pools[0].deps.len(), cfg.zipf_s);
    let mut client = Client::new(&cfg.addr);
    let mut part = ConnPart {
        sent: 0,
        ok: 0,
        status_429: 0,
        status_503: 0,
        other_status: 0,
        io_errors: 0,
        reconnects: 0,
        latencies_us: Vec::new(),
    };
    // Per-(tenant, churn dep) toggle so removes target deps this
    // thread added: churn indices are disjoint across threads.
    let churn_base = pools[0].deps.len() / 2;
    let mut churn_added: Vec<Vec<bool>> = pools
        .iter()
        .map(|p| vec![false; p.deps.len() - churn_base])
        .collect();
    let start = Instant::now();
    // Open loop: the next arrival time is fixed before the previous
    // response arrives.
    let mut next_at = Duration::ZERO;
    loop {
        // Exponential inter-arrival gap: -ln(U)/λ.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        next_at += Duration::from_secs_f64((-u.ln()) / rate);
        if next_at >= duration {
            break;
        }
        let now = start.elapsed();
        if next_at > now {
            std::thread::sleep(next_at - now);
        }
        let tenant_ix = rng.gen_range(0..pools.len());
        let pool = &pools[tenant_ix];
        // Churn indices are striped across threads (`i % conns ==
        // conn_ix`), so a remove always targets a dep this very thread
        // added — no cross-thread races on Σ membership.
        let conn_count = cfg.conns.max(1);
        let span = pool.deps.len() - churn_base;
        let owned = if conn_ix < span {
            (span - conn_ix).div_ceil(conn_count)
        } else {
            0
        };
        let (target, body);
        if owned > 0 && rng.gen_bool(cfg.edit_ratio.clamp(0.0, 1.0)) {
            let k = conn_ix + rng.gen_range(0..owned) * conn_count;
            let added = &mut churn_added[tenant_ix][k];
            let op = if *added { "remove" } else { "add" };
            *added = !*added;
            target = format!("/v1/{}/edit", pool.name);
            body = Some(format!(
                "{{\"op\": \"{op}\", \"dep\": {}}}",
                json_escape(&pool.deps[churn_base + k])
            ));
        } else {
            let k = zipf.sample(&mut rng);
            target = format!("/v1/{}/query", pool.name);
            body = Some(format!("{{\"query\": {}}}", json_escape(&pool.deps[k])));
        }
        let method = "POST";
        let t0 = Instant::now();
        part.sent += 1;
        match client.roundtrip(method, &target, body.as_deref()) {
            Ok((status, _)) => {
                part.latencies_us.push(t0.elapsed().as_micros() as u64);
                match status {
                    200 | 201 => part.ok += 1,
                    429 => part.status_429 += 1,
                    503 => part.status_503 += 1,
                    _ => part.other_status += 1,
                }
            }
            Err(_) => part.io_errors += 1,
        }
    }
    part.reconnects = client.reconnects;
    part
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampling_is_skewed_toward_low_indices() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 50];
        for _ in 0..5_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "{counts:?}");
        assert!(counts[0] > counts[49], "{counts:?}");
        assert!(counts.iter().sum::<u32>() == 5_000);
    }

    #[test]
    fn pools_are_deterministic_per_seed() {
        let cfg = LoadgenConfig::default();
        let a = build_pools(&cfg);
        let b = build_pools(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.deps, y.deps);
        }
    }
}
