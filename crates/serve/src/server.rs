//! The daemon: a blocking acceptor, a bounded admission queue, and a
//! fixed worker pool with keep-alive connection reuse.
//!
//! Admission control happens in two layers, both of which answer with
//! structured errors instead of queueing without bound:
//!
//! 1. **the accept queue** — accepted sockets wait in a bounded
//!    `VecDeque`; when it is full the acceptor answers `503` and
//!    closes, counting `admission_rejects`. Queue depth at each
//!    admission is recorded in the `queue_depth` histogram, so the
//!    overload point is visible in `/metrics` before it is hit.
//! 2. **per-request budgets** — each request runs under a fresh
//!    [`Budget`] built from the server-wide fuel/deadline caps; an
//!    exhausted budget answers `429`.
//!
//! A request that panics is confined by `catch_unwind`: the worker
//! answers `500`, counts `request_panics`, and moves on. Locks the
//! panicking request may have poisoned are re-entered via
//! `PoisonError::into_inner` throughout the crate, matching the
//! recorder's own policy.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use nalist_guard::Budget;
use nalist_obs::{Counter, Hist, Recorder};

use crate::api::{self, ApiError, ServiceState};
use crate::http::{read_request, RecvError, Response};
use crate::replica::ReplStatus;
use crate::tenant::Registry;

/// Server configuration; [`ServerConfig::default`] is a sane local
/// setup (ephemeral port, 4 workers, queue of 64).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` for ephemeral).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this the
    /// acceptor sheds with `503`.
    pub queue_cap: usize,
    /// Per-request fuel cap (`None` = unlimited).
    pub fuel: Option<u64>,
    /// Per-request deadline in milliseconds (`None` = unlimited).
    pub deadline_ms: Option<u64>,
    /// Socket read timeout in milliseconds: how long a worker waits
    /// for a slow client before answering `408` (mid-request) or
    /// recycling the connection (idle keep-alive).
    pub read_timeout_ms: u64,
    /// Durability directory: tenant snapshots + WALs. `None` runs
    /// in-memory.
    pub wal_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            fuel: None,
            deadline_ms: Some(10_000),
            read_timeout_ms: 5_000,
            wal_dir: None,
        }
    }
}

/// The bounded admission queue.
#[derive(Debug)]
struct Queue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    cap: usize,
    stop: AtomicBool,
}

impl Queue {
    fn push(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.cap {
            return Err(stream);
        }
        q.push_back(stream);
        let depth = q.len();
        drop(q);
        self.ready.notify_one();
        Ok(depth)
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(s) = q.pop_front() {
                return Some(s);
            }
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A running server; dropping the handle does *not* stop it — call
/// [`Server::shutdown`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    queue: Arc<Queue>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// Starts a server. The recorder receives every counter and histogram
/// the daemon produces and backs `GET /metrics` (via
/// [`Recorder::try_snapshot`]); pass a
/// [`nalist_obs::MetricsRecorder`] unless you want the endpoint empty.
pub fn start(cfg: &ServerConfig, rec: Arc<dyn Recorder>) -> Result<Server, ApiError> {
    start_with_replication(cfg, rec, None)
}

/// [`start`] with a replication status attached: the follower entry
/// point ([`crate::replica::start_follower`]) passes `Some`, turning
/// the routes into their read-only replica variants.
pub fn start_with_replication(
    cfg: &ServerConfig,
    rec: Arc<dyn Recorder>,
    replication: Option<Arc<ReplStatus>>,
) -> Result<Server, ApiError> {
    let registry = Registry::open(cfg.wal_dir.clone(), Arc::clone(&rec))?;
    let state = Arc::new(ServiceState {
        registry,
        fuel: cfg.fuel,
        deadline: cfg.deadline_ms.map(Duration::from_millis),
        batch_threads: nalist_membership::default_batch_threads(),
        replication,
    });
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| ApiError::internal(format!("cannot bind {}: {e}", cfg.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ApiError::internal(format!("no local addr: {e}")))?;
    let queue = Arc::new(Queue {
        inner: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        cap: cfg.queue_cap.max(1),
        stop: AtomicBool::new(false),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    let read_timeout = Duration::from_millis(cfg.read_timeout_ms.max(1));
    for _ in 0..cfg.workers.max(1) {
        let queue = Arc::clone(&queue);
        let state = Arc::clone(&state);
        let rec = Arc::clone(&rec);
        threads.push(std::thread::spawn(move || {
            while let Some(stream) = queue.pop() {
                handle_connection(stream, &state, rec.as_ref(), read_timeout);
            }
        }));
    }
    {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        let rec = Arc::clone(&rec);
        threads.push(std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Small request/response pairs on keep-alive connections
                // hit the Nagle + delayed-ACK stall (~40 ms per round
                // trip) unless we disable coalescing.
                let _ = stream.set_nodelay(true);
                rec.add(Counter::ConnsAccepted, 1);
                match queue.push(stream) {
                    Ok(depth) => rec.observe(Hist::QueueDepth, depth as u64),
                    Err(mut rejected) => {
                        rec.add(Counter::AdmissionRejects, 1);
                        let resp = ApiError {
                            status: 503,
                            kind: "overloaded",
                            message: "admission queue is full; retry later".to_string(),
                        }
                        .to_response()
                        .closing();
                        let _ = resp.write_to(&mut rejected);
                        let _ = rejected.flush();
                    }
                }
            }
            // Unblock any workers still waiting on the queue.
            queue.stop.store(true, Ordering::SeqCst);
            queue.ready.notify_all();
        }));
    }
    Ok(Server {
        addr,
        state,
        queue,
        stop,
        threads,
    })
}

impl Server {
    /// The actually-bound address (resolves `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (tests compare serve-path answers
    /// against direct reasoner calls through this).
    #[must_use]
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Graceful stop: no new connections, workers drain the queue and
    /// exit. In-flight requests finish; established idle keep-alive
    /// connections are *not* waited for beyond the read timeout.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() so the acceptor sees the flag.
        let _ = TcpStream::connect(self.addr);
        self.queue.ready.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn recv_error_response(e: &RecvError) -> Option<Response> {
    let err = match e {
        RecvError::Closed | RecvError::Io(_) => return None,
        RecvError::Timeout => ApiError {
            status: 408,
            kind: "timeout",
            message: "request not received within the read timeout".to_string(),
        },
        RecvError::HeadTooLarge => ApiError {
            status: 431,
            kind: "head_too_large",
            message: format!("request head exceeds {} bytes", crate::http::MAX_HEAD_BYTES),
        },
        RecvError::BodyTooLarge => ApiError {
            status: 413,
            kind: "body_too_large",
            message: format!("request body exceeds {} bytes", crate::http::MAX_BODY_BYTES),
        },
        RecvError::Malformed(detail) => ApiError {
            status: 400,
            kind: "malformed",
            message: detail.clone(),
        },
    };
    Some(err.to_response().closing())
}

/// Serves one connection until the client closes, errors, or asks to.
fn handle_connection(
    mut stream: TcpStream,
    state: &ServiceState,
    rec: &dyn Recorder,
    read_timeout: Duration,
) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let mut leftover = Vec::new();
    let mut first = true;
    loop {
        let req = match read_request(&mut stream, &mut leftover) {
            Ok(req) => req,
            Err(e) => {
                if let Some(resp) = recv_error_response(&e) {
                    let _ = resp.write_to(&mut stream);
                }
                return;
            }
        };
        if !first {
            rec.add(Counter::KeepaliveReuses, 1);
        }
        first = false;
        rec.add(Counter::HttpRequests, 1);
        let t0 = Instant::now();
        // Panic isolation: a crashing handler answers 500 and the
        // worker lives on. The state is safe to reuse because every
        // lock in the crate re-enters poisoned guards.
        let mut resp = match catch_unwind(AssertUnwindSafe(|| api::handle(state, &req))) {
            Ok(resp) => resp,
            Err(_) => {
                rec.add(Counter::RequestPanics, 1);
                ApiError::internal("request handler panicked".to_string()).to_response()
            }
        };
        rec.observe(Hist::RequestNs, t0.elapsed().as_nanos() as u64);
        if req.close {
            resp.close = true;
        }
        if resp.write_to(&mut stream).is_err() {
            return;
        }
        if resp.close {
            return;
        }
    }
}

/// Convenience used by the CLI and tests: a per-request budget
/// equivalent to what the server builds, for answer-parity checks.
#[must_use]
pub fn request_budget(cfg: &ServerConfig) -> Budget {
    let mut b = Budget::unlimited();
    if let Some(fuel) = cfg.fuel {
        b = b.with_fuel(fuel);
    }
    if let Some(ms) = cfg.deadline_ms {
        b = b.with_deadline_in(Duration::from_millis(ms));
    }
    b
}
