//! # nalist-serve
//!
//! A zero-dependency multi-tenant reasoning service: the long-lived
//! daemon behind `nalist serve`, turning the library's membership
//! machinery (Algorithm 5.1 of Hartmann & Link 2004) into a wire
//! protocol.
//!
//! The stack is deliberately boring — blocking `std::net` sockets, a
//! fixed worker-thread pool, hand-rolled HTTP/1.1 — because every
//! exotic ingredient is already supplied by the crates underneath:
//!
//! * **many named schemas** — one warm [`Reasoner`] per tenant behind
//!   an `RwLock` ([`tenant`]): queries share a read lock, Σ edits take
//!   the write lock, and each tenant is an independent closure system
//!   whose cache no other tenant can touch;
//! * **admission control** — a bounded accept queue plus per-request
//!   [`Budget`]s ([`server`]): overload answers `503`/`429` with
//!   structured JSON instead of unbounded latency, and a panicking
//!   request is contained by `catch_unwind` without taking its worker
//!   down;
//! * **durability** — tenant edits are journaled to a write-ahead log
//!   *before* they are applied ([`tenant`]), so a `SIGTERM`ed daemon
//!   always leaves a recoverable `snapshot + WAL` pair;
//! * **observability** — the server reports through [`nalist_obs`]
//!   counters and histograms only (no per-request spans: a daemon's
//!   span buffer must stay bounded), and `GET /metrics` serves the
//!   same schema-versioned JSON document `--metrics` writes.
//!
//! [`loadgen`] is the matching open-loop traffic generator: Poisson
//! arrivals, zipf-skewed query pools, mixed edit/query traffic — the
//! measurement half of the E-SERVE experiment.
//!
//! [`replica`] adds leader/follower replication on top: a follower
//! bootstraps each tenant from a shipped snapshot, tails the leader's
//! WAL through the same replay primitive crash recovery uses (state is
//! bit-identical by construction), serves reads locally and rejects
//! writes with `421` plus a pointer at the leader.
//!
//! [`Reasoner`]: nalist_membership::Reasoner
//! [`Budget`]: nalist_guard::Budget

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod loadgen;
pub mod replica;
pub mod server;
pub mod tenant;

pub use api::{ApiError, ServiceState};
pub use http::{Request, Response};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use replica::{start_follower, Follower, FollowerConfig, ReplStatus};
pub use server::{Server, ServerConfig};
pub use tenant::{Registry, Tenant};
