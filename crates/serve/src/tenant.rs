//! Tenant lifecycle: one long-lived [`Reasoner`] per named schema,
//! with optional snapshot + write-ahead-log durability per tenant.
//!
//! Locking discipline: queries share `reasoner.read()`; Σ edits take
//! `reasoner.write()` and, while holding it, journal to the tenant's
//! WAL *before* applying — so the log is always at least as new as the
//! in-memory state and a killed daemon recovers bit-identically via
//! [`nalist_membership::recover`]. Tenants are fully independent:
//! nothing is shared between two [`Tenant`]s but the process, so one
//! tenant's edits cannot evict another's cache entries by construction.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use nalist_guard::Budget;
use nalist_membership::{recover, snapshot_payload, write_reasoner_snapshot, Reasoner, WalOp};
use nalist_obs::{site, Recorder};
use nalist_store::WalWriter;
use nalist_types::parser::{parse_attr_with, ParseLimits};

use crate::api::ApiError;

/// Longest accepted tenant name; names are path components, so the
/// alphabet is restricted to `[A-Za-z0-9_-]`.
pub const MAX_TENANT_NAME: usize = 64;

/// Validates a tenant name (used as a WAL/snapshot file stem).
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// One tenant: a named schema with its warm reasoner and, when the
/// server runs durable, its open write-ahead log.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    /// Queries take the read lock, Σ edits the write lock.
    pub reasoner: RwLock<Reasoner>,
    /// The open journal, `None` when the server runs without
    /// `--wal-dir`. Held *inside* the reasoner write lock during
    /// edits, so journal order always matches apply order.
    pub wal: Mutex<Option<WalWriter>>,
    /// Identity of the current WAL incarnation, regenerated every time
    /// a fresh log is started (tenant creation, compaction on
    /// restart). A follower that sees the id change knows its byte
    /// offsets are meaningless and must re-snapshot — the offset
    /// handshake's compaction detector. `0` for in-memory tenants.
    wal_id: u64,
}

/// Monotone component of [`fresh_wal_id`]; the wall-clock component
/// separates ids across process restarts.
static NEXT_WAL_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_wal_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let seq = NEXT_WAL_ID.fetch_add(1, Ordering::Relaxed);
    // Mix so ids stay distinct even with a coarse clock; never 0.
    (nanos ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(std::process::id()) << 32))
        .max(1)
}

/// What `GET /v1/{t}/wal?from=` ships: verified raw log bytes cut at a
/// record boundary, plus the offsets a follower needs to keep tailing.
#[derive(Debug)]
pub struct WalShipment {
    /// Raw log bytes starting at the requested offset, ending at a
    /// record boundary (re-verifiable with
    /// [`nalist_store::parse_wal_segment`]).
    pub bytes: Vec<u8>,
    /// Offset one past the last record in `bytes` — the follower's
    /// next `from`.
    pub end: u64,
    /// Current log length: `log_len - end` is the byte lag a capped
    /// shipment leaves behind.
    pub log_len: u64,
    /// Complete records in `bytes`.
    pub records: u64,
    /// The WAL incarnation the offsets belong to.
    pub wal_id: u64,
}

impl Tenant {
    /// The tenant's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current WAL incarnation id (`0` for in-memory tenants).
    #[must_use]
    pub fn wal_id(&self) -> u64 {
        self.wal_id
    }

    /// A consistent `(snapshot payload, wal_id, wal offset)` triple
    /// for follower bootstrap: the payload reflects every journaled
    /// op, and tailing the WAL from the returned offset replays
    /// exactly what comes after. Errors when the tenant is not
    /// durable — there is no log to tail.
    pub fn replication_snapshot(&self) -> Result<(Vec<u8>, u64, u64), ApiError> {
        // Same lock order as the edit path (reasoner before wal), so
        // while we hold the read lock no edit is between journal and
        // apply: journaled == applied.
        let r = self.reasoner.read().unwrap_or_else(PoisonError::into_inner);
        let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(w) = wal.as_ref() else {
            return Err(ApiError {
                status: 409,
                kind: "not_durable",
                message: format!(
                    "tenant {:?} has no WAL (start the leader with --wal-dir)",
                    self.name
                ),
            });
        };
        Ok((snapshot_payload(&r), self.wal_id, w.end()))
    }

    /// Reads up to `max_bytes` of verified log starting at absolute
    /// offset `from`, cut at a record boundary. `from` past the log
    /// end answers `416` — the compaction handshake: a follower whose
    /// offset outlives the log must re-snapshot.
    pub fn wal_slice(&self, from: u64, max_bytes: u64) -> Result<WalShipment, ApiError> {
        let (path, end) = {
            let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(w) = wal.as_ref() else {
                return Err(ApiError {
                    status: 409,
                    kind: "not_durable",
                    message: format!(
                        "tenant {:?} has no WAL (start the leader with --wal-dir)",
                        self.name
                    ),
                });
            };
            (w.path().to_path_buf(), w.end())
        };
        if from < nalist_store::WAL_MAGIC.len() as u64 || from > end {
            return Err(ApiError {
                status: 416,
                kind: "wal_offset_beyond_log",
                message: format!(
                    "offset {from} is outside the log (magic..{end}); re-snapshot and tail again"
                ),
            });
        }
        // The log only grows within a WAL incarnation, so reading
        // `[from, to)` without the lock is safe: those bytes are
        // immutable once `end` covered them.
        let to = end.min(from.saturating_add(max_bytes));
        let bytes = nalist_store::read_wal_range(&path, from, to)
            .map_err(|e| ApiError::internal(format!("cannot read WAL range: {e}")))?;
        let seg = nalist_store::parse_wal_segment(&bytes, from, true)
            .map_err(|e| ApiError::internal(format!("cannot parse own WAL: {e}")))?;
        let cut = (seg.end - from) as usize;
        let mut bytes = bytes;
        bytes.truncate(cut);
        Ok(WalShipment {
            bytes,
            end: seg.end,
            log_len: end,
            records: seg.records.len() as u64,
            wal_id: self.wal_id,
        })
    }
}

/// The tenant table: name → tenant, plus the durability directory.
#[derive(Debug)]
pub struct Registry {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    /// Names claimed by in-flight creates. A create reserves its name
    /// here *before* the expensive reasoner build, so the second of
    /// two racing creates answers `409` immediately instead of both
    /// passing the duplicate probe, building two reasoners, and
    /// racing `persist_fresh` for the snapshot + WAL files.
    creating: Mutex<BTreeSet<String>>,
    wal_dir: Option<PathBuf>,
    rec: Arc<dyn Recorder>,
}

/// Holds a name in [`Registry::creating`]; dropping releases it (also
/// on the error paths out of a failed build).
struct NameReservation<'a> {
    registry: &'a Registry,
    name: String,
}

impl Drop for NameReservation<'_> {
    fn drop(&mut self) {
        self.registry
            .creating
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.name);
    }
}

fn io_err(path: &Path, what: &str, e: &dyn std::fmt::Display) -> ApiError {
    ApiError::internal(format!("{what} {}: {e}", path.display()))
}

impl Registry {
    /// Opens a registry. With a `wal_dir`, every `<name>.snap` found
    /// there is recovered (replaying `<name>.wal` when present) and
    /// the log is *compacted*: the recovered state becomes the new
    /// snapshot and a fresh WAL is started, so a torn tail from a
    /// crash never accumulates.
    pub fn open(wal_dir: Option<PathBuf>, rec: Arc<dyn Recorder>) -> Result<Registry, ApiError> {
        let registry = Registry {
            tenants: RwLock::new(BTreeMap::new()),
            creating: Mutex::new(BTreeSet::new()),
            wal_dir,
            rec,
        };
        let Some(dir) = registry.wal_dir.clone() else {
            return Ok(registry);
        };
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "cannot create", &e))?;
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(|e| io_err(&dir, "cannot read", &e))? {
            let entry = entry.map_err(|e| io_err(&dir, "cannot read", &e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("snap") {
                continue;
            }
            match path.file_stem().and_then(|s| s.to_str()) {
                Some(stem) if valid_tenant_name(stem) => names.push(stem.to_string()),
                _ => {
                    return Err(ApiError::internal(format!(
                        "snapshot file {} is not named after a valid tenant",
                        path.display()
                    )))
                }
            }
        }
        let budget = Budget::unlimited();
        for name in names {
            let snap = dir.join(format!("{name}.snap"));
            let wal = dir.join(format!("{name}.wal"));
            let wal_arg = wal.exists().then_some(wal.as_path());
            let report = recover(&snap, wal_arg, &budget, Arc::clone(&registry.rec))
                .map_err(|e| io_err(&snap, "cannot recover", &e))?;
            let token = registry
                .rec
                .enter(site::SERVE_TENANT, report.reasoner.sigma().len() as u64);
            let tenant = registry.persist_fresh(&name, report.reasoner, &budget)?;
            registry.rec.exit(token, 0);
            registry
                .tenants
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(name, tenant);
        }
        Ok(registry)
    }

    /// Writes a fresh snapshot + empty WAL (header only) for `r` and
    /// wraps it as a tenant. No-op on the durability side when the
    /// registry has no `wal_dir`.
    fn persist_fresh(
        &self,
        name: &str,
        r: Reasoner,
        budget: &Budget,
    ) -> Result<Arc<Tenant>, ApiError> {
        let wal = match &self.wal_dir {
            None => None,
            Some(dir) => {
                let snap = dir.join(format!("{name}.snap"));
                write_reasoner_snapshot(&snap, &r, budget, self.rec.as_ref())
                    .map_err(|e| io_err(&snap, "cannot snapshot", &e))?;
                let wal_path = dir.join(format!("{name}.wal"));
                let mut w = WalWriter::create(&wal_path, true)
                    .map_err(|e| io_err(&wal_path, "cannot create", &e))?;
                w.append(
                    &WalOp::Header {
                        schema: r.attr().to_string(),
                    }
                    .encode(),
                    budget,
                    self.rec.as_ref(),
                )
                .map_err(|e| io_err(&wal_path, "cannot write", &e))?;
                Some(w)
            }
        };
        let wal_id = if wal.is_some() { fresh_wal_id() } else { 0 };
        Ok(Arc::new(Tenant {
            name: name.to_string(),
            reasoner: RwLock::new(r),
            wal: Mutex::new(wal),
            wal_id,
        }))
    }

    /// Creates a tenant from a schema and an initial Σ (dependency
    /// texts). Fails with `409` if the name is taken, `400` if the
    /// name, schema or a dependency is invalid.
    pub fn create(
        &self,
        name: &str,
        schema: &str,
        deps: &[String],
        budget: &Budget,
    ) -> Result<Arc<Tenant>, ApiError> {
        if !valid_tenant_name(name) {
            return Err(ApiError::bad_request(format!(
                "bad tenant name {name:?} (want 1-{MAX_TENANT_NAME} chars of [A-Za-z0-9_-])"
            )));
        }
        // Claim the name before the expensive reasoner build: a
        // conflict — with an existing tenant *or* with a concurrent
        // create of the same name — must answer 409 immediately, not
        // build a second reasoner and race `persist_fresh` for the
        // snapshot + WAL files. The reservation is dropped on every
        // path out, so a failed build frees the name.
        let _claim = self.reserve(name)?;
        let limits = ParseLimits::from_budget(budget);
        let n = parse_attr_with(schema, limits)
            .map_err(|e| ApiError::bad_request(format!("bad schema: {e}")))?;
        let mut r = Reasoner::try_new_observed(&n, budget, Arc::clone(&self.rec))
            .map_err(ApiError::resource)?;
        for (i, text) in deps.iter().enumerate() {
            let dep = nalist_deps::Dependency::parse_with(&n, text, limits)
                .map_err(|e| ApiError::bad_request(format!("deps[{i}]: {e}")))?;
            r.add(dep).map_err(|e| ApiError::reasoner(&e))?;
        }
        // The registry write lock is held across persistence: creates
        // are rare, and this makes insert + snapshot atomic. The name
        // itself is already ours — the reservation blocks every other
        // create of it until we return.
        let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
        let token = self.rec.enter(site::SERVE_TENANT, r.sigma().len() as u64);
        let tenant = self.persist_fresh(name, r, budget)?;
        self.rec.exit(token, 1);
        tenants.insert(name.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Reserves `name` for an in-flight create, failing with `409`
    /// when it is already a tenant or already being created.
    fn reserve(&self, name: &str) -> Result<NameReservation<'_>, ApiError> {
        let mut creating = self.creating.lock().unwrap_or_else(PoisonError::into_inner);
        if creating.contains(name) || self.get(name).is_some() {
            return Err(ApiError {
                status: 409,
                kind: "conflict",
                message: format!("tenant {name:?} already exists"),
            });
        }
        creating.insert(name.to_string());
        Ok(NameReservation {
            registry: self,
            name: name.to_string(),
        })
    }

    /// Installs an externally built reasoner as an in-memory tenant,
    /// replacing any previous incarnation — the follower's bootstrap
    /// path (replicas re-snapshot through here, so replacement is the
    /// point, not an accident).
    pub fn install(&self, name: &str, r: Reasoner) -> Result<Arc<Tenant>, ApiError> {
        if !valid_tenant_name(name) {
            return Err(ApiError::bad_request(format!(
                "bad tenant name {name:?} (want 1-{MAX_TENANT_NAME} chars of [A-Za-z0-9_-])"
            )));
        }
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            reasoner: RwLock::new(r),
            wal: Mutex::new(None),
            wal_id: 0,
        });
        self.tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Looks a tenant up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Current tenant names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// Number of tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the registry has no tenants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorder every tenant reports to.
    #[must_use]
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_obs::NoopRecorder;

    #[test]
    fn tenant_names_are_validated() {
        assert!(valid_tenant_name("a"));
        assert!(valid_tenant_name("tenant-2_x"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("a/b"));
        assert!(!valid_tenant_name("a.b"));
        assert!(!valid_tenant_name(&"x".repeat(65)));
    }

    #[test]
    fn racing_creates_build_once_and_answer_409_once() {
        use nalist_obs::{Counter, MetricsRecorder};
        use std::sync::Barrier;
        let schema = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";
        // Baseline: atoms one build of this schema allocates.
        let baseline_rec = Arc::new(MetricsRecorder::new());
        {
            let reg = Registry::open(None, baseline_rec.clone() as Arc<dyn Recorder>).unwrap();
            reg.create("solo", schema, &[], &Budget::unlimited()).unwrap();
        }
        let one_build = baseline_rec.counter(Counter::AtomsAllocated);
        assert!(one_build > 0);

        let rec = Arc::new(MetricsRecorder::new());
        let reg = Arc::new(Registry::open(None, rec.clone() as Arc<dyn Recorder>).unwrap());
        let barrier = Arc::new(Barrier::new(2));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let (reg, barrier) = (Arc::clone(&reg), Arc::clone(&barrier));
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                reg.create("raced", schema, &[], &Budget::unlimited())
                    .map(|_| ())
                    .map_err(|e| e.status)
            }));
        }
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 1);
        assert_eq!(
            outcomes.iter().filter(|o| **o == Err(409)).count(),
            1,
            "loser must see 409, got {outcomes:?}"
        );
        assert_eq!(reg.len(), 1);
        // The loser answered before building: exactly one reasoner's
        // worth of atoms was allocated. Pre-fix, both creates passed
        // the cheap duplicate probe and both built (2× the atoms).
        assert_eq!(rec.counter(Counter::AtomsAllocated), one_build);
    }

    #[test]
    fn failed_create_releases_the_name() {
        let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        let reg = Registry::open(None, rec).unwrap();
        let budget = Budget::unlimited();
        let bad = reg
            .create("pub", "Pubcrawl(Person)", &["not a dependency".to_string()], &budget)
            .unwrap_err();
        assert_eq!(bad.status, 400);
        // the reservation was dropped on the error path; the name is free
        reg.create("pub", "Pubcrawl(Person)", &[], &budget).unwrap();
    }

    #[test]
    fn create_get_and_conflicts() {
        let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        let reg = Registry::open(None, rec).unwrap();
        let budget = Budget::unlimited();
        let t = reg
            .create(
                "pub",
                "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
                &["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])".to_string()],
                &budget,
            )
            .unwrap();
        assert_eq!(t.name(), "pub");
        assert_eq!(reg.len(), 1);
        assert!(reg.get("pub").is_some());
        assert!(reg.get("absent").is_none());
        let dup = reg
            .create("pub", "Pubcrawl(Person)", &[], &budget)
            .unwrap_err();
        assert_eq!(dup.status, 409);
        let bad = reg
            .create("no/slash", "Pubcrawl(Person)", &[], &budget)
            .unwrap_err();
        assert_eq!(bad.status, 400);
    }
}
