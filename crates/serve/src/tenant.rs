//! Tenant lifecycle: one long-lived [`Reasoner`] per named schema,
//! with optional snapshot + write-ahead-log durability per tenant.
//!
//! Locking discipline: queries share `reasoner.read()`; Σ edits take
//! `reasoner.write()` and, while holding it, journal to the tenant's
//! WAL *before* applying — so the log is always at least as new as the
//! in-memory state and a killed daemon recovers bit-identically via
//! [`nalist_membership::recover`]. Tenants are fully independent:
//! nothing is shared between two [`Tenant`]s but the process, so one
//! tenant's edits cannot evict another's cache entries by construction.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use nalist_guard::Budget;
use nalist_membership::{recover, write_reasoner_snapshot, Reasoner, WalOp};
use nalist_obs::{site, Recorder};
use nalist_store::WalWriter;
use nalist_types::parser::{parse_attr_with, ParseLimits};

use crate::api::ApiError;

/// Longest accepted tenant name; names are path components, so the
/// alphabet is restricted to `[A-Za-z0-9_-]`.
pub const MAX_TENANT_NAME: usize = 64;

/// Validates a tenant name (used as a WAL/snapshot file stem).
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// One tenant: a named schema with its warm reasoner and, when the
/// server runs durable, its open write-ahead log.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    /// Queries take the read lock, Σ edits the write lock.
    pub reasoner: RwLock<Reasoner>,
    /// The open journal, `None` when the server runs without
    /// `--wal-dir`. Held *inside* the reasoner write lock during
    /// edits, so journal order always matches apply order.
    pub wal: Mutex<Option<WalWriter>>,
}

impl Tenant {
    /// The tenant's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The tenant table: name → tenant, plus the durability directory.
#[derive(Debug)]
pub struct Registry {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    wal_dir: Option<PathBuf>,
    rec: Arc<dyn Recorder>,
}

fn io_err(path: &Path, what: &str, e: &dyn std::fmt::Display) -> ApiError {
    ApiError::internal(format!("{what} {}: {e}", path.display()))
}

impl Registry {
    /// Opens a registry. With a `wal_dir`, every `<name>.snap` found
    /// there is recovered (replaying `<name>.wal` when present) and
    /// the log is *compacted*: the recovered state becomes the new
    /// snapshot and a fresh WAL is started, so a torn tail from a
    /// crash never accumulates.
    pub fn open(wal_dir: Option<PathBuf>, rec: Arc<dyn Recorder>) -> Result<Registry, ApiError> {
        let registry = Registry {
            tenants: RwLock::new(BTreeMap::new()),
            wal_dir,
            rec,
        };
        let Some(dir) = registry.wal_dir.clone() else {
            return Ok(registry);
        };
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "cannot create", &e))?;
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(|e| io_err(&dir, "cannot read", &e))? {
            let entry = entry.map_err(|e| io_err(&dir, "cannot read", &e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("snap") {
                continue;
            }
            match path.file_stem().and_then(|s| s.to_str()) {
                Some(stem) if valid_tenant_name(stem) => names.push(stem.to_string()),
                _ => {
                    return Err(ApiError::internal(format!(
                        "snapshot file {} is not named after a valid tenant",
                        path.display()
                    )))
                }
            }
        }
        let budget = Budget::unlimited();
        for name in names {
            let snap = dir.join(format!("{name}.snap"));
            let wal = dir.join(format!("{name}.wal"));
            let wal_arg = wal.exists().then_some(wal.as_path());
            let report = recover(&snap, wal_arg, &budget, Arc::clone(&registry.rec))
                .map_err(|e| io_err(&snap, "cannot recover", &e))?;
            let token = registry
                .rec
                .enter(site::SERVE_TENANT, report.reasoner.sigma().len() as u64);
            let tenant = registry.persist_fresh(&name, report.reasoner, &budget)?;
            registry.rec.exit(token, 0);
            registry
                .tenants
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(name, tenant);
        }
        Ok(registry)
    }

    /// Writes a fresh snapshot + empty WAL (header only) for `r` and
    /// wraps it as a tenant. No-op on the durability side when the
    /// registry has no `wal_dir`.
    fn persist_fresh(
        &self,
        name: &str,
        r: Reasoner,
        budget: &Budget,
    ) -> Result<Arc<Tenant>, ApiError> {
        let wal = match &self.wal_dir {
            None => None,
            Some(dir) => {
                let snap = dir.join(format!("{name}.snap"));
                write_reasoner_snapshot(&snap, &r, budget, self.rec.as_ref())
                    .map_err(|e| io_err(&snap, "cannot snapshot", &e))?;
                let wal_path = dir.join(format!("{name}.wal"));
                let mut w = WalWriter::create(&wal_path, true)
                    .map_err(|e| io_err(&wal_path, "cannot create", &e))?;
                w.append(
                    &WalOp::Header {
                        schema: r.attr().to_string(),
                    }
                    .encode(),
                    budget,
                    self.rec.as_ref(),
                )
                .map_err(|e| io_err(&wal_path, "cannot write", &e))?;
                Some(w)
            }
        };
        Ok(Arc::new(Tenant {
            name: name.to_string(),
            reasoner: RwLock::new(r),
            wal: Mutex::new(wal),
        }))
    }

    /// Creates a tenant from a schema and an initial Σ (dependency
    /// texts). Fails with `409` if the name is taken, `400` if the
    /// name, schema or a dependency is invalid.
    pub fn create(
        &self,
        name: &str,
        schema: &str,
        deps: &[String],
        budget: &Budget,
    ) -> Result<Arc<Tenant>, ApiError> {
        if !valid_tenant_name(name) {
            return Err(ApiError::bad_request(format!(
                "bad tenant name {name:?} (want 1-{MAX_TENANT_NAME} chars of [A-Za-z0-9_-])"
            )));
        }
        // Cheap duplicate probe before the expensive reasoner build (a
        // conflict must answer 409, not burn the request budget and
        // answer 429); the authoritative check still runs under the
        // write lock below.
        if self.get(name).is_some() {
            return Err(ApiError {
                status: 409,
                kind: "conflict",
                message: format!("tenant {name:?} already exists"),
            });
        }
        let limits = ParseLimits::from_budget(budget);
        let n = parse_attr_with(schema, limits)
            .map_err(|e| ApiError::bad_request(format!("bad schema: {e}")))?;
        let mut r = Reasoner::try_new_observed(&n, budget, Arc::clone(&self.rec))
            .map_err(ApiError::resource)?;
        for (i, text) in deps.iter().enumerate() {
            let dep = nalist_deps::Dependency::parse_with(&n, text, limits)
                .map_err(|e| ApiError::bad_request(format!("deps[{i}]: {e}")))?;
            r.add(dep).map_err(|e| ApiError::reasoner(&e))?;
        }
        // The registry write lock is held across persistence: creates
        // are rare, and this makes name-claim + snapshot atomic.
        let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
        if tenants.contains_key(name) {
            return Err(ApiError {
                status: 409,
                kind: "conflict",
                message: format!("tenant {name:?} already exists"),
            });
        }
        let token = self.rec.enter(site::SERVE_TENANT, r.sigma().len() as u64);
        let tenant = self.persist_fresh(name, r, budget)?;
        self.rec.exit(token, 1);
        tenants.insert(name.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Looks a tenant up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Current tenant names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// Number of tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the registry has no tenants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorder every tenant reports to.
    #[must_use]
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_obs::NoopRecorder;

    #[test]
    fn tenant_names_are_validated() {
        assert!(valid_tenant_name("a"));
        assert!(valid_tenant_name("tenant-2_x"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("a/b"));
        assert!(!valid_tenant_name("a.b"));
        assert!(!valid_tenant_name(&"x".repeat(65)));
    }

    #[test]
    fn create_get_and_conflicts() {
        let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        let reg = Registry::open(None, rec).unwrap();
        let budget = Budget::unlimited();
        let t = reg
            .create(
                "pub",
                "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
                &["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])".to_string()],
                &budget,
            )
            .unwrap();
        assert_eq!(t.name(), "pub");
        assert_eq!(reg.len(), 1);
        assert!(reg.get("pub").is_some());
        assert!(reg.get("absent").is_none());
        let dup = reg
            .create("pub", "Pubcrawl(Person)", &[], &budget)
            .unwrap_err();
        assert_eq!(dup.status, 409);
        let bad = reg
            .create("no/slash", "Pubcrawl(Person)", &[], &budget)
            .unwrap_err();
        assert_eq!(bad.status, 400);
    }
}
