//! The wire-protocol chaos harness: every case in
//! `nalist_gen::wire_corpus` gets its pinned typed rejection, and after
//! each one the worker pool still answers a healthy request — hostile
//! bytes never take a worker down or wedge a connection slot.

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use nalist_gen::wire_corpus;
use nalist_obs::MetricsRecorder;
use nalist_serve::ServerConfig;

#[test]
fn hostile_wire_input_gets_typed_rejections_and_workers_survive() {
    let cfg = ServerConfig {
        workers: 2,
        // Short read timeout so the slowloris cases resolve quickly.
        read_timeout_ms: 300,
        ..ServerConfig::default()
    };
    let srv = nalist_serve::server::start(&cfg, Arc::new(MetricsRecorder::new())).expect("start");
    let addr = srv.local_addr();
    for case in wire_corpus() {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_nodelay(true).expect("nodelay");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        s.write_all(&case.bytes).expect("write case bytes");
        if case.shutdown_after_write {
            s.shutdown(Shutdown::Write).expect("half-close");
        }
        let mut raw = Vec::new();
        // A clean close with no response is acceptable for unpinned
        // cases; pinned ones must produce a complete response.
        let _ = s.read_to_end(&mut raw);
        if let Some(want) = case.expect_status {
            assert!(!raw.is_empty(), "case {}: no response at all", case.name);
            let (status, _) = common::parse_response(&raw);
            assert_eq!(status, want, "case {}", case.name);
        }
        drop(s);
        // Worker recovery: the pool still answers on a fresh connection.
        let (status, body) = common::request(addr, "GET", "/healthz", None);
        assert_eq!(status, 200, "server unhealthy after case {}", case.name);
        assert!(body.contains("\"ok\": true"), "{body}");
    }
    srv.shutdown();
}
