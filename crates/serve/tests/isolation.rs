//! Multi-tenant isolation and serve-path parity, property-tested.
//!
//! Invariants, per random seed:
//!
//! 1. **Parity**: every answer the HTTP path gives (single and batch
//!    queries) is identical to a direct [`Reasoner`] holding the same
//!    Σ — the service is a transport, never a different semantics.
//! 2. **Isolation**: edits and queries against tenant A change nothing
//!    observable about tenant B: not its Σ listing, not its answers,
//!    and not its cache (no cross-tenant eviction).

mod common;

use std::net::SocketAddr;
use std::sync::Arc;

use common::request;
use nalist_membership::Reasoner;
use nalist_obs::MetricsRecorder;
use nalist_serve::ServerConfig;
use nalist_types::json::{parse as parse_json, Json};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Up to `want` pairwise-distinct rendered dependencies over a fresh
/// random schema. Rendering is canonical per compiled dependency, so
/// string-distinct implies compiled-distinct (removals stay unambiguous).
fn schema_and_pool(rng: &mut StdRng, want: usize) -> (String, Vec<String>) {
    let atoms = rng.gen_range(4..=7);
    let n = nalist_gen::attr_with_atoms(rng, atoms);
    let alg = nalist_algebra::Algebra::new(&n);
    let mut pool: Vec<String> = Vec::new();
    for _ in 0..(want * 8) {
        if pool.len() == want {
            break;
        }
        let dep = nalist_gen::random_dep(rng, &alg, 0.3, 0.3).render(&alg);
        if !pool.contains(&dep) {
            pool.push(dep);
        }
    }
    (n.to_string(), pool)
}

fn serve_query(addr: SocketAddr, tenant: &str, dep: &str) -> bool {
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/{tenant}/query"),
        Some(&format!(
            "{{\"query\": {}}}",
            nalist_types::json::escape(dep)
        )),
    );
    assert_eq!(status, 200, "query {dep}: {body}");
    parse_json(&body)
        .expect("valid JSON")
        .get("implied")
        .and_then(|v| v.as_bool())
        .expect("implied field")
}

fn serve_batch(addr: SocketAddr, tenant: &str, deps: &[String]) -> Vec<bool> {
    let items: Vec<String> = deps.iter().map(|d| nalist_types::json::escape(d)).collect();
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/{tenant}/query"),
        Some(&format!("{{\"queries\": [{}]}}", items.join(", "))),
    );
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body).expect("valid JSON");
    let arr = doc
        .get("verdicts")
        .and_then(Json::as_arr)
        .expect("verdicts");
    arr.iter()
        .map(|v| v.as_bool().expect("boolean verdict"))
        .collect()
}

fn serve_edit(addr: SocketAddr, tenant: &str, op: &str, dep: &str) {
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/{tenant}/edit"),
        Some(&format!(
            "{{\"op\": \"{op}\", \"dep\": {}}}",
            nalist_types::json::escape(dep)
        )),
    );
    assert_eq!(status, 200, "{op} {dep}: {body}");
}

fn sigma_body(addr: SocketAddr, tenant: &str) -> String {
    let (status, body) = request(addr, "GET", &format!("/v1/{tenant}/sigma"), None);
    assert_eq!(status, 200, "{body}");
    body
}

/// The Σ-listing part of the sigma document (cache counters stripped).
fn sigma_part(body: &str) -> &str {
    &body[body.find("\"sigma\"").expect("sigma")..body.find("\"cache\"").expect("cache")]
}

fn cache_evicted(body: &str) -> usize {
    parse_json(body)
        .expect("valid JSON")
        .get("cache")
        .and_then(|c| c.get("evicted"))
        .and_then(|v| v.as_usize())
        .expect("evicted counter")
}

fn create_tenant(addr: SocketAddr, tenant: &str, schema: &str, deps: &[String]) {
    let items: Vec<String> = deps.iter().map(|d| nalist_types::json::escape(d)).collect();
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/{tenant}/create"),
        Some(&format!(
            "{{\"schema\": {}, \"deps\": [{}]}}",
            nalist_types::json::escape(schema),
            items.join(", ")
        )),
    );
    assert_eq!(status, 201, "{body}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn tenant_isolation_and_serve_parity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (schema_a, pool_a) = schema_and_pool(&mut rng, 12);
        let (schema_b, pool_b) = schema_and_pool(&mut rng, 8);
        prop_assert!(pool_a.len() >= 4 && pool_b.len() >= 2);
        let seed_a = pool_a.len() / 2;
        let seed_b = pool_b.len() / 2;

        let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
        let srv = nalist_serve::server::start(&cfg, Arc::new(MetricsRecorder::new()))
            .expect("start");
        let addr = srv.local_addr();
        create_tenant(addr, "a", &schema_a, &pool_a[..seed_a]);
        create_tenant(addr, "b", &schema_b, &pool_b[..seed_b]);

        // Direct mirrors with the same Σ.
        let n_a = nalist_types::parser::parse_attr(&schema_a).expect("schema a");
        let n_b = nalist_types::parser::parse_attr(&schema_b).expect("schema b");
        let mut mirror_a = Reasoner::new(&n_a);
        for d in &pool_a[..seed_a] { mirror_a.add_str(d).expect("seed a"); }
        let mut mirror_b = Reasoner::new(&n_b);
        for d in &pool_b[..seed_b] { mirror_b.add_str(d).expect("seed b"); }

        // Warm tenant B and snapshot everything observable about it.
        for d in &pool_b {
            let direct = mirror_b.implies_str(d).expect("direct b");
            prop_assert_eq!(serve_query(addr, "b", d), direct, "b parity on {}", d);
        }
        let b_before = sigma_body(addr, "b");
        let b_answers_before: Vec<bool> =
            pool_b.iter().map(|d| serve_query(addr, "b", d)).collect();
        let b_evicted_before = cache_evicted(&sigma_body(addr, "b"));

        // Churn tenant A: add the second half, query everything (single
        // AND batch must agree with the mirror), then remove a couple.
        for d in &pool_a[seed_a..] {
            serve_edit(addr, "a", "add", d);
            mirror_a.add_str(d).expect("churn add");
        }
        let direct_a: Vec<bool> = pool_a
            .iter()
            .map(|d| mirror_a.implies_str(d).expect("direct a"))
            .collect();
        for (d, want) in pool_a.iter().zip(&direct_a) {
            prop_assert_eq!(serve_query(addr, "a", d), *want, "a parity on {}", d);
        }
        prop_assert_eq!(serve_batch(addr, "a", &pool_a), direct_a.clone());
        for d in pool_a.iter().skip(seed_a).take(2) {
            serve_edit(addr, "a", "remove", d);
            mirror_a.remove_str(d).expect("churn remove");
        }
        let direct_a_after: Vec<bool> = pool_a
            .iter()
            .map(|d| mirror_a.implies_str(d).expect("direct a"))
            .collect();
        prop_assert_eq!(serve_batch(addr, "a", &pool_a), direct_a_after);

        // Tenant B saw none of it: same Σ, same answers, no evictions.
        let b_after = sigma_body(addr, "b");
        prop_assert_eq!(sigma_part(&b_before), sigma_part(&b_after));
        let b_answers_after: Vec<bool> =
            pool_b.iter().map(|d| serve_query(addr, "b", d)).collect();
        prop_assert_eq!(b_answers_before, b_answers_after);
        prop_assert_eq!(b_evicted_before, cache_evicted(&sigma_body(addr, "b")));

        srv.shutdown();
    }
}
