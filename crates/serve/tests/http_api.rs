//! End-to-end walkthrough of the JSON API over a real socket: every
//! endpoint, every documented error status, and the metrics document.

mod common;

use std::net::SocketAddr;
use std::sync::Arc;

use common::request;
use nalist_obs::MetricsRecorder;
use nalist_serve::{Server, ServerConfig};
use nalist_types::json::parse as parse_json;

fn boot() -> (Server, SocketAddr) {
    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let srv = nalist_serve::server::start(&cfg, Arc::new(MetricsRecorder::new())).expect("start");
    let addr = srv.local_addr();
    (srv, addr)
}

#[test]
fn full_api_walkthrough() {
    let (srv, addr) = boot();

    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"tenants\": 0"), "{body}");

    // Tenant creation: 201, then 409 on the duplicate, 400 on a bad name.
    let create = r#"{"schema": "L(A, B, C)", "deps": ["L(A) -> L(B)"]}"#;
    let (status, body) = request(addr, "POST", "/v1/t1/create", Some(create));
    assert_eq!(status, 201, "{body}");
    assert!(body.contains("\"sigma\": 1"), "{body}");
    let (status, _) = request(addr, "POST", "/v1/t1/create", Some(create));
    assert_eq!(status, 409);
    let (status, _) = request(addr, "POST", "/v1/bad!name/create", Some(create));
    assert_eq!(status, 400);

    // Single queries.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/t1/query",
        Some(r#"{"query": "L(A) ->> L(B)"}"#),
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"implied\": true"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/v1/t1/query",
        Some(r#"{"query": "L(A) -> L(C)"}"#),
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"implied\": false"), "{body}");
    let (status, _) = request(addr, "POST", "/v1/t1/query", Some(r#"{"query": "junk"}"#));
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/v1/t1/query", Some("{}"));
    assert_eq!(status, 400);

    // Batch queries go through the batch planner and come back in order.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/t1/query",
        Some(r#"{"queries": ["L(A) -> L(B)", "L(B) -> L(A)", "L(A, B) -> L(A)"]}"#),
    );
    assert_eq!(status, 200);
    assert!(body.contains("[true, false, true]"), "{body}");

    // Edits: add changes answers, removing an absent dependency is 400
    // (and must not journal), removing a present one restores the world.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/t1/edit",
        Some(r#"{"op": "add", "dep": "L(B) -> L(C)"}"#),
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"adds\": 1"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/v1/t1/query",
        Some(r#"{"query": "L(A) -> L(C)"}"#),
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"implied\": true"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/v1/t1/edit",
        Some(r#"{"op": "remove", "dep": "L(A) ->> L(C)"}"#),
    );
    assert_eq!(status, 400);
    assert!(body.contains("not in Σ"), "{body}");
    let (status, _) = request(
        addr,
        "POST",
        "/v1/t1/edit",
        Some(r#"{"edits": [{"op": "remove", "dep": "L(B) -> L(C)"}]}"#),
    );
    assert_eq!(status, 200);
    let (status, body) = request(
        addr,
        "POST",
        "/v1/t1/query",
        Some(r#"{"query": "L(A) -> L(C)"}"#),
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"implied\": false"), "{body}");

    // Certificates, both verdicts; the dependency rides percent-encoded.
    let (status, body) = request(addr, "GET", "/v1/t1/cert?dep=L(A)%20-%3E%20L(B)", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"implied\": true"), "{body}");
    assert!(body.contains("\"certificate\""), "{body}");
    let (status, body) = request(addr, "GET", "/v1/t1/cert?dep=L(A)%20-%3E%20L(C)", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"implied\": false"), "{body}");
    let (status, _) = request(addr, "GET", "/v1/t1/cert", None);
    assert_eq!(status, 400);

    // Σ listing with cache counters.
    let (status, body) = request(addr, "GET", "/v1/t1/sigma", None);
    assert_eq!(status, 200);
    assert!(body.contains("L(A) -> L(B)"), "{body}");
    assert!(body.contains("\"cache\""), "{body}");

    // The metrics document is valid, schema-versioned JSON.
    let (status, body) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let doc = parse_json(&body).expect("metrics is valid JSON");
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_usize()),
        Some(2)
    );
    let requests = doc
        .get("counters")
        .and_then(|c| c.get("requests"))
        .and_then(|v| v.as_usize())
        .expect("requests counter");
    assert!(requests > 0, "{requests}");

    // Routing errors: 404 for unknown things, 405 for wrong verbs.
    let (status, _) = request(addr, "GET", "/nowhere", None);
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/v1/t1/unknownaction", None);
    assert_eq!(status, 404);
    let (status, _) = request(addr, "POST", "/v1/ghost/query", Some(r#"{"query": "x"}"#));
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/v1/t1/query", None);
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/healthz", None);
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/v1/t1/create", None);
    assert_eq!(status, 405);

    srv.shutdown();
}
