//! Shared blocking HTTP client for the serve integration tests: one
//! request per connection (`connection: close`), no keep-alive state to
//! reason about.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One round trip on a fresh connection, parsed to `(status, body)`.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).expect("nodelay");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

/// Splits a raw HTTP response into `(status, body)`; panics on an
/// incomplete response (the tests always expect one).
pub fn parse_response(raw: &[u8]) -> (u16, String) {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}
