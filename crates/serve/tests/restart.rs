//! Durability across restarts: tenants created against a `--wal-dir`
//! come back bit-identically (same Σ, same ids, same answers) after the
//! process goes away, including after post-recovery edits and a second
//! restart (compaction round-trip).

mod common;

use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;

use common::request;
use nalist_obs::MetricsRecorder;
use nalist_serve::{Server, ServerConfig};

fn boot(dir: &Path) -> (Server, SocketAddr) {
    let cfg = ServerConfig {
        workers: 2,
        wal_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    };
    let srv = nalist_serve::server::start(&cfg, Arc::new(MetricsRecorder::new())).expect("start");
    let addr = srv.local_addr();
    (srv, addr)
}

/// The bit-identical part of the Σ listing: ids and dependencies, with
/// the (session-local) cache counters stripped.
fn sigma_part(body: &str) -> &str {
    let start = body.find("\"sigma\"").expect("sigma field");
    let end = body.find("\"cache\"").expect("cache field");
    &body[start..end]
}

fn query(addr: SocketAddr, tenant: &str, dep: &str) -> bool {
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/{tenant}/query"),
        Some(&format!("{{\"query\": \"{dep}\"}}")),
    );
    assert_eq!(status, 200, "{body}");
    body.contains("\"implied\": true")
}

#[test]
fn tenants_recover_bit_identically_across_restarts() {
    let dir = std::env::temp_dir().join(format!("nalist-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal dir");

    let probes = [
        "L(A) -> L(B)",
        "L(A) ->> L(C)",
        "L(C) -> L(A)",
        "L(A) -> L(C)",
        "L(B) -> L(A)",
    ];

    // Session 1: create, edit, remember the world.
    let (srv, addr) = boot(&dir);
    let (status, _) = request(
        addr,
        "POST",
        "/v1/t/create",
        Some(r#"{"schema": "L(A, B, C)", "deps": ["L(A) -> L(B)", "L(B) ->> L(C)"]}"#),
    );
    assert_eq!(status, 201);
    let (status, _) = request(
        addr,
        "POST",
        "/v1/t/edit",
        Some(
            r#"{"edits": [{"op": "add", "dep": "L(C) -> L(A)"}, {"op": "remove", "dep": "L(B) ->> L(C)"}]}"#,
        ),
    );
    assert_eq!(status, 200);
    let (status, sigma1) = request(addr, "GET", "/v1/t/sigma", None);
    assert_eq!(status, 200);
    let answers1: Vec<bool> = probes.iter().map(|d| query(addr, "t", d)).collect();
    srv.shutdown();

    // Session 2: the tenant is back, bit-identical, and still editable.
    let (srv, addr) = boot(&dir);
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"tenants\": 1"), "{body}");
    let (status, sigma2) = request(addr, "GET", "/v1/t/sigma", None);
    assert_eq!(status, 200);
    assert_eq!(sigma_part(&sigma1), sigma_part(&sigma2));
    let answers2: Vec<bool> = probes.iter().map(|d| query(addr, "t", d)).collect();
    assert_eq!(answers1, answers2);
    // Recovered tenants occupy their name: re-creating is a conflict.
    let (status, _) = request(
        addr,
        "POST",
        "/v1/t/create",
        Some(r#"{"schema": "L(A, B, C)", "deps": []}"#),
    );
    assert_eq!(status, 409);
    // The compacted WAL accepts new edits.
    let (status, _) = request(
        addr,
        "POST",
        "/v1/t/edit",
        Some(r#"{"op": "add", "dep": "L(B) -> L(C)"}"#),
    );
    assert_eq!(status, 200);
    let (status, sigma3) = request(addr, "GET", "/v1/t/sigma", None);
    assert_eq!(status, 200);
    srv.shutdown();

    // Session 3: the post-recovery edit also survived.
    let (srv, addr) = boot(&dir);
    let (status, sigma4) = request(addr, "GET", "/v1/t/sigma", None);
    assert_eq!(status, 200);
    assert_eq!(sigma_part(&sigma3), sigma_part(&sigma4));
    assert!(query(addr, "t", "L(A) -> L(C)"));
    srv.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
