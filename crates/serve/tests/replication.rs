//! Leader/follower replication, end to end.
//!
//! The oracle throughout is the strongest one available: the follower's
//! in-memory state serialised with [`nalist_membership::snapshot_payload`]
//! must be *byte-identical* to the leader's — not merely answer-equal.
//! On top of that the suite checks byte-identical query and Σ answers,
//! write rejection (`421` + a `leader:` pointer), certificate answers
//! that pass the independent trusted checker, and the three fault paths:
//! a shipment corrupted in flight (typed reject + re-fetch), a follower
//! restart (fresh bootstrap, identical catch-up), and a leader restart
//! whose compaction forces the re-snapshot handshake. A proptest drives
//! random edit scripts through the same convergence check.

mod common;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use common::request;
use nalist_membership::snapshot_payload;
use nalist_obs::MetricsRecorder;
use nalist_serve::{ApiError, Follower, FollowerConfig, Server, ServerConfig, ServiceState};
use nalist_types::json::{escape, parse as parse_json, Json};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generous bound on every wait: the loops below poll every 20 ms and
/// normally finish in well under a second.
const CATCHUP: Duration = Duration::from_secs(30);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nalist-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal dir");
    dir
}

fn try_boot_leader(dir: &Path, addr: &str) -> Result<Server, ApiError> {
    let cfg = ServerConfig {
        addr: addr.to_string(),
        workers: 2,
        wal_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    };
    nalist_serve::server::start(&cfg, Arc::new(MetricsRecorder::new()))
}

fn boot_leader(dir: &Path) -> Server {
    try_boot_leader(dir, "127.0.0.1:0").expect("start leader")
}

fn boot_follower(leader: SocketAddr) -> Follower {
    let cfg = FollowerConfig {
        server: ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        leader: leader.to_string(),
        poll_wait_ms: 100,
    };
    nalist_serve::start_follower(&cfg, Arc::new(MetricsRecorder::new())).expect("start follower")
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while t0.elapsed() < CATCHUP {
        if ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out after {CATCHUP:?} waiting for {what}");
}

fn create_tenant(addr: SocketAddr, tenant: &str, schema: &str, deps: &[String]) {
    let items: Vec<String> = deps.iter().map(|d| escape(d)).collect();
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/{tenant}/create"),
        Some(&format!(
            "{{\"schema\": {}, \"deps\": [{}]}}",
            escape(schema),
            items.join(", ")
        )),
    );
    assert_eq!(status, 201, "{body}");
}

fn edit(addr: SocketAddr, tenant: &str, op: &str, dep: &str) {
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/{tenant}/edit"),
        Some(&format!("{{\"op\": \"{op}\", \"dep\": {}}}", escape(dep))),
    );
    assert_eq!(status, 200, "{op} {dep}: {body}");
}

fn query_exchange(addr: SocketAddr, tenant: &str, dep: &str) -> (u16, String) {
    request(
        addr,
        "POST",
        &format!("/v1/{tenant}/query"),
        Some(&format!("{{\"query\": {}}}", escape(dep))),
    )
}

/// The Σ-listing part of the sigma document (session-local cache
/// counters stripped).
fn sigma_part(body: &str) -> &str {
    &body[body.find("\"sigma\"").expect("sigma")..body.find("\"cache\"").expect("cache")]
}

/// The bit-identical oracle: the tenant's whole state as the snapshot
/// writer would serialise it. `None` until the tenant exists.
fn state_bytes(state: &Arc<ServiceState>, name: &str) -> Option<Vec<u8>> {
    let t = state.registry.get(name)?;
    let r = t.reasoner.read().unwrap_or_else(PoisonError::into_inner);
    Some(snapshot_payload(&r))
}

fn converged(leader: &Arc<ServiceState>, follower: &Arc<ServiceState>, name: &str) -> bool {
    match (state_bytes(leader, name), state_bytes(follower, name)) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

fn assert_bit_identical(leader: &Server, follower: &Follower, name: &str) {
    wait_until(&format!("tenant {name} to converge"), || {
        converged(leader.state(), follower.state(), name)
    });
    assert_eq!(
        state_bytes(leader.state(), name),
        state_bytes(follower.state(), name),
        "tenant {name}: follower state is not bit-identical"
    );
}

/// A raw round trip that keeps the response head, for header asserts.
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("write");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read");
    String::from_utf8_lossy(&raw).into_owned()
}

fn percent_encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Up to `want` pairwise-distinct rendered dependencies over a fresh
/// random schema (rendering is canonical, so string-distinct implies
/// compiled-distinct).
fn schema_and_pool(rng: &mut StdRng, want: usize) -> (String, Vec<String>) {
    let atoms = rng.gen_range(4..=6);
    let n = nalist_gen::attr_with_atoms(rng, atoms);
    let alg = nalist_algebra::Algebra::new(&n);
    let mut pool: Vec<String> = Vec::new();
    for _ in 0..(want * 8) {
        if pool.len() == want {
            break;
        }
        let dep = nalist_gen::random_dep(rng, &alg, 0.3, 0.3).render(&alg);
        if !pool.contains(&dep) {
            pool.push(dep);
        }
    }
    (n.to_string(), pool)
}

fn deps(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| (*s).to_string()).collect()
}

#[test]
fn follower_converges_bit_identically_and_rejects_writes() {
    let dir = temp_dir("e2e");
    let leader = boot_leader(&dir);
    let laddr = leader.local_addr();
    create_tenant(
        laddr,
        "t",
        "L(A, B, C)",
        &deps(&["L(A) -> L(B)", "L(B) ->> L(C)"]),
    );
    create_tenant(laddr, "u", "M(X, Y)", &deps(&["M(X) -> M(Y)"]));
    edit(laddr, "t", "add", "L(C) -> L(A)");

    let follower = boot_follower(laddr);
    let faddr = follower.local_addr();

    // The readiness latch: 503 until every discovered tenant caught up.
    wait_until("follower readiness", || {
        request(faddr, "GET", "/healthz", None).0 == 200
    });
    let (_, health) = request(faddr, "GET", "/healthz", None);
    assert!(health.contains("\"role\": \"follower\""), "{health}");
    assert!(health.contains("\"ready\": true"), "{health}");
    assert!(health.contains("\"tenants\": 2"), "{health}");

    // Churn after catch-up: the tailers keep following.
    edit(laddr, "t", "remove", "L(B) ->> L(C)");
    edit(laddr, "t", "add", "L(A) ->> L(C)");
    edit(laddr, "u", "add", "M(Y) -> M(X)");
    assert_bit_identical(&leader, &follower, "t");
    assert_bit_identical(&leader, &follower, "u");

    // Byte-identical answers: Σ (modulo session-local cache counters)
    // and every query exchange.
    let probes = [
        ("t", "L(A) -> L(B)"),
        ("t", "L(A) -> L(C)"),
        ("t", "L(B) ->> L(C)"),
        ("t", "L(C) ->> L(B)"),
        ("u", "M(X) -> M(Y)"),
        ("u", "M(Y) ->> M(X)"),
    ];
    for name in ["t", "u"] {
        let (ls, lb) = request(laddr, "GET", &format!("/v1/{name}/sigma"), None);
        let (fs, fb) = request(faddr, "GET", &format!("/v1/{name}/sigma"), None);
        assert_eq!((ls, sigma_part(&lb)), (fs, sigma_part(&fb)));
    }
    for (name, dep) in probes {
        assert_eq!(
            query_exchange(laddr, name, dep),
            query_exchange(faddr, name, dep),
            "query {dep} diverged between leader and follower"
        );
    }

    // Writes are rejected with 421 and a pointer at the leader.
    for (path, body) in [
        ("/v1/t/edit", r#"{"op": "add", "dep": "L(A) -> L(B)"}"#),
        ("/v1/w/create", r#"{"schema": "L(A)", "deps": []}"#),
        ("/v1/t/reload", "L(A) -> L(B)\n"),
    ] {
        let raw = raw_request(faddr, "POST", path, Some(body));
        assert!(raw.contains(" 421 "), "{path}: {raw}");
        assert!(raw.contains("follower_read_only"), "{path}: {raw}");
        assert!(
            raw.to_ascii_lowercase().contains("\r\nleader: "),
            "{path}: no leader header in {raw}"
        );
    }

    // The follower's /metrics carries the replication object.
    let (status, metrics) = request(faddr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(metrics.contains("\"replication\""), "{metrics}");
    assert!(metrics.contains("\"role\": \"follower\""), "{metrics}");

    // Follower certificates pass the independent trusted checker,
    // verified against the leader's authoritative schema + Σ.
    let (_, sigma_body) = request(laddr, "GET", "/v1/t/sigma", None);
    let doc = parse_json(&sigma_body).expect("sigma JSON");
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .expect("schema field")
        .to_string();
    let deps_src: String = doc
        .get("sigma")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|d| d.get("dep").and_then(Json::as_str))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .expect("sigma array");
    let budget = nalist_guard::Budget::unlimited();
    for dep in ["L(A) -> L(C)", "L(C) ->> L(B)", "L(B) -> L(A)"] {
        let (status, cert_body) = request(
            faddr,
            "GET",
            &format!("/v1/t/cert?dep={}", percent_encode(dep)),
            None,
        );
        assert_eq!(status, 200, "{cert_body}");
        let cert_src = parse_json(&cert_body)
            .expect("cert JSON")
            .get("certificate")
            .map(Json::render)
            .expect("certificate field");
        let cert = nalist_check::Certificate::from_json(&cert_src).expect("parsable certificate");
        nalist_check::verify(&schema, &deps_src, &cert, &budget)
            .unwrap_or_else(|e| panic!("follower certificate for {dep} rejected: {e}"));
    }

    follower.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An in-process TCP proxy that, once armed, flips one byte in the body
/// of the next non-empty `/wal` response — corruption in flight between
/// leader and follower.
struct FlipProxy {
    addr: SocketAddr,
    armed: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl FlipProxy {
    fn start(upstream: SocketAddr) -> FlipProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let armed = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let armed = Arc::clone(&armed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut client) = conn else { continue };
                    let armed = Arc::clone(&armed);
                    std::thread::spawn(move || {
                        let _ = relay(&mut client, upstream, &armed);
                    });
                }
            })
        };
        FlipProxy {
            addr,
            armed,
            stop,
            handle,
        }
    }

    fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = self.handle.join();
    }
}

fn relay(client: &mut TcpStream, upstream: SocketAddr, armed: &AtomicBool) -> std::io::Result<()> {
    client.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut req = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    // Replication requests are bodyless GETs: the head is the request.
    while !req.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = client.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        req.extend_from_slice(&buf[..n]);
    }
    let is_wal = req.starts_with(b"GET ") && req.windows(5).any(|w| w == b"/wal?");
    let mut server = TcpStream::connect(upstream)?;
    server.set_read_timeout(Some(Duration::from_secs(10)))?;
    server.write_all(&req)?;
    let mut resp = Vec::new();
    loop {
        let n = server.read(&mut buf)?;
        if n == 0 {
            break;
        }
        resp.extend_from_slice(&buf[..n]);
    }
    if is_wal && armed.load(Ordering::SeqCst) {
        if let Some(split) = resp.windows(4).position(|w| w == b"\r\n\r\n") {
            let body_start = split + 4;
            if resp.len() > body_start && armed.swap(false, Ordering::SeqCst) {
                let mid = body_start + (resp.len() - body_start) / 2;
                resp[mid] ^= 0xFF;
            }
        }
    }
    client.write_all(&resp)?;
    Ok(())
}

#[test]
fn corrupt_shipment_in_flight_is_rejected_and_refetched() {
    let dir = temp_dir("flip");
    let leader = boot_leader(&dir);
    let laddr = leader.local_addr();
    create_tenant(laddr, "c", "L(A, B, C)", &deps(&["L(A) -> L(B)"]));

    let proxy = FlipProxy::start(laddr);
    let follower = boot_follower(proxy.addr);
    let faddr = follower.local_addr();
    wait_until("follower readiness", || {
        request(faddr, "GET", "/healthz", None).0 == 200
    });

    // Arm the proxy, then ship records through it: the first non-empty
    // WAL response arrives with one byte flipped.
    proxy.armed.store(true, Ordering::SeqCst);
    edit(laddr, "c", "add", "L(B) ->> L(C)");
    edit(laddr, "c", "add", "L(C) -> L(A)");

    // The corrupt shipment is a typed reject — counted, never applied —
    // and the re-fetch of the same offsets converges to identical state.
    wait_until("the corrupt shipment to be rejected", || {
        follower.status().rejected_segments() >= 1
    });
    assert_bit_identical(&leader, &follower, "c");
    assert_eq!(
        query_exchange(laddr, "c", "L(A) -> L(C)"),
        query_exchange(faddr, "c", "L(A) -> L(C)"),
    );

    follower.shutdown();
    proxy.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_follower_bootstraps_fresh_and_catches_up_bit_identically() {
    let dir = temp_dir("fkill");
    let leader = boot_leader(&dir);
    let laddr = leader.local_addr();
    create_tenant(laddr, "r", "L(A, B, C)", &deps(&["L(A) -> L(B)"]));

    let first = boot_follower(laddr);
    wait_until("first follower readiness", || {
        request(first.local_addr(), "GET", "/healthz", None).0 == 200
    });
    // Kill the follower right after a burst of edits — mid-replay from
    // its perspective. A follower keeps no durable state, so "restart"
    // means a fresh process bootstrapping from scratch.
    edit(laddr, "r", "add", "L(B) ->> L(C)");
    edit(laddr, "r", "add", "L(C) -> L(A)");
    first.shutdown();

    edit(laddr, "r", "remove", "L(B) ->> L(C)");
    let second = boot_follower(laddr);
    wait_until("second follower readiness", || {
        request(second.local_addr(), "GET", "/healthz", None).0 == 200
    });
    assert_bit_identical(&leader, &second, "r");
    assert!(second.status().bootstraps() >= 1);

    second.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leader_restart_compaction_forces_the_resnapshot_handshake() {
    let dir = temp_dir("compact");
    let leader = boot_leader(&dir);
    let laddr = leader.local_addr();
    create_tenant(laddr, "k", "L(A, B, C)", &deps(&["L(A) -> L(B)"]));
    edit(laddr, "k", "add", "L(B) ->> L(C)");

    let follower = boot_follower(laddr);
    let faddr = follower.local_addr();
    wait_until("follower readiness", || {
        request(faddr, "GET", "/healthz", None).0 == 200
    });
    assert_bit_identical(&leader, &follower, "k");
    assert_eq!(follower.status().bootstraps(), 1);

    // Leader goes away. The ready latch holds: the follower keeps
    // serving its last consistent state while it retries.
    leader.shutdown();
    assert_eq!(request(faddr, "GET", "/healthz", None).0, 200);
    let (status, _) = query_exchange(faddr, "k", "L(A) -> L(C)");
    assert_eq!(status, 200);

    // Reopening the same wal-dir compacts every tenant's log: same
    // state, fresh wal_id. The follower's offsets are now meaningless —
    // the handshake must notice and re-snapshot, not blindly tail.
    let restarted = {
        let addr = laddr.to_string();
        let t0 = Instant::now();
        loop {
            match try_boot_leader(&dir, &addr) {
                Ok(s) => break s,
                Err(e) => {
                    assert!(
                        t0.elapsed() < CATCHUP,
                        "cannot rebind {addr} after leader shutdown: {}",
                        e.message
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };
    edit(laddr, "k", "add", "L(C) -> L(A)");
    wait_until("the follower to re-snapshot", || {
        follower.status().bootstraps() >= 2
    });
    assert_bit_identical(&restarted, &follower, "k");
    assert_eq!(
        query_exchange(laddr, "k", "L(A) -> L(C)"),
        query_exchange(faddr, "k", "L(A) -> L(C)"),
    );

    follower.shutdown();
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Random edit scripts at the leader; the follower must converge to
    /// byte-identical state and byte-identical answers, every time.
    #[test]
    fn random_edit_scripts_converge_bit_identically(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (schema, pool) = schema_and_pool(&mut rng, 10);
        prop_assert!(pool.len() >= 4);
        let dir = temp_dir(&format!("prop-{seed}"));
        let leader = boot_leader(&dir);
        let laddr = leader.local_addr();
        let half = pool.len() / 2;
        create_tenant(laddr, "p", &schema, &pool[..half]);

        let follower = boot_follower(laddr);
        let faddr = follower.local_addr();
        wait_until("follower readiness", || {
            request(faddr, "GET", "/healthz", None).0 == 200
        });

        let mut present: Vec<String> = pool[..half].to_vec();
        for _ in 0..24 {
            let add = present.is_empty() || (present.len() < pool.len() && rng.gen_bool(0.6));
            if add {
                let absent: Vec<&String> =
                    pool.iter().filter(|d| !present.contains(d)).collect();
                let dep = absent[rng.gen_range(0..absent.len())].clone();
                edit(laddr, "p", "add", &dep);
                present.push(dep);
            } else {
                let dep = present.swap_remove(rng.gen_range(0..present.len()));
                edit(laddr, "p", "remove", &dep);
            }
        }

        assert_bit_identical(&leader, &follower, "p");
        let (ls, lb) = request(laddr, "GET", "/v1/p/sigma", None);
        let (fs, fb) = request(faddr, "GET", "/v1/p/sigma", None);
        prop_assert_eq!((ls, sigma_part(&lb)), (fs, sigma_part(&fb)));
        for dep in &pool {
            prop_assert_eq!(
                query_exchange(laddr, "p", dep),
                query_exchange(faddr, "p", dep),
                "query {} diverged", dep
            );
        }

        follower.shutdown();
        leader.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
