//! # nalist-cli
//!
//! Command-line reasoner for functional and multi-valued dependencies
//! over nested record/list schemas. All logic lives in [`run`] so that it
//! is directly testable; `main` only forwards `std::env::args` and files.
//!
//! The command set (one [`CommandSpec`] row per subcommand — the same
//! table drives the dispatcher, `usage_text()` and `nalist help`):
//!
//! ```text
//! nalist decide    <schema> <deps-file> <dependency>   decide Σ ⊨ σ (witness on "no")
//! nalist check     <schema> <deps-file> <cert-file>    verify a proof certificate without
//!                                                      the engine (trusted checker)
//! nalist batch     <schema> <deps-file> <queries-file> [--threads N]
//!                                                      decide Σ ⊨ σ for many σ in parallel
//! nalist replay    <schema> <script-file>              replay a Σ edit script (add/remove/
//!                                                      query) on the incremental reasoner
//!                                                      [--wal <log>] journals every op first
//! nalist snapshot  <schema> <deps-file> <out>          write a crash-safe snapshot of the
//!                                                      reasoner state [--warm <queries>]
//! nalist recover   <snapshot> [--wal <log>]            rebuild a reasoner from a snapshot
//!                                                      plus an optional WAL tail
//! nalist prove     <schema> <deps-file> <dependency>   emit a machine-checked derivation
//! nalist closure   <schema> <deps-file> <subattr>      attribute-set closure X⁺
//! nalist basis     <schema> <deps-file> <subattr>      dependency basis DepB(X)
//! nalist trace     <schema> <deps-file> <subattr>      Algorithm 5.1 step-by-step
//! nalist verify    <schema> <deps-file> <data-file>    check an instance against Σ
//! nalist chase     <schema> <deps-file> <data-file>    repair an instance (MVD chase)
//! nalist normalize <schema> <deps-file>                cover, keys, 4NF, decomposition
//! nalist lint      <schema> <deps-file> [--deny warnings] [--format json]
//!                                                      static analysis (rules L001–L009)
//! nalist lattice   <schema> [--dot]                    Sub(N) summary / DOT diagram
//! nalist serve     <addr> [--wal-dir <dir>]            multi-tenant HTTP reasoning
//!                                                      service (one reasoner per tenant)
//! nalist loadgen   <addr> [--rps N] [--duration-ms N]  open-loop load generator against
//!                                                      a running `nalist serve`
//! nalist help      [command]                           this listing / per-command help
//! ```
//!
//! `<schema>` is a nested attribute in the paper's notation, e.g.
//! `"Pubcrawl(Person, Visit[Drink(Beer, Pub)])"`. Dependency files hold
//! one `X -> Y` / `X ->> Y` per line (`#` comments allowed); data files
//! hold one tuple literal per line, e.g. `(Sven, [(Lübzer, Deanos)])`.
//!
//! `nalist lint` exits 0 when the spec is clean, 1 when any
//! error-severity finding (or, under `--deny warnings`, any finding at
//! all) is reported; like rustc, the diagnostics go to stderr in that
//! case.
//!
//! Every command additionally accepts the global resource flags
//! `--timeout <ms>`, `--max-atoms <n>` and `--max-depth <n>` (anywhere
//! on the command line). They bound the wall clock, the schema's basis
//! size and the nesting depth of any parsed input; exceeding one yields
//! a structured error and exit code 3.
//!
//! Observability rides on two more global flags: `--metrics <path>`
//! writes work counters, latency histograms and the span log as a JSON
//! document (schema in the `nalist-obs` crate docs; written even when
//! the command fails, so a metrics file exists for every exit code),
//! and `--trace` appends a rustc-style span tree to the output. With
//! neither flag the dispatcher runs on the no-op recorder and the
//! observed code paths compile away entirely. Under `--metrics` or
//! `--trace`, `batch` additionally reports a per-query timing
//! breakdown.
//!
//! `nalist decide`, `nalist prove` and `nalist basis` additionally
//! accept `--cert <path>`: on success they write a portable JSON proof
//! certificate (format documented in the `nalist-check` crate) that
//! `nalist check` can later verify without re-running the engine.
//!
//! Exit codes: 0 success, 1 domain error (refuted query, lint findings,
//! malformed spec contents, rejected certificate, a WAL record that no
//! longer replays), 2 usage or file-access error (also: an invalid
//! proof-rule instance surfaced by `prove`, an unreadable certificate
//! document, or a corrupt/unreadable snapshot or WAL), 3 resource
//! exhaustion.
//!
//! Snapshot and WAL files are binary (checksummed; see the
//! `nalist-store` crate) and are read and written directly on the real
//! filesystem — they bypass the text-oriented [`Files`] seam.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use nalist::membership::trace::{render_result, render_trace};
use nalist::membership::{recover, write_reasoner_snapshot, WalOp};
use nalist::obs::{
    fmt_ns, site, Counter, MetricsRecorder, MetricsSnapshot, NoopRecorder, Recorder,
};
use nalist::prelude::*;
use nalist::schema::cover::redundant_indices;
use nalist::schema::normalform::fourth_nf_violations;

/// Exit code for resource exhaustion (deadline, fuel, atom or depth
/// caps).
pub const EXIT_RESOURCE: i32 = 3;

/// CLI failure: a message for stderr plus a suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (1 = domain error, 2 = usage or file error,
    /// 3 = resource exhaustion).
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError {
            message: format!("{}\n\n{}", msg.into(), usage_text()),
            code: 2,
        }
    }

    fn domain(msg: impl std::fmt::Display) -> Self {
        CliError {
            message: msg.to_string(),
            code: 1,
        }
    }

    /// File-access failures: same code as usage errors (the input never
    /// reached the reasoner) but without the usage dump — the message
    /// already names the offending path.
    fn file(msg: impl std::fmt::Display) -> Self {
        CliError {
            message: msg.to_string(),
            code: 2,
        }
    }

    fn resource(msg: impl std::fmt::Display) -> Self {
        CliError {
            message: msg.to_string(),
            code: EXIT_RESOURCE,
        }
    }

    /// Maps a [`ReasonerError`], routing resource exhaustion to exit
    /// code 3, invalid certificate construction to exit code 2 (the
    /// input never produced a sound derivation) and everything else to
    /// the domain-error code.
    fn reasoner(e: &ReasonerError) -> Self {
        match e {
            ReasonerError::Resource(r) => CliError::resource(r),
            ReasonerError::Certify(c) => CliError {
                message: c.to_string(),
                code: 2,
            },
            other => CliError::domain(other),
        }
    }
}

/// One row of the command table: everything the dispatcher, the usage
/// string and `nalist help` need to know about a subcommand.
#[derive(Debug, Clone, Copy)]
pub struct CommandSpec {
    /// Subcommand name as typed by the user.
    pub name: &'static str,
    /// Argument synopsis (without the program or command name).
    pub synopsis: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// The full command table, in display order. [`run`] dispatches only on
/// names present here, so the usage text can never drift out of sync
/// with the dispatcher again.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "decide",
        synopsis: "<schema> <deps-file> <dependency> [--cert <path>]",
        summary: "decide Σ ⊨ σ; prints a counterexample database on \"no\"",
    },
    CommandSpec {
        name: "check",
        synopsis: "<schema> <deps-file> <cert-file> [--format json]",
        summary: "verify a proof certificate against Σ without the engine",
    },
    CommandSpec {
        name: "batch",
        synopsis: "<schema> <deps-file> <queries-file> [--threads N]",
        summary: "decide Σ ⊨ σ for every query line, in parallel (default: one thread per CPU)",
    },
    CommandSpec {
        name: "replay",
        synopsis: "<schema> <script-file> [--wal <log>]",
        summary: "replay a Σ edit script (add/remove/query) incrementally",
    },
    CommandSpec {
        name: "snapshot",
        synopsis: "<schema> <deps-file> <out> [--warm <queries-file>]",
        summary: "write a crash-safe snapshot of the reasoner state (Σ, ids, warm cache)",
    },
    CommandSpec {
        name: "recover",
        synopsis: "<snapshot> [--wal <log>]",
        summary: "rebuild the reasoner from a snapshot, replaying an optional WAL tail",
    },
    CommandSpec {
        name: "prove",
        synopsis: "<schema> <deps-file> <dependency> [--cert <path>]",
        summary: "emit a machine-checked derivation in the 14-rule system",
    },
    CommandSpec {
        name: "closure",
        synopsis: "<schema> <deps-file> <subattr>",
        summary: "attribute-set closure X⁺ under Σ",
    },
    CommandSpec {
        name: "basis",
        synopsis: "<schema> <deps-file> <subattr> [--cert <path>]",
        summary: "dependency basis DepB(X)",
    },
    CommandSpec {
        name: "trace",
        synopsis: "<schema> <deps-file> <subattr>",
        summary: "replay Algorithm 5.1 step by step",
    },
    CommandSpec {
        name: "verify",
        synopsis: "<schema> <deps-file> <data-file>",
        summary: "check a database instance against every dependency in Σ",
    },
    CommandSpec {
        name: "chase",
        synopsis: "<schema> <deps-file> <data-file>",
        summary: "repair an instance by chasing the MVDs of Σ",
    },
    CommandSpec {
        name: "normalize",
        synopsis: "<schema> <deps-file>",
        summary: "minimal cover, candidate keys, 4NF check, decomposition",
    },
    CommandSpec {
        name: "lint",
        synopsis: "<schema> <deps-file> [--deny warnings] [--format json] [--explain <rule>]",
        summary: "static analysis of the spec (rules L001–L009, with fix-its)",
    },
    CommandSpec {
        name: "lattice",
        synopsis: "<schema> [--dot]",
        summary: "Sub(N) summary, basis listing, optional DOT diagram",
    },
    CommandSpec {
        name: "serve",
        synopsis: "<addr> [--workers N] [--queue N] [--wal-dir <dir>] [--follow <leader>] [--request-fuel N] [--request-deadline-ms N] [--read-timeout-ms N] [--port-file <path>] [--max-requests N] [--stop-file <path>]",
        summary: "serve many named schemas over HTTP, one live reasoner per tenant",
    },
    CommandSpec {
        name: "loadgen",
        synopsis: "<addr> [--tenants N] [--rps N] [--duration-ms N] [--conns N] [--pool N] [--atoms N] [--edit-ratio F] [--zipf S] [--seed N] [--reuse-tenants] [--verify <follower>]",
        summary: "open-loop load generator against a running `nalist serve`",
    },
    CommandSpec {
        name: "help",
        synopsis: "[command]",
        summary: "show this listing, or details for one command",
    },
];

fn command(name: &str) -> Option<&'static CommandSpec> {
    COMMANDS.iter().find(|c| c.name == name)
}

/// One row of the global-flag table: flags accepted by *every* command,
/// extracted before dispatch. The same table drives extraction and the
/// usage text.
#[derive(Debug, Clone, Copy)]
pub struct GlobalFlagSpec {
    /// Flag as typed, e.g. `--timeout`.
    pub name: &'static str,
    /// Value placeholder for the usage text.
    pub value: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Global resource-governance flags, in display order.
pub const GLOBAL_FLAGS: &[GlobalFlagSpec] = &[
    GlobalFlagSpec {
        name: "--timeout",
        value: "<ms>",
        summary: "wall-clock deadline for the whole command (exit 3 when exceeded)",
    },
    GlobalFlagSpec {
        name: "--max-atoms",
        value: "<n>",
        summary: "refuse schemas with more than n basis attributes (exit 3)",
    },
    GlobalFlagSpec {
        name: "--max-depth",
        value: "<n>",
        summary: "refuse inputs nested deeper than n levels (exit 3)",
    },
];

/// Splits the global resource flags out of `args` (they may appear
/// anywhere) and folds them into a [`Budget`]. The remaining arguments
/// are returned for normal dispatch.
pub fn extract_global_flags(args: &[String]) -> Result<(Vec<String>, Budget), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut budget = Budget::unlimited();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(spec) = GLOBAL_FLAGS.iter().find(|f| f.name == arg.as_str()) else {
            rest.push(arg.clone());
            continue;
        };
        let raw = it.next().ok_or_else(|| {
            CliError::usage(format!("{} requires a value {}", spec.name, spec.value))
        })?;
        let n: u64 = raw
            .parse()
            .map_err(|e| CliError::usage(format!("bad {} value '{raw}': {e}", spec.name)))?;
        budget = match spec.name {
            "--timeout" => budget.with_deadline_in(Duration::from_millis(n)),
            "--max-atoms" => budget.with_max_atoms(n),
            "--max-depth" => budget.with_max_depth(n),
            _ => unreachable!("flag came from GLOBAL_FLAGS"),
        };
    }
    Ok((rest, budget))
}

/// Observability flags, accepted by every command (same table contract
/// as [`GLOBAL_FLAGS`]). `--trace` takes no value (empty `value`
/// column).
pub const OBS_FLAGS: &[GlobalFlagSpec] = &[
    GlobalFlagSpec {
        name: "--metrics",
        value: "<path>",
        summary: "write work counters, histograms and spans as JSON to <path>",
    },
    GlobalFlagSpec {
        name: "--trace",
        value: "",
        summary: "append a span tree (rustc-style) to the command output",
    },
];

/// Observability options extracted from the command line (see
/// [`OBS_FLAGS`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsOptions {
    /// Destination for the metrics JSON document (`--metrics <path>`).
    pub metrics: Option<String>,
    /// Append the span tree to the output (`--trace`).
    pub trace: bool,
}

impl ObsOptions {
    /// True when any observability output was requested. When false,
    /// [`run`] stays on the no-op recorder and pays nothing.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.trace || self.metrics.is_some()
    }
}

/// Splits the observability flags out of `args` (they may appear
/// anywhere). The remaining arguments are returned for normal dispatch.
pub fn extract_obs_flags(args: &[String]) -> Result<(Vec<String>, ObsOptions), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut opts = ObsOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => opts.trace = true,
            "--metrics" => {
                let path = it
                    .next()
                    .ok_or_else(|| CliError::usage("--metrics requires a value <path>"))?;
                opts.metrics = Some(path.clone());
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((rest, opts))
}

/// The usage text, generated from [`COMMANDS`] and [`GLOBAL_FLAGS`].
pub fn usage_text() -> String {
    let width = COMMANDS.iter().map(|c| c.name.len()).max().unwrap_or(0);
    let mut out = String::from("usage:\n");
    for c in COMMANDS {
        writeln!(out, "  nalist {:width$} {}", c.name, c.synopsis).unwrap();
    }
    out.push_str("\nglobal flags (any command):\n");
    let label = |f: &GlobalFlagSpec| {
        if f.value.is_empty() {
            f.name.to_string()
        } else {
            format!("{} {}", f.name, f.value)
        }
    };
    let fwidth = GLOBAL_FLAGS
        .iter()
        .chain(OBS_FLAGS)
        .map(|f| label(f).len())
        .max()
        .unwrap_or(0);
    for f in GLOBAL_FLAGS.iter().chain(OBS_FLAGS) {
        let flag = label(f);
        writeln!(out, "  {flag:fwidth$}  {}", f.summary).unwrap();
    }
    out.push_str(
        "\n<schema> is a nested attribute, e.g. 'Pubcrawl(Person, Visit[Drink(Beer, Pub)])'.
Dependency and query files hold one 'X -> Y' or 'X ->> Y' per line; data
files one tuple literal per line. '#' starts a comment in either. Pass
'-' as a file argument to read it from stdin. See 'nalist help <command>'
for details on one command.

exit codes: 0 success, 1 domain error, 2 usage or file error,
3 resource budget exhausted.",
    );
    out
}

/// An owned, thread-safe file writer returned by [`Files::writer`].
pub type FileWriter = Box<dyn Fn(&str, &str) -> Result<(), String> + Send>;

/// File access used by [`run`]; injectable for tests.
pub trait Files {
    /// Reads a whole file to a string.
    fn read(&self, path: &str) -> Result<String, String>;

    /// Writes a whole file (used by `--metrics`). The default refuses:
    /// test doubles that never expect writes need not implement it.
    fn write(&self, path: &str, content: &str) -> Result<(), String> {
        let _ = content;
        Err(format!("cannot write {path}: read-only file source"))
    }

    /// An owned, thread-safe writer reaching the same destination as
    /// [`Files::write`], or `None` when writes cannot outlive the
    /// calling frame (the read-only test default). Long-lived commands
    /// (`serve`, `loadgen`) use it to flush in-progress `--metrics`
    /// snapshots from a background thread while the command runs.
    fn writer(&self) -> Option<FileWriter> {
        None
    }
}

/// Real filesystem access.
pub struct OsFiles;

impl Files for OsFiles {
    fn read(&self, path: &str) -> Result<String, String> {
        if path == "-" {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            return Ok(buf);
        }
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }

    /// All CLI file outputs (metrics JSON, certificates) go through the
    /// store layer's atomic write: temp file, fsync, rename. A crash
    /// mid-write leaves the previous file intact, never a torn one.
    fn write(&self, path: &str, content: &str) -> Result<(), String> {
        nalist::store::atomic_write(std::path::Path::new(path), content.as_bytes())
            .map_err(|e| format!("cannot write {path}: {e}"))
    }

    fn writer(&self) -> Option<FileWriter> {
        Some(Box::new(|path, content| {
            nalist::store::atomic_write(std::path::Path::new(path), content.as_bytes())
                .map_err(|e| format!("cannot write {path}: {e}"))
        }))
    }
}

/// An unparsable schema is a domain error (exit 1) — except depth-limit
/// violations, which honour the resource contract `--max-depth`
/// documents (exit 3).
fn schema_error(e: &ParseError) -> CliError {
    let message = format!("bad schema attribute: {e}");
    match e {
        ParseError::TooDeep { .. } => CliError::resource(message),
        _ => CliError::domain(message),
    }
}

fn load_reasoner(
    files: &dyn Files,
    schema: &str,
    deps_path: &str,
    budget: &Budget,
    rec: &Arc<dyn Recorder>,
) -> Result<Reasoner, CliError> {
    let limits = ParseLimits::from_budget(budget);
    let n = parse_attr_with(schema, limits).map_err(|e| schema_error(&e))?;
    let mut r =
        Reasoner::try_new_observed(&n, budget, Arc::clone(rec)).map_err(CliError::resource)?;
    let text = files.read(deps_path).map_err(CliError::file)?;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let dep = Dependency::parse_with(r.attr(), line, limits)
            .map_err(|e| CliError::domain(format!("{deps_path}:{}: {e}", lineno + 1)))?;
        r.add(dep)
            .map_err(|e| CliError::domain(format!("{deps_path}:{}: {e}", lineno + 1)))?;
    }
    Ok(r)
}

fn checkpoint(budget: &Budget) -> Result<(), CliError> {
    budget.check_deadline().map_err(CliError::resource)
}

/// Executes a CLI invocation; `args` excludes the program name.
/// Observability flags come out first (see [`OBS_FLAGS`]), then the
/// global resource flags (see [`GLOBAL_FLAGS`]); everything else is
/// dispatched with the resulting [`Budget`]. Without `--metrics` or
/// `--trace` the command runs on the no-op recorder — the observed
/// paths cost nothing and the output is byte-identical to older
/// releases.
pub fn run(args: &[String], files: &dyn Files) -> Result<String, CliError> {
    let (rest, obs) = extract_obs_flags(args)?;
    let (rest, budget) = extract_global_flags(&rest)?;
    if obs.enabled() {
        run_observed(&rest, files, &budget, &obs)
    } else {
        run_with_budget(&rest, files, &budget)
    }
}

/// [`run`] with an explicit [`Budget`] — the injection point for
/// fault-tolerance tests (fail points, pre-armed deadlines). Runs on
/// the no-op recorder.
pub fn run_with_budget(
    args: &[String],
    files: &dyn Files,
    budget: &Budget,
) -> Result<String, CliError> {
    let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
    dispatch(args, files, budget, &rec)
}

/// [`run`] with injected [`FailPoint`]s folded into the budget parsed
/// from the command line. This is how `main` arms the
/// `NALIST_FAILPOINT` environment hook (and how the crash-recovery CI
/// job crashes a release binary at a chosen store site) without any
/// library code reading process environment.
pub fn run_with_failpoints(
    args: &[String],
    files: &dyn Files,
    failpoints: Vec<nalist::guard::FailPoint>,
) -> Result<String, CliError> {
    let (rest, obs) = extract_obs_flags(args)?;
    let (rest, mut budget) = extract_global_flags(&rest)?;
    for fp in failpoints {
        budget = budget.with_failpoint(fp);
    }
    if obs.enabled() {
        run_observed(&rest, files, &budget, &obs)
    } else {
        run_with_budget(&rest, files, &budget)
    }
}

/// Parses a `NALIST_FAILPOINT`-style spec: `<site>=<action>` with
/// `action` one of `panic`, `exhaust` (every hit) or `panic@N` /
/// `exhaust@N` (only the `N`-th hit, 0-based). Multiple specs separated
/// by `;`. Returns `Err` with a message on a malformed spec.
pub fn parse_failpoint_spec(spec: &str) -> Result<Vec<nalist::guard::FailPoint>, String> {
    use nalist::guard::{FailAction, FailPoint};
    let mut out = Vec::new();
    for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let (site, action) = part
            .trim()
            .split_once('=')
            .ok_or_else(|| format!("bad fail-point spec {part:?} (expected <site>=<action>)"))?;
        let (name, nth) = match action.split_once('@') {
            Some((name, n)) => {
                let n: u64 = n
                    .parse()
                    .map_err(|e| format!("bad fail-point hit index {n:?}: {e}"))?;
                (name, Some(n))
            }
            None => (action, None),
        };
        let act = match name {
            "panic" => FailAction::Panic,
            "exhaust" => FailAction::ExhaustFuel,
            other => {
                return Err(format!(
                    "unknown fail-point action {other:?} (expected panic or exhaust)"
                ))
            }
        };
        out.push(match nth {
            Some(n) => FailPoint::nth(site, n, act),
            None => FailPoint::every(site, act),
        });
    }
    Ok(out)
}

/// [`run`] under a live [`MetricsRecorder`]: the whole command runs
/// inside a root `cli::command` span, the budget's spent fuel lands in
/// the `fuel_spent` counter at exit, `--metrics` serialises the final
/// snapshot as JSON (even when the command fails — every exit code
/// leaves a metrics file), and `--trace` appends the rendered span
/// tree to the output (or to the error message).
fn run_observed(
    args: &[String],
    files: &dyn Files,
    budget: &Budget,
    obs: &ObsOptions,
) -> Result<String, CliError> {
    let metrics = Arc::new(MetricsRecorder::new());
    let rec: Arc<dyn Recorder> = metrics.clone();
    let token = rec.enter(site::CLI_COMMAND, args.len() as u64);
    // Long-lived commands flush an in-progress snapshot every 500 ms so
    // `--metrics` is useful *while* the daemon runs, not only at exit.
    // The final write below still lands the authoritative document: the
    // `finalized` latch flips *before* the join, and the flusher
    // re-checks it immediately before every write, so no interleaving
    // can stamp `in_progress: true` over the final snapshot.
    let finalized = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flusher = obs.metrics.as_ref().and_then(|path| {
        let cmd = args.first().filter(|c| *c == "serve" || *c == "loadgen")?;
        let write = files.writer()?;
        let (cmd, path) = (cmd.clone(), path.clone());
        let m = Arc::clone(&metrics);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stopped = Arc::clone(&stop);
        let done = Arc::clone(&finalized);
        let handle = std::thread::spawn(move || {
            let mut waited_ms = 0u64;
            loop {
                // Sleep in 50 ms steps so a shutdown is noticed fast
                // instead of waiting out a full flush period.
                std::thread::sleep(Duration::from_millis(50));
                if stopped.load(std::sync::atomic::Ordering::SeqCst)
                    || done.load(std::sync::atomic::Ordering::SeqCst)
                {
                    return;
                }
                waited_ms += 50;
                if waited_ms < 500 {
                    continue;
                }
                waited_ms = 0;
                let doc = nalist::obs::render_snapshot_json(&cmd, 0, true, &m.snapshot());
                if done.load(std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                let _ = write(&path, &doc);
            }
        });
        Some((stop, handle))
    });
    let mut result = dispatch(args, files, budget, &rec);
    finalized.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some((stop, handle)) = flusher {
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let _ = handle.join();
    }
    rec.add(Counter::FuelSpent, budget.spent());
    rec.exit(token, u64::from(result.is_ok()));
    let snap = metrics.snapshot();
    if args.first().is_some_and(|c| c == "batch") {
        if let Ok(out) = &mut result {
            out.push_str(&batch_timing_breakdown(&snap));
        }
    }
    if let Some(path) = &obs.metrics {
        let exit_code = match &result {
            Ok(_) => 0,
            Err(e) => e.code,
        };
        let doc = render_metrics_json(args, exit_code, &snap);
        match files.write(path, &doc) {
            // A failed metrics write must never mask the command's own
            // error; it only surfaces when the command itself succeeded.
            Err(e) if result.is_ok() => return Err(CliError::file(e)),
            _ => {}
        }
    }
    if obs.trace {
        let tree = metrics.render_trace();
        match &mut result {
            Ok(out) => {
                if !out.is_empty() && !out.ends_with('\n') {
                    out.push('\n');
                }
                out.push_str(&tree);
            }
            Err(e) => {
                e.message.push('\n');
                e.message.push_str(tree.trim_end());
            }
        }
    }
    result
}

/// Per-query latency lines for `batch`, reconstructed from the
/// `batch::query` spans (enter payload: query index; exit payload: 1
/// when the query was answered without error).
fn batch_timing_breakdown(snap: &MetricsSnapshot) -> String {
    let mut queries: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.site == site::BATCH_QUERY)
        .collect();
    if queries.is_empty() {
        return String::new();
    }
    queries.sort_by_key(|s| s.payload_in);
    let mut out = String::from("per-query timing:\n");
    for s in &queries {
        writeln!(
            out,
            "  query {:>4}  {:>10}  {}",
            s.payload_in,
            fmt_ns(s.dur_ns),
            if s.payload_out == 1 { "ok" } else { "err" }
        )
        .unwrap();
    }
    out
}

/// Serialises a [`MetricsSnapshot`] as the `--metrics` JSON document.
/// Delegates to [`nalist::obs::render_snapshot_json`] (`schema_version`
/// 2), which the serve path reuses for `GET /metrics` and for periodic
/// mid-run flushes.
fn render_metrics_json(args: &[String], exit_code: i32, snap: &MetricsSnapshot) -> String {
    let command = args.first().map_or("", String::as_str);
    nalist::obs::render_snapshot_json(command, exit_code, false, snap)
}

/// The dispatcher proper: one arm per [`COMMANDS`] row, running under
/// `budget` and reporting to `rec`.
fn dispatch(
    args: &[String],
    files: &dyn Files,
    budget: &Budget,
    rec: &Arc<dyn Recorder>,
) -> Result<String, CliError> {
    let mut out = String::new();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => return Err(CliError::usage("missing command")),
    };
    let spec = command(cmd).ok_or_else(|| {
        let hint = COMMANDS
            .iter()
            .find(|c| c.name.starts_with(cmd) || cmd.starts_with(c.name))
            .map(|c| format!(" (did you mean `{}`?)", c.name))
            .unwrap_or_default();
        CliError::usage(format!("unknown command `{cmd}`{hint}"))
    })?;
    match (cmd, rest) {
        ("decide", [schema, deps, dep, flags @ ..]) => {
            let cert_path = parse_cert_flag("decide", flags)?;
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            let alg = r.algebra();
            let target = Dependency::parse_with(r.attr(), dep, ParseLimits::from_budget(budget))
                .map_err(|e| CliError::domain(format!("bad dependency: {e}")))?
                .compile(alg)
                .map_err(CliError::domain)?;
            checkpoint(budget)?;
            let refutation = nalist::membership::witness::refute_governed(
                alg,
                r.compiled_sigma(),
                &target,
                budget,
            )
            .map_err(witness_error)?;
            match &refutation {
                None => {
                    writeln!(out, "IMPLIED: Σ ⊨ {}", target.render(alg)).unwrap();
                }
                Some(w) => {
                    writeln!(out, "NOT IMPLIED: Σ ⊭ {}", target.render(alg)).unwrap();
                    writeln!(
                        out,
                        "counterexample ({} tuples; satisfies Σ, violates the dependency):",
                        w.instance.len()
                    )
                    .unwrap();
                    for t in w.instance.iter() {
                        writeln!(out, "  {t}").unwrap();
                    }
                }
            }
            if let Some(path) = cert_path {
                let cert = match &refutation {
                    None => {
                        let dag = nalist::membership::certify_governed(
                            alg,
                            r.compiled_sigma(),
                            &target,
                            budget,
                        )
                        .map_err(certify_error)?
                        .ok_or_else(|| {
                            CliError::domain("internal: implied but no derivation found")
                        })?;
                        nalist::membership::cert::implied_certificate(
                            alg,
                            r.compiled_sigma(),
                            &target,
                            &dag,
                        )
                    }
                    Some(w) => nalist::membership::cert::refuted_certificate(
                        alg,
                        r.compiled_sigma(),
                        &target,
                        w,
                    ),
                };
                write_certificate(files, path, &cert, &mut out)?;
            }
        }
        ("check", [schema, deps, cert_file, flags @ ..]) => {
            let format = parse_check_flags(flags)?;
            let deps_src = files.read(deps).map_err(CliError::file)?;
            let cert_src = files.read(cert_file).map_err(CliError::file)?;
            let cert = Certificate::from_json(&cert_src).map_err(|e| CliError {
                message: format!("{cert_file}: {e}"),
                code: 2,
            })?;
            let token = rec.enter(site::CHECK_VERIFY, cert.derivation.len() as u64);
            let result = check_certificate(schema, &deps_src, &cert, budget);
            rec.exit(token, u64::from(result.is_ok()));
            match result {
                Ok(report) => {
                    rec.add(Counter::CertNodes, report.nodes as u64);
                    rec.add(Counter::CertTuples, report.tuples as u64);
                    match format {
                        CheckFormat::Human => {
                            writeln!(
                                out,
                                "ACCEPTED: certificate verifies ({})",
                                report.verdict.as_str()
                            )
                            .unwrap();
                            writeln!(out, "statement: {}", report.statement).unwrap();
                            writeln!(
                                out,
                                "replayed {} derivation node(s), re-checked {} tuple(s)",
                                report.nodes, report.tuples
                            )
                            .unwrap();
                        }
                        CheckFormat::Json => {
                            out.push_str(&render_check_json(Ok(&report)));
                            out.push('\n');
                        }
                    }
                }
                Err(e) => {
                    let code = if e.is_resource() {
                        EXIT_RESOURCE
                    } else if e.is_input_error() {
                        2
                    } else {
                        1
                    };
                    let message = match format {
                        CheckFormat::Human => format!("REJECTED: {e}"),
                        CheckFormat::Json => render_check_json(Err(&e)),
                    };
                    return Err(CliError { message, code });
                }
            }
        }
        ("batch", [schema, deps, queries, flags @ ..]) => {
            let threads = match flags {
                [] => default_batch_threads(),
                [flag, n] if flag == "--threads" => n
                    .parse::<std::num::NonZeroUsize>()
                    .map_err(|e| CliError::usage(format!("bad --threads value '{n}': {e}")))?,
                _ => return Err(CliError::usage("unknown flags for batch")),
            };
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            let alg = r.algebra();
            let text = files.read(queries).map_err(CliError::file)?;
            let limits = ParseLimits::from_budget(budget);
            let mut targets = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let dep = Dependency::parse_with(r.attr(), line, limits)
                    .map_err(|e| CliError::domain(format!("{queries}:{}: {e}", lineno + 1)))?;
                targets.push(dep);
            }
            let verdicts = r
                .implies_batch_governed_with(&targets, budget, threads)
                .map_err(|e| CliError::reasoner(&e))?;
            let (mut implied, mut failed) = (0, 0);
            for (dep, verdict) in targets.iter().zip(&verdicts) {
                let c = dep.compile(alg).expect("batch already compiled it");
                match verdict {
                    Ok(true) => {
                        implied += 1;
                        writeln!(out, "IMPLIED      {}", c.render(alg)).unwrap();
                    }
                    Ok(false) => {
                        writeln!(out, "NOT IMPLIED  {}", c.render(alg)).unwrap();
                    }
                    Err(e) => {
                        failed += 1;
                        writeln!(out, "ERROR        {}: {e}", c.render(alg)).unwrap();
                    }
                }
            }
            let decided = verdicts.len() - failed;
            write!(
                out,
                "{implied}/{decided} implied, {} not",
                decided - implied
            )
            .unwrap();
            if failed > 0 {
                writeln!(out, ", {failed} failed").unwrap();
                // Partial results still reach the user (on stderr), but
                // the process reports the degradation.
                return Err(CliError::resource(out.trim_end()));
            }
            out.push('\n');
        }
        ("replay", [schema, script, flags @ ..]) => {
            let wal_path = parse_wal_flag("replay", flags)?;
            let limits = ParseLimits::from_budget(budget);
            let n = parse_attr_with(schema, limits).map_err(|e| schema_error(&e))?;
            let mut r = Reasoner::try_new_observed(&n, budget, Arc::clone(rec))
                .map_err(CliError::resource)?;
            // Write-ahead journal: the header names the (canonical)
            // schema, then every op is journaled *before* it is applied
            // — after a crash, `nalist recover --wal` replays exactly
            // the operations the live process had committed to.
            let mut journaled = 0u64;
            let mut wal = match wal_path {
                None => None,
                Some(path) => {
                    let mut w = WalWriter::create(Path::new(path), true).map_err(store_error)?;
                    w.append(
                        &WalOp::Header {
                            schema: n.to_string(),
                        }
                        .encode(),
                        budget,
                        rec.as_ref(),
                    )
                    .map_err(store_error)?;
                    journaled += 1;
                    Some(w)
                }
            };
            let text = files.read(script).map_err(CliError::file)?;
            let (mut adds, mut removes, mut queries) = (0u64, 0u64, 0u64);
            for (lineno, raw) in text.lines().enumerate() {
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                checkpoint(budget)?;
                let here = |e: &dyn std::fmt::Display| {
                    CliError::domain(format!("{script}:{}: {e}", lineno + 1))
                };
                let (op, payload) = line
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| here(&"expected '<op> <dependency>'"))?;
                let payload = payload.trim();
                let parse = || Dependency::parse_with(&n, payload, limits).map_err(|e| here(&e));
                let wal_op = match op {
                    "+" | "add" => Some(WalOp::Add(payload.to_string())),
                    "-" | "remove" => Some(WalOp::Remove(payload.to_string())),
                    "?" | "query" => Some(WalOp::Query(payload.to_string())),
                    _ => None,
                };
                if let (Some(w), Some(wal_op)) = (wal.as_mut(), &wal_op) {
                    w.append(&wal_op.encode(), budget, rec.as_ref())
                        .map_err(store_error)?;
                    journaled += 1;
                }
                match op {
                    "+" | "add" => {
                        let dep = parse()?;
                        r.add(dep).map_err(|e| here(&e))?;
                        adds += 1;
                        writeln!(out, "add          {payload}").unwrap();
                    }
                    "-" | "remove" => {
                        let dep = parse()?;
                        if !r.remove(&dep).map_err(|e| here(&e))? {
                            return Err(here(&format!("dependency not in Σ: {payload}")));
                        }
                        removes += 1;
                        writeln!(out, "remove       {payload}").unwrap();
                    }
                    "?" | "query" => {
                        let dep = parse()?;
                        let verdict = r.implies_governed(&dep, budget).map_err(|e| match e {
                            ReasonerError::Resource(res) => CliError::resource(res),
                            other => here(&other),
                        })?;
                        queries += 1;
                        let tag = if verdict { "IMPLIED" } else { "NOT IMPLIED" };
                        writeln!(out, "{tag:<12} {payload}").unwrap();
                    }
                    other => {
                        return Err(here(&format!(
                            "unknown op '{other}' (expected +/add, -/remove or ?/query)"
                        )))
                    }
                }
            }
            let stats = r.cache_stats();
            writeln!(
                out,
                "Σ: {} dependencies after {adds} add(s), {removes} remove(s), {queries} query(ies)",
                r.sigma().len()
            )
            .unwrap();
            writeln!(
                out,
                "cache: {} hits, {} misses, {} retained, {} evicted across edits",
                stats.hits, stats.misses, stats.retained, stats.evicted
            )
            .unwrap();
            if let Some(path) = wal_path {
                drop(wal);
                writeln!(out, "WAL: journaled {journaled} record(s) to {path}").unwrap();
            }
        }
        ("snapshot", [schema, deps, out_path, flags @ ..]) => {
            let warm = parse_warm_flag(flags)?;
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            if let Some(queries_path) = warm {
                let text = files.read(queries_path).map_err(CliError::file)?;
                let limits = ParseLimits::from_budget(budget);
                let mut warmed = 0u64;
                for (lineno, line) in text.lines().enumerate() {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    checkpoint(budget)?;
                    let dep = Dependency::parse_with(r.attr(), line, limits).map_err(|e| {
                        CliError::domain(format!("{queries_path}:{}: {e}", lineno + 1))
                    })?;
                    r.implies_governed(&dep, budget)
                        .map_err(|e| CliError::reasoner(&e))?;
                    warmed += 1;
                }
                writeln!(out, "warmed the cache with {warmed} query(ies)").unwrap();
            }
            checkpoint(budget)?;
            let bytes = write_reasoner_snapshot(Path::new(out_path), &r, budget, rec.as_ref())
                .map_err(persist_error)?;
            writeln!(out, "snapshot written to {out_path} ({bytes} bytes)").unwrap();
            writeln!(
                out,
                "Σ: {} dependencies, cache: {} warm entries",
                r.sigma().len(),
                r.cache_stats().entries
            )
            .unwrap();
        }
        ("recover", [snap, flags @ ..]) => {
            let wal_path = parse_wal_flag("recover", flags)?;
            checkpoint(budget)?;
            let report = recover(
                Path::new(snap),
                wal_path.map(Path::new),
                budget,
                Arc::clone(rec),
            )
            .map_err(persist_error)?;
            let r = &report.reasoner;
            writeln!(out, "recovered {}", r.attr()).unwrap();
            writeln!(out, "Σ ({} dependencies):", r.sigma().len()).unwrap();
            for (dep, id) in r.sigma().iter().zip(r.dep_ids()) {
                writeln!(out, "  [{id}] {}", dep.display_in(r.attr())).unwrap();
            }
            if wal_path.is_some() {
                if let Some(at) = report.truncated_at {
                    writeln!(out, "WAL: torn tail truncated at byte {at}").unwrap();
                }
                writeln!(
                    out,
                    "WAL: replayed {} add(s), {} remove(s), {} query(ies)",
                    report.adds, report.removes, report.queries
                )
                .unwrap();
            }
            writeln!(out, "cache: {} warm entries", r.cache_stats().entries).unwrap();
        }
        ("prove", [schema, deps, dep, flags @ ..]) => {
            let cert_path = parse_cert_flag("prove", flags)?;
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            let alg = r.algebra();
            let target = Dependency::parse_with(r.attr(), dep, ParseLimits::from_budget(budget))
                .map_err(|e| CliError::domain(format!("bad dependency: {e}")))?
                .compile(alg)
                .map_err(CliError::domain)?;
            checkpoint(budget)?;
            let proof =
                nalist::membership::certify_governed(alg, r.compiled_sigma(), &target, budget)
                    .map_err(certify_error)?;
            match proof {
                None => {
                    writeln!(
                        out,
                        "NOT IMPLIED: Σ ⊭ {} (no derivation exists)",
                        target.render(alg)
                    )
                    .unwrap();
                    if let Some(path) = cert_path {
                        let w = nalist::membership::witness::refute_governed(
                            alg,
                            r.compiled_sigma(),
                            &target,
                            budget,
                        )
                        .map_err(witness_error)?
                        .ok_or_else(|| {
                            CliError::domain("internal: not implied but no witness found")
                        })?;
                        let cert = nalist::membership::cert::refuted_certificate(
                            alg,
                            r.compiled_sigma(),
                            &target,
                            &w,
                        );
                        write_certificate(files, path, &cert, &mut out)?;
                    }
                }
                Some(dag) => {
                    dag.check(alg, r.compiled_sigma()).map_err(|e| {
                        CliError::domain(format!("internal: certificate invalid: {e}"))
                    })?;
                    writeln!(
                        out,
                        "IMPLIED — machine-checked derivation ({} nodes):",
                        dag.len()
                    )
                    .unwrap();
                    out.push_str(&dag.render(alg));
                    if let Some(path) = cert_path {
                        let cert = nalist::membership::cert::implied_certificate(
                            alg,
                            r.compiled_sigma(),
                            &target,
                            &dag,
                        );
                        write_certificate(files, path, &cert, &mut out)?;
                    }
                }
            }
        }
        ("closure", [schema, deps, sub]) => {
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            let c = r
                .closure_str_governed(sub, budget)
                .map_err(|e| CliError::reasoner(&e))?;
            writeln!(
                out,
                "{}+ = {}",
                sub,
                nalist::types::display::abbreviate(&c, r.attr())
            )
            .unwrap();
        }
        ("basis" | "trace", [schema, deps, sub, flags @ ..]) => {
            let cert_path = if cmd == "basis" {
                parse_cert_flag("basis", flags)?
            } else if flags.is_empty() {
                None
            } else {
                return Err(CliError::usage("unknown flags for trace"));
            };
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            let alg = r.algebra();
            let x = nalist::types::parser::parse_subattr_of_with(
                r.attr(),
                sub,
                ParseLimits::from_budget(budget),
            )
            .map_err(|e| CliError::domain(format!("bad subattribute: {e}")))?;
            let xs = alg.from_attr(&x).map_err(CliError::domain)?;
            checkpoint(budget)?;
            if cmd == "trace" {
                let (basis, trace) = closure_and_basis_traced(alg, r.compiled_sigma(), &xs);
                out.push_str(&render_trace(alg, r.compiled_sigma(), &trace));
                out.push_str(&render_result(alg, &basis));
            } else {
                let basis = r
                    .dependency_basis_governed(&xs, budget)
                    .map_err(|e| match e {
                        ClosureError::Resource(res) => CliError::resource(res),
                        other => CliError::domain(other),
                    })?;
                writeln!(out, "X+ = {}", alg.render(&basis.closure)).unwrap();
                writeln!(out, "DepB(X) ({} elements):", basis.basis.len()).unwrap();
                for b in &basis.basis {
                    writeln!(out, "  {}", alg.render(b)).unwrap();
                }
                if let Some(path) = cert_path {
                    let cb = nalist::membership::certified_closure_and_basis_governed(
                        alg,
                        r.compiled_sigma(),
                        &xs,
                        budget,
                    )
                    .map_err(certify_error)?;
                    let cert = nalist::membership::cert::basis_certificate(
                        alg,
                        r.compiled_sigma(),
                        &xs,
                        &cb,
                    );
                    write_certificate(files, path, &cert, &mut out)?;
                }
            }
        }
        ("chase", [schema, deps, data]) => {
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            let alg = r.algebra();
            let mut instance = Instance::new(r.attr().clone());
            let text = files.read(data).map_err(CliError::file)?;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                instance
                    .insert_str(line)
                    .map_err(|e| CliError::domain(format!("{data}:{}: {e}", lineno + 1)))?;
            }
            match nalist::deps::chase::chase_observed(
                alg,
                r.compiled_sigma(),
                &instance,
                1 << 16,
                budget,
                rec.as_ref(),
            ) {
                Ok(result) => {
                    writeln!(
                        out,
                        "chase succeeded after {} round(s), {} tuple(s) added:",
                        result.rounds, result.added
                    )
                    .unwrap();
                    for t in result.instance.iter() {
                        writeln!(out, "  {t}").unwrap();
                    }
                }
                Err(ChaseError::Resource(e)) => return Err(CliError::resource(e)),
                Err(e) => return Err(CliError::domain(format!("chase failed: {e}"))),
            }
        }
        ("verify", [schema, deps, data]) => {
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            let alg = r.algebra();
            let mut instance = Instance::new(r.attr().clone());
            let text = files.read(data).map_err(CliError::file)?;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                instance
                    .insert_str(line)
                    .map_err(|e| CliError::domain(format!("{data}:{}: {e}", lineno + 1)))?;
            }
            writeln!(out, "instance: {} tuples", instance.len()).unwrap();
            let mut violated = 0;
            for (i, d) in r.compiled_sigma().iter().enumerate() {
                checkpoint(budget)?;
                let ok = instance.satisfies(alg, d);
                if !ok {
                    violated += 1;
                }
                writeln!(
                    out,
                    "  [{}] {:<60} {}",
                    i + 1,
                    d.render(alg),
                    if ok { "satisfied" } else { "VIOLATED" }
                )
                .unwrap();
            }
            writeln!(
                out,
                "{}",
                if violated == 0 {
                    "instance satisfies Σ".to_string()
                } else {
                    format!("instance violates {violated} dependencies")
                }
            )
            .unwrap();
        }
        ("normalize", [schema, deps]) => {
            let r = load_reasoner(files, schema, deps, budget, rec)?;
            let alg = r.algebra();
            let sigma = r.compiled_sigma();
            checkpoint(budget)?;
            let redundant = redundant_indices(alg, sigma);
            writeln!(
                out,
                "Σ: {} dependencies, {} redundant",
                sigma.len(),
                redundant.len()
            )
            .unwrap();
            let cover = minimal_cover(alg, sigma);
            writeln!(out, "minimal cover ({} dependencies):", cover.len()).unwrap();
            for d in &cover {
                writeln!(out, "  {}", d.render(alg)).unwrap();
            }
            checkpoint(budget)?;
            let keys = candidate_keys(alg, sigma, 8);
            writeln!(out, "candidate keys ({}):", keys.len()).unwrap();
            for k in &keys {
                writeln!(out, "  {}", alg.render(k)).unwrap();
            }
            let violations = fourth_nf_violations(alg, sigma);
            if violations.is_empty() {
                writeln!(out, "schema is in 4NF-with-lists").unwrap();
            } else {
                writeln!(out, "4NF violations ({}):", violations.len()).unwrap();
                for v in &violations {
                    writeln!(out, "  {}", v.reason).unwrap();
                }
                let comps = decompose_4nf(alg, sigma, 8);
                writeln!(
                    out,
                    "suggested lossless decomposition ({} components):",
                    comps.len()
                )
                .unwrap();
                for c in &comps {
                    writeln!(out, "  {}", alg.render(&c.atoms)).unwrap();
                }
            }
        }
        ("lattice", [schema, flags @ ..]) => {
            let n = parse_attr_with(schema, ParseLimits::from_budget(budget))
                .map_err(|e| schema_error(&e))?;
            let alg = nalist::algebra::Algebra::try_new_observed(&n, budget, rec.as_ref())
                .map_err(CliError::resource)?;
            let count = nalist::algebra::lattice::sub_count(&n);
            writeln!(out, "N = {n}").unwrap();
            writeln!(
                out,
                "|SubB(N)| = {} atoms ({} maximal), |Sub(N)| = {count}",
                alg.atom_count(),
                alg.max_mask().count()
            )
            .unwrap();
            out.push_str(&nalist::algebra::render::basis_listing(&alg, None));
            match flags {
                [] => {}
                [flag] if flag == "--dot" => {
                    if count > 4096 {
                        return Err(CliError::domain(format!(
                            "lattice has {count} elements; refusing to render DOT above 4096"
                        )));
                    }
                    out.push_str(&nalist::algebra::render::full_lattice_dot(&alg));
                }
                _ => return Err(CliError::usage("unknown flag for lattice")),
            }
        }
        ("lint", [flag, rule]) if flag == "--explain" => {
            out.push_str(&explain_rule(rule)?);
        }
        ("lint", [schema, deps, flags @ ..]) => {
            let (deny_warnings, format) = parse_lint_flags(flags)?;
            let deps_src = files.read(deps).map_err(CliError::file)?;
            let report = nalist::lint::lint_spec_governed(schema, &deps_src, budget).map_err(
                |e| match e {
                    nalist::lint::SpecError::Parse(p) => schema_error(&p),
                    nalist::lint::SpecError::Resource(r) => CliError::resource(r),
                },
            )?;
            let rendered = match format {
                LintFormat::Human => nalist::lint::render_human(&report, deps, &deps_src),
                LintFormat::Json => nalist::lint::render_json(&report, deps, &deps_src),
            };
            if report.fails(deny_warnings) {
                return Err(CliError::domain(rendered.trim_end()));
            }
            out.push_str(&rendered);
        }
        ("serve", [addr, flags @ ..]) => {
            let opts = parse_serve_flags(addr, flags)?;
            out.push_str(&run_serve(&opts, files, budget, rec)?);
        }
        ("loadgen", [addr, flags @ ..]) => {
            let cfg = parse_loadgen_flags(addr, flags)?;
            checkpoint(budget)?;
            let report = nalist::serve::loadgen::run(&cfg).map_err(CliError::file)?;
            out.push_str(&report.render());
            // `--verify` makes divergence an error: a follower that
            // answers differently from its leader fails the run.
            if report.verify.as_ref().is_some_and(|v| v.failed()) {
                return Err(CliError::domain(out.trim_end()));
            }
        }
        ("help", []) => {
            out.push_str(&usage_text());
            out.push('\n');
        }
        ("help", [topic]) => {
            let t = command(topic)
                .ok_or_else(|| CliError::usage(format!("unknown command `{topic}`")))?;
            writeln!(out, "nalist {} {}", t.name, t.synopsis).unwrap();
            writeln!(out, "\n  {}", t.summary).unwrap();
            if t.name == "replay" {
                writeln!(
                    out,
                    "\n  script lines (one op per line, '#' comments):\n    + X -> Y     add the dependency to Σ   (alias: add)\n    - X ->> Y    remove it from Σ          (alias: remove)\n    ? X -> Y     decide Σ ⊨ σ              (alias: query)\n\n  Queries reuse cached dependency bases across edits: an edit\n  evicts only the bases it can affect, and the final line reports\n  the cache's hit/miss/retention counters.\n\n  `--wal <log>` journals every operation (queries included) to a\n  checksummed write-ahead log *before* applying it; after a crash,\n  `nalist recover <snapshot> --wal <log>` replays the committed\n  tail. The log is fsynced per record."
                )
                .unwrap();
            }
            if t.name == "lint" {
                writeln!(out, "\n  rules:").unwrap();
                for r in nalist::lint::rules() {
                    writeln!(out, "    {} {:<20} {}", r.code, r.name, r.summary).unwrap();
                }
                writeln!(
                    out,
                    "\n  exit code 0 when clean; 1 on any error, or on any warning\n  under --deny warnings (diagnostics then go to stderr).\n\n  `nalist lint --explain <rule>` prints the paper citation for one\n  rule — an L-code above, or a certificate rule id such as\n  `mixed-meet` (see `nalist help check`)."
                )
                .unwrap();
            }
            if t.name == "check" {
                writeln!(
                    out,
                    "\n  Verifies a certificate produced by `nalist decide`, `nalist prove`\n  or `nalist basis` with `--cert <path>`. The checker replays the\n  derivation rule by rule (or re-checks the counterexample instance\n  tuple by tuple) against the schema and Σ given on the command\n  line — it never trusts, or even links, the engine that produced\n  the certificate.\n\n  flags:\n    --format json|human   machine-readable verdict on stdout\n\n  exit codes: 0 certificate accepted; 1 rejected; 2 unreadable\n  schema, deps or certificate file; 3 budget exhausted.\n\n  derivation rule ids (stable across versions):"
                )
                .unwrap();
                for r in nalist::deps::rules::ALL_RULES {
                    writeln!(out, "    {:<22} {}", r.id(), r.cite()).unwrap();
                }
            }
            if t.name == "snapshot" {
                writeln!(
                    out,
                    "\n  Writes the full reasoner state — the schema, Σ with its stable\n  dependency ids, and every warm dependency-basis cache entry — as\n  a versioned, CRC-checksummed binary snapshot (written atomically:\n  temp file, fsync, rename). `--warm <queries-file>` first runs the\n  given membership queries so their cache entries are captured.\n\n  A snapshot plus a `replay --wal` journal is a crash-safe pair:\n  see `nalist help recover`."
                )
                .unwrap();
            }
            if t.name == "recover" {
                writeln!(
                    out,
                    "\n  Rebuilds the reasoner from a snapshot; cache entries land warm,\n  with no recomputation. With `--wal <log>`, the journal's tail is\n  replayed through the ordinary incremental edit path, so the\n  recovered reasoner is bit-identical to the crashed one.\n\n  A torn final record (the crash hit mid-append) is truncated and\n  reported; corruption anywhere else in the snapshot or log is a\n  hard error (exit 2) — never a silently wrong answer.\n\n  exit codes: 0 recovered; 1 a WAL record no longer replays;\n  2 missing or corrupt snapshot/WAL; 3 budget exhausted."
                )
                .unwrap();
            }
            if t.name == "serve" {
                writeln!(
                    out,
                    "\n  Hosts many named schemas over HTTP/1.1 (keep-alive, fixed\n  worker pool, bounded accept queue). One long-lived incremental\n  reasoner per tenant: queries share a read lock, Σ edits take the\n  write lock and journal to the tenant's WAL *before* applying.\n\n  endpoints (all JSON):\n    POST /v1/<tenant>/create   {{\"schema\": \"...\", \"deps\": [\"X -> Y\", ...]}}\n    POST /v1/<tenant>/query    {{\"query\": \"X -> Y\"}} or {{\"queries\": [...]}}\n    POST /v1/<tenant>/edit     {{\"op\": \"add\"|\"remove\", \"dep\": \"...\"}}\n                               or {{\"edits\": [{{\"op\", \"dep\"}}, ...]}}\n    GET  /v1/<tenant>/cert?dep=<url-encoded dependency>\n    GET  /v1/<tenant>/sigma    Σ listing + cache counters\n    GET  /metrics              schema-versioned counters/histograms\n    GET  /healthz              liveness + tenant count\n\n  With `--wal-dir <dir>` each tenant persists as <dir>/<name>.snap\n  plus <dir>/<name>.wal; on restart tenants recover bit-identically\n  and compact. Overload is structured: 503 (Retry-After) when the\n  accept queue is full, 429 when a request exhausts the per-request\n  fuel/deadline budget, 408/413/431 for slow or oversized clients.\n\n  `--follow <leader>` runs a read-only replication follower: each\n  tenant bootstraps from GET /v1/<t>/snapshot, then tails the\n  leader's WAL (GET /v1/<t>/wal?from=<offset>), re-verifying every\n  record and replaying it through the same path crash recovery\n  uses — follower state is bit-identical by construction. Writes\n  answer 421 with a `leader:` header; /healthz answers 503 until\n  caught up, then reports replication lag. Leader restarts are\n  detected by the wal_id/416 offset handshake (re-snapshot).\n\n  `--port-file <path>` writes the bound address (use `:0` for an\n  ephemeral port); `--max-requests N` stops after N requests (smoke\n  tests — production runs until SIGTERM); `--stop-file <path>`\n  drains gracefully when the path appears (pair it with a shell\n  `trap` to turn SIGTERM into a clean exit whose final `--metrics`\n  document says `\"in_progress\": false`); the global `--timeout`\n  bounds the run with a graceful shutdown and the usual exit 3.\n  Under `--metrics <path>` the snapshot file is rewritten every\n  500 ms while the daemon runs (`\"in_progress\": true`)."
                )
                .unwrap();
            }
            if t.name == "loadgen" {
                writeln!(
                    out,
                    "\n  Open-loop load against a running `nalist serve`: arrivals follow\n  a Poisson schedule fixed up front, so a slow server cannot\n  throttle the offered rate and flatter its latency (coordinated\n  omission). Each connection thread owns a slice of the rate;\n  queries pick zipf-skewed targets from a per-tenant pool, and\n  `--edit-ratio` of requests are add/remove churn against the\n  pool's second half. Deterministic under `--seed`.\n\n  Reports sent/ok/429/503 counts, exact p50/p99/mean latency, and\n  achieved vs offered rps. `--reuse-tenants` skips creation when\n  the tenants survived a previous run (e.g. across a restart).\n\n  `--verify <follower>` audits a replica after the run: waits for\n  catch-up, requires byte-identical Σ and query answers from\n  leader and follower, and runs follower certificates through the\n  independent `nalist check` verifier. Any divergence is exit 1."
                )
                .unwrap();
            }
            if t.name == "decide" || t.name == "prove" || t.name == "basis" {
                writeln!(
                    out,
                    "\n  `--cert <path>` additionally writes a portable JSON proof\n  certificate that `nalist check` verifies independently of this\n  engine."
                )
                .unwrap();
            }
        }
        _ => {
            return Err(CliError {
                message: format!(
                    "wrong arguments for `{cmd}`\n\nusage: nalist {} {}\n  {}",
                    spec.name, spec.synopsis, spec.summary
                ),
                code: 2,
            })
        }
    }
    Ok(out)
}

/// Maps a [`WitnessError`], routing budget exhaustion to exit code 3.
fn witness_error(e: WitnessError) -> CliError {
    match e {
        WitnessError::Resource(r) => CliError::resource(r),
        other => CliError::domain(other),
    }
}

/// Maps a [`CertifyError`]: budget exhaustion exits 3; everything else
/// means certificate construction itself failed (exit 2, matching the
/// `prove` contract — the input never produced a sound derivation).
fn certify_error(e: CertifyError) -> CliError {
    match e {
        CertifyError::Resource(r) => CliError::resource(r),
        other => CliError {
            message: other.to_string(),
            code: 2,
        },
    }
}

/// Maps a [`StoreError`]: budget exhaustion exits 3; I/O, corruption
/// and format failures are file errors (exit 2) — the input never
/// reached the reasoner.
fn store_error(e: StoreError) -> CliError {
    match e {
        StoreError::Resource(r) => CliError::resource(r),
        other => CliError::file(other),
    }
}

/// Maps a [`PersistError`]: a WAL record the reasoner rejects on replay
/// is a domain error (exit 1, like the same op in a `replay` script);
/// store-layer and structural failures are file errors (exit 2); budget
/// exhaustion exits 3.
fn persist_error(e: PersistError) -> CliError {
    match e {
        PersistError::Resource(r) => CliError::resource(r),
        PersistError::Replay { .. } => CliError::domain(e),
        other => CliError::file(other),
    }
}

/// Extracts the optional trailing `--wal <log>` flag.
fn parse_wal_flag<'a>(cmd: &str, flags: &'a [String]) -> Result<Option<&'a String>, CliError> {
    match flags {
        [] => Ok(None),
        [flag, path] if flag == "--wal" => Ok(Some(path)),
        _ => Err(CliError::usage(format!(
            "unknown flags for {cmd} (expected --wal <log>)"
        ))),
    }
}

/// Extracts the optional trailing `--warm <queries-file>` flag.
fn parse_warm_flag(flags: &[String]) -> Result<Option<&String>, CliError> {
    match flags {
        [] => Ok(None),
        [flag, path] if flag == "--warm" => Ok(Some(path)),
        _ => Err(CliError::usage(
            "unknown flags for snapshot (expected --warm <queries-file>)",
        )),
    }
}

/// Extracts the optional trailing `--cert <path>` flag.
fn parse_cert_flag<'a>(cmd: &str, flags: &'a [String]) -> Result<Option<&'a String>, CliError> {
    match flags {
        [] => Ok(None),
        [flag, path] if flag == "--cert" => Ok(Some(path)),
        _ => Err(CliError::usage(format!(
            "unknown flags for {cmd} (expected --cert <path>)"
        ))),
    }
}

/// `nalist serve` options beyond the server configuration proper.
struct ServeOptions {
    cfg: nalist::serve::ServerConfig,
    port_file: Option<String>,
    max_requests: Option<u64>,
    /// Leader address: run as a read-only replication follower.
    follow: Option<String>,
    /// Graceful-drain trigger: the daemon exits cleanly when this path
    /// appears. The portable stand-in for a SIGTERM handler (no
    /// `unsafe`, no signal crate): wrap the process in a shell `trap`
    /// that touches the file.
    stop_file: Option<String>,
}

fn flag_value<'a>(
    cmd: &str,
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a String, CliError> {
    it.next().ok_or_else(|| {
        CliError::usage(format!("{flag} requires a value (see `nalist help {cmd}`)"))
    })
}

fn flag_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| CliError::usage(format!("bad {flag} value '{raw}': {e}")))
}

fn parse_serve_flags(addr: &str, flags: &[String]) -> Result<ServeOptions, CliError> {
    let mut cfg = nalist::serve::ServerConfig {
        addr: addr.to_string(),
        ..nalist::serve::ServerConfig::default()
    };
    let mut port_file = None;
    let mut max_requests = None;
    let mut follow = None;
    let mut stop_file = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workers" => cfg.workers = flag_num(flag, flag_value("serve", flag, &mut it)?)?,
            "--queue" => cfg.queue_cap = flag_num(flag, flag_value("serve", flag, &mut it)?)?,
            "--request-fuel" => {
                cfg.fuel = Some(flag_num(flag, flag_value("serve", flag, &mut it)?)?);
            }
            "--request-deadline-ms" => {
                cfg.deadline_ms = Some(flag_num(flag, flag_value("serve", flag, &mut it)?)?);
            }
            "--read-timeout-ms" => {
                cfg.read_timeout_ms = flag_num(flag, flag_value("serve", flag, &mut it)?)?;
            }
            "--wal-dir" => {
                cfg.wal_dir = Some(std::path::PathBuf::from(flag_value(
                    "serve", flag, &mut it,
                )?));
            }
            "--port-file" => port_file = Some(flag_value("serve", flag, &mut it)?.clone()),
            "--max-requests" => {
                max_requests = Some(flag_num(flag, flag_value("serve", flag, &mut it)?)?);
            }
            "--follow" => follow = Some(flag_value("serve", flag, &mut it)?.clone()),
            "--stop-file" => stop_file = Some(flag_value("serve", flag, &mut it)?.clone()),
            other => return Err(CliError::usage(format!("unknown flag {other} for serve"))),
        }
    }
    if follow.is_some() && cfg.wal_dir.is_some() {
        return Err(CliError::usage(
            "--follow and --wal-dir are mutually exclusive: a follower keeps no \
             durable state of its own (it re-bootstraps from the leader)",
        ));
    }
    Ok(ServeOptions {
        cfg,
        port_file,
        max_requests,
        follow,
        stop_file,
    })
}

fn parse_loadgen_flags(
    addr: &str,
    flags: &[String],
) -> Result<nalist::serve::LoadgenConfig, CliError> {
    let mut cfg = nalist::serve::LoadgenConfig {
        addr: addr.to_string(),
        ..nalist::serve::LoadgenConfig::default()
    };
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tenants" => cfg.tenants = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?,
            "--atoms" => cfg.atoms = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?,
            "--pool" => cfg.pool = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?,
            "--rps" => cfg.rps = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?,
            "--duration-ms" => {
                cfg.duration_ms = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?;
            }
            "--conns" => cfg.conns = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?,
            "--edit-ratio" => {
                cfg.edit_ratio = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?;
            }
            "--zipf" => cfg.zipf_s = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?,
            "--seed" => cfg.seed = flag_num(flag, flag_value("loadgen", flag, &mut it)?)?,
            "--reuse-tenants" => cfg.reuse_tenants = true,
            "--verify" => cfg.verify = Some(flag_value("loadgen", flag, &mut it)?.clone()),
            other => return Err(CliError::usage(format!("unknown flag {other} for loadgen"))),
        }
    }
    Ok(cfg)
}

/// Sum the daemon's `requests` counter from a snapshot-capable recorder.
fn requests_served(rec: &dyn Recorder) -> u64 {
    rec.try_snapshot().map_or(0, |s| {
        s.counters
            .iter()
            .find(|(name, _)| *name == "requests")
            .map_or(0, |&(_, v)| v)
    })
}

/// Why the serve wait loop decided to exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServeExit {
    /// The global `--timeout` deadline passed (exit 3).
    Deadline,
    /// `--max-requests` requests have been served.
    RequestCap,
    /// The `--stop-file` path appeared (graceful drain — the portable
    /// SIGTERM stand-in).
    StopFile,
}

/// Polls the exit conditions every 50 ms until one fires.
fn serve_wait(
    opts: &ServeOptions,
    files: &dyn Files,
    budget: &Budget,
    rec: &dyn Recorder,
) -> ServeExit {
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if budget.check_deadline().is_err() {
            return ServeExit::Deadline;
        }
        if let Some(cap) = opts.max_requests {
            if requests_served(rec) >= cap {
                return ServeExit::RequestCap;
            }
        }
        if let Some(path) = &opts.stop_file {
            if files.read(path).is_ok() {
                return ServeExit::StopFile;
            }
        }
    }
}

/// Runs the daemon until `--max-requests` requests are served, the
/// `--stop-file` path appears (graceful drain), the global `--timeout`
/// deadline passes (graceful shutdown, then the usual exit 3), or the
/// process is killed. With `--follow <leader>` the daemon runs as a
/// read-only replication follower instead of an authority.
fn run_serve(
    opts: &ServeOptions,
    files: &dyn Files,
    budget: &Budget,
    rec: &Arc<dyn Recorder>,
) -> Result<String, CliError> {
    // `GET /metrics` needs a snapshot-capable recorder: reuse the
    // command's own when `--metrics`/`--trace` provided a live one,
    // else give the server a private recorder.
    let server_rec: Arc<dyn Recorder> = if rec.try_snapshot().is_some() {
        Arc::clone(rec)
    } else {
        Arc::new(MetricsRecorder::new())
    };
    if let Some(leader) = &opts.follow {
        let fcfg = nalist::serve::FollowerConfig {
            server: opts.cfg.clone(),
            leader: leader.clone(),
            ..nalist::serve::FollowerConfig::default()
        };
        let follower = nalist::serve::start_follower(&fcfg, Arc::clone(&server_rec))
            .map_err(|e| CliError::file(e.message))?;
        let addr = follower.local_addr();
        eprintln!(
            "nalist serve: following {leader}, listening on http://{addr}/ \
             (read-only replica, {} workers)",
            opts.cfg.workers.max(1),
        );
        if let Some(path) = &opts.port_file {
            if let Err(e) = files.write(path, &format!("{addr}\n")) {
                follower.shutdown();
                return Err(CliError::file(e));
            }
        }
        let exit = serve_wait(opts, files, budget, server_rec.as_ref());
        let served = requests_served(server_rec.as_ref());
        let tenants = follower.state().registry.len();
        let boots = follower.status().bootstraps();
        follower.shutdown();
        if exit == ServeExit::Deadline {
            return Err(CliError::resource(format!(
                "serve: --timeout reached after {served} request(s); shut down cleanly"
            )));
        }
        return Ok(format!(
            "serve: follower shut down after {served} request(s) across {tenants} \
             tenant(s), {boots} snapshot bootstrap(s){}\n",
            if exit == ServeExit::StopFile {
                " (drained by --stop-file)"
            } else {
                ""
            }
        ));
    }
    let server = nalist::serve::server::start(&opts.cfg, Arc::clone(&server_rec))
        .map_err(|e| CliError::file(e.message))?;
    let addr = server.local_addr();
    eprintln!(
        "nalist serve: listening on http://{addr}/ ({} workers, queue {}{})",
        opts.cfg.workers.max(1),
        opts.cfg.queue_cap.max(1),
        match &opts.cfg.wal_dir {
            Some(dir) => format!(", wal-dir {}", dir.display()),
            None => ", in-memory".to_string(),
        }
    );
    if let Some(path) = &opts.port_file {
        if let Err(e) = files.write(path, &format!("{addr}\n")) {
            server.shutdown();
            return Err(CliError::file(e));
        }
    }
    let exit = serve_wait(opts, files, budget, server_rec.as_ref());
    let served = requests_served(server_rec.as_ref());
    let tenants = server.state().registry.len();
    server.shutdown();
    if exit == ServeExit::Deadline {
        return Err(CliError::resource(format!(
            "serve: --timeout reached after {served} request(s); shut down cleanly"
        )));
    }
    Ok(format!(
        "serve: shut down after {served} request(s) across {tenants} tenant(s){}\n",
        if exit == ServeExit::StopFile {
            " (drained by --stop-file)"
        } else {
            ""
        }
    ))
}

/// Serialises and writes a certificate, reporting the path in `out`.
fn write_certificate(
    files: &dyn Files,
    path: &str,
    cert: &Certificate,
    out: &mut String,
) -> Result<(), CliError> {
    let mut doc = cert.to_json();
    doc.push('\n');
    files.write(path, &doc).map_err(CliError::file)?;
    writeln!(out, "certificate written to {path}").unwrap();
    Ok(())
}

/// Output format for `nalist check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckFormat {
    Human,
    Json,
}

fn parse_check_flags(flags: &[String]) -> Result<CheckFormat, CliError> {
    match flags {
        [] => Ok(CheckFormat::Human),
        [flag, fmt] if flag == "--format" => match fmt.as_str() {
            "json" => Ok(CheckFormat::Json),
            "human" => Ok(CheckFormat::Human),
            other => Err(CliError::usage(format!(
                "--format takes `json` or `human`, got `{other}`"
            ))),
        },
        _ => Err(CliError::usage(
            "unknown flags for check (expected --format json|human)",
        )),
    }
}

/// One-line JSON verdict for `nalist check --format json`.
fn render_check_json(result: Result<&nalist::check::Report, &CheckError>) -> String {
    use nalist::lint::json::escape;
    match result {
        Ok(r) => format!(
            "{{\"accepted\": true, \"verdict\": {}, \"statement\": {}, \"nodes\": {}, \"tuples\": {}}}",
            escape(r.verdict.as_str()),
            escape(&r.statement),
            r.nodes,
            r.tuples
        ),
        Err(e) => format!(
            "{{\"accepted\": false, \"error\": {}}}",
            escape(&e.to_string())
        ),
    }
}

/// `nalist lint --explain <rule>`: one paragraph on a lint rule (by
/// `L`-code or name) or a Theorem 4.6 inference rule (by stable
/// certificate id), with its paper citation.
fn explain_rule(rule: &str) -> Result<String, CliError> {
    let mut out = String::new();
    if let Some(r) = nalist::lint::rules()
        .iter()
        .find(|r| r.code.eq_ignore_ascii_case(rule) || r.name == rule)
    {
        writeln!(out, "{} ({})", r.code, r.name).unwrap();
        writeln!(out, "  {}", r.summary).unwrap();
        return Ok(out);
    }
    if let Some(r) = nalist::deps::rules::Rule::from_id(rule) {
        writeln!(out, "{} ({})", r.id(), r.name()).unwrap();
        writeln!(out, "  {}", r.cite()).unwrap();
        return Ok(out);
    }
    Err(CliError::usage(format!(
        "unknown rule `{rule}` (expected an L-code like L005, a lint rule name, \
         or an inference-rule id like mixed-meet)"
    )))
}

/// Output format for `nalist lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LintFormat {
    Human,
    Json,
}

fn parse_lint_flags(flags: &[String]) -> Result<(bool, LintFormat), CliError> {
    let mut deny_warnings = false;
    let mut format = LintFormat::Human;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => deny_warnings = true,
                other => {
                    return Err(CliError::usage(format!(
                        "--deny takes `warnings`, got {other:?}"
                    )))
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = LintFormat::Json,
                Some("human") => format = LintFormat::Human,
                other => {
                    return Err(CliError::usage(format!(
                        "--format takes `json` or `human`, got {other:?}"
                    )))
                }
            },
            other => return Err(CliError::usage(format!("unknown flag for lint: {other}"))),
        }
    }
    Ok((deny_warnings, format))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist::lint::json::Json;
    use std::collections::BTreeMap;

    struct MemFiles(BTreeMap<String, String>);

    impl Files for MemFiles {
        fn read(&self, path: &str) -> Result<String, String> {
            self.0
                .get(path)
                .cloned()
                .ok_or_else(|| format!("no such file: {path}"))
        }
    }

    /// [`MemFiles`] plus a write log, for `--metrics` tests.
    struct RwFiles {
        inner: MemFiles,
        written: std::cell::RefCell<BTreeMap<String, String>>,
    }

    impl RwFiles {
        fn new(inner: MemFiles) -> Self {
            RwFiles {
                inner,
                written: std::cell::RefCell::new(BTreeMap::new()),
            }
        }

        fn written(&self, path: &str) -> String {
            self.written
                .borrow()
                .get(path)
                .cloned()
                .unwrap_or_else(|| panic!("nothing written to {path}"))
        }
    }

    impl Files for RwFiles {
        fn read(&self, path: &str) -> Result<String, String> {
            self.inner.read(path)
        }

        fn write(&self, path: &str, content: &str) -> Result<(), String> {
            self.written
                .borrow_mut()
                .insert(path.to_string(), content.to_string());
            Ok(())
        }
    }

    /// Thread-safe in-memory files: reads and writes share one map, so
    /// a helper thread can make a `--stop-file` "appear" while `serve`
    /// polls for it, and the metrics flusher gets a real [`FileWriter`].
    #[derive(Clone)]
    struct SharedFiles(Arc<std::sync::Mutex<BTreeMap<String, String>>>);

    impl SharedFiles {
        fn new() -> Self {
            SharedFiles(Arc::new(std::sync::Mutex::new(BTreeMap::new())))
        }
    }

    impl Files for SharedFiles {
        fn read(&self, path: &str) -> Result<String, String> {
            self.0
                .lock()
                .unwrap()
                .get(path)
                .cloned()
                .ok_or_else(|| format!("no such file: {path}"))
        }

        fn write(&self, path: &str, content: &str) -> Result<(), String> {
            self.0
                .lock()
                .unwrap()
                .insert(path.to_string(), content.to_string());
            Ok(())
        }

        fn writer(&self) -> Option<FileWriter> {
            let map = Arc::clone(&self.0);
            Some(Box::new(move |path, content| {
                map.lock()
                    .unwrap()
                    .insert(path.to_string(), content.to_string());
                Ok(())
            }))
        }
    }

    /// Regression for the graceful-drain bugfix: before `--stop-file`
    /// existed, killing the daemon could leave the last `--metrics`
    /// flush stamped `in_progress: true`. A drained shutdown must land
    /// the authoritative final document (`in_progress: false`).
    #[test]
    fn serve_stop_file_drains_and_finalizes_metrics() {
        let shared = SharedFiles::new();
        let toucher = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(300));
                shared.write("stop.now", "").unwrap();
            })
        };
        let out = run(
            &args(&[
                "serve",
                "127.0.0.1:0",
                "--port-file",
                "port.txt",
                "--stop-file",
                "stop.now",
                "--metrics",
                "m.json",
            ]),
            &shared,
        )
        .unwrap();
        toucher.join().unwrap();
        assert!(out.contains("(drained by --stop-file)"), "{out}");
        assert!(shared.read("port.txt").is_ok());
        let metrics = shared.read("m.json").unwrap();
        assert!(
            metrics.contains("\"in_progress\": false"),
            "drained shutdown left metrics in progress: {metrics}"
        );
        assert!(metrics.contains("\"exit_code\": 0"), "{metrics}");
    }

    #[test]
    fn serve_follow_and_wal_dir_are_mutually_exclusive() {
        let err = run(
            &args(&[
                "serve",
                "127.0.0.1:0",
                "--follow",
                "127.0.0.1:7070",
                "--wal-dir",
                "/tmp/x",
            ]),
            &MemFiles(BTreeMap::new()),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("mutually exclusive"), "{}", err.message);
    }

    fn files() -> MemFiles {
        let mut m = BTreeMap::new();
        m.insert(
            "deps.txt".to_string(),
            "# pubcrawl constraints\nPubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n"
                .to_string(),
        );
        m.insert(
            "data.txt".to_string(),
            "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])\n\
             (Sven, [(Kindl, Deanos), (Lübzer, Highflyers)])\n\
             (Sebastian, [])\n"
                .to_string(),
        );
        MemFiles(m)
    }

    const SCHEMA: &str = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    fn replay_files(script: &str) -> MemFiles {
        let mut m = BTreeMap::new();
        m.insert("edits.txt".to_string(), script.to_string());
        MemFiles(m)
    }

    #[test]
    fn replay_script_end_to_end() {
        let script = "# build Σ incrementally\n\
                      + L(A) -> L(B)\n\
                      ? L(A) -> L(B)\n\
                      add L(B) -> L(C)\n\
                      ? L(A) -> L(C)\n\
                      - L(B) -> L(C)\n\
                      query L(A) -> L(C)\n";
        let out = run(
            &args(&["replay", "L(A, B, C)", "edits.txt"]),
            &replay_files(script),
        )
        .unwrap();
        assert!(out.contains("add          L(A) -> L(B)"), "{out}");
        assert!(out.contains("IMPLIED      L(A) -> L(C)"), "{out}");
        assert!(out.contains("remove       L(B) -> L(C)"), "{out}");
        assert!(out.contains("NOT IMPLIED  L(A) -> L(C)"), "{out}");
        assert!(
            out.contains("Σ: 1 dependencies after 2 add(s), 1 remove(s), 3 query(ies)"),
            "{out}"
        );
        assert!(out.contains("cache:"), "{out}");
    }

    #[test]
    fn replay_remove_absent_is_a_located_domain_error() {
        let err = run(
            &args(&["replay", "L(A, B)", "edits.txt"]),
            &replay_files("+ L(A) -> L(B)\n- L(B) -> L(A)\n"),
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("edits.txt:2"), "{}", err.message);
        assert!(err.message.contains("not in Σ"), "{}", err.message);
    }

    #[test]
    fn replay_unknown_op_is_a_located_domain_error() {
        let err = run(
            &args(&["replay", "L(A, B)", "edits.txt"]),
            &replay_files("! L(A) -> L(B)\n"),
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("edits.txt:1"), "{}", err.message);
        assert!(err.message.contains("unknown op"), "{}", err.message);
    }

    #[test]
    fn decide_implied() {
        let out = run(
            &args(&[
                "decide",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            ]),
            &files(),
        )
        .unwrap();
        assert!(out.starts_with("IMPLIED"));
    }

    #[test]
    fn decide_not_implied_prints_witness() {
        let out = run(
            &args(&[
                "decide",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
            ]),
            &files(),
        )
        .unwrap();
        assert!(out.starts_with("NOT IMPLIED"));
        assert!(out.contains("counterexample"));
        assert!(out.contains('('));
    }

    #[test]
    fn batch_command() {
        let mut f = files();
        f.0.insert(
            "queries.txt".to_string(),
            "# batch membership queries\n\
             Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n\
             Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])\n\
             Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])\n"
                .to_string(),
        );
        let out = run(&args(&["batch", SCHEMA, "deps.txt", "queries.txt"]), &f).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("IMPLIED"), "{out}");
        assert!(lines[1].starts_with("NOT IMPLIED"), "{out}");
        assert!(lines[2].starts_with("IMPLIED"), "{out}");
        assert_eq!(lines[3], "2/3 implied, 1 not");
        // explicit thread count gives identical output
        let fixed = run(
            &args(&["batch", SCHEMA, "deps.txt", "queries.txt", "--threads", "2"]),
            &f,
        )
        .unwrap();
        assert_eq!(fixed, out);
        // bad flags and bad query lines are reported
        let e = run(
            &args(&["batch", SCHEMA, "deps.txt", "queries.txt", "--bogus"]),
            &f,
        )
        .unwrap_err();
        assert_eq!(e.code, 2);
        f.0.insert("badq.txt".to_string(), "Pubcrawl(Zzz) -> λ\n".to_string());
        let e = run(&args(&["batch", SCHEMA, "deps.txt", "badq.txt"]), &f).unwrap_err();
        assert!(e.message.contains("badq.txt:1"), "{}", e.message);
    }

    #[test]
    fn prove_command() {
        let out = run(
            &args(&[
                "prove",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            ]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("machine-checked derivation"));
        assert!(out.contains("mixed meet rule"));
        let out = run(
            &args(&[
                "prove",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
            ]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("NOT IMPLIED"));
    }

    #[test]
    fn closure_command() {
        let out = run(
            &args(&["closure", SCHEMA, "deps.txt", "Pubcrawl(Person)"]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("Pubcrawl(Person, Visit[λ])"), "{out}");
    }

    #[test]
    fn basis_and_trace_commands() {
        let out = run(
            &args(&["basis", SCHEMA, "deps.txt", "Pubcrawl(Person)"]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("DepB(X)"));
        let out = run(
            &args(&["trace", SCHEMA, "deps.txt", "Pubcrawl(Person)"]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("initialisation:"));
        assert!(out.contains("X+ ="));
    }

    #[test]
    fn verify_command() {
        let out = run(&args(&["verify", SCHEMA, "deps.txt", "data.txt"]), &files()).unwrap();
        assert!(out.contains("instance: 3 tuples"));
        assert!(out.contains("instance satisfies Σ"));
    }

    #[test]
    fn verify_reports_violations() {
        let mut f = files();
        f.0.insert(
            "bad.txt".to_string(),
            "(Sven, [(A, P1)])\n(Sven, [(A, P1), (B, P2)])\n".to_string(),
        );
        // different list lengths for the same person violate the derived
        // shape FD? Not in Σ — but the MVD itself is violated here:
        // lengths differ so no recombination exists.
        let out = run(&args(&["verify", SCHEMA, "deps.txt", "bad.txt"]), &f).unwrap();
        assert!(out.contains("VIOLATED"), "{out}");
    }

    #[test]
    fn chase_command() {
        let mut f = files();
        f.0.insert(
            "partial.txt".to_string(),
            "(Sven, [(A, P1), (B, P2)])\n(Sven, [(B, P1), (A, P2)])\n".to_string(),
        );
        let out = run(&args(&["chase", SCHEMA, "deps.txt", "partial.txt"]), &f).unwrap();
        assert!(out.contains("chase succeeded"), "{out}");
        // shape conflict: chase fails with the mixed-meet explanation
        f.0.insert(
            "conflict.txt".to_string(),
            "(Sven, [(A, P1)])\n(Sven, [(A, P1), (B, P2)])\n".to_string(),
        );
        let e = run(&args(&["chase", SCHEMA, "deps.txt", "conflict.txt"]), &f).unwrap_err();
        assert!(e.message.contains("chase failed"), "{}", e.message);
    }

    #[test]
    fn normalize_command() {
        let out = run(&args(&["normalize", SCHEMA, "deps.txt"]), &files()).unwrap();
        assert!(out.contains("minimal cover"));
        assert!(out.contains("candidate keys"));
        assert!(out.contains("4NF"));
        assert!(out.contains("lossless decomposition"));
    }

    #[test]
    fn lattice_command() {
        let out = run(&args(&["lattice", "J[K(A, L[M(B, C)])]"]), &files()).unwrap();
        assert!(out.contains("|Sub(N)| = 11"));
        let dot = run(
            &args(&["lattice", "J[K(A, L[M(B, C)])]", "--dot"]),
            &files(),
        )
        .unwrap();
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn lattice_dot_guard_for_huge_lattices() {
        // 20 flat attributes: |Sub(N)| = 2^20 — DOT rendering must refuse
        let schema = "R(A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, \
                      A12, A13, A14, A15, A16, A17, A18, A19)";
        let e = run(&args(&["lattice", schema, "--dot"]), &files()).unwrap_err();
        assert!(e.message.contains("refusing"), "{}", e.message);
        // the summary (without --dot) still works
        let out = run(&args(&["lattice", schema]), &files()).unwrap();
        assert!(out.contains("|SubB(N)| = 20"));
    }

    #[test]
    fn help_lists_every_command() {
        let out = run(&args(&["help"]), &files()).unwrap();
        for c in COMMANDS {
            assert!(
                out.contains(&format!("nalist {}", c.name)),
                "help misses {}: {out}",
                c.name
            );
        }
        // per-command help
        let out = run(&args(&["help", "batch"]), &files()).unwrap();
        assert!(out.contains("--threads"));
        let out = run(&args(&["help", "lint"]), &files()).unwrap();
        assert!(out.contains("L001"));
        assert!(out.contains("L009"));
        assert!(out.contains("--deny warnings"));
        let e = run(&args(&["help", "wat"]), &files()).unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn usage_text_is_table_driven() {
        let text = usage_text();
        for c in COMMANDS {
            assert!(text.contains(c.name));
            assert!(text.contains(c.synopsis), "missing synopsis for {}", c.name);
        }
    }

    #[test]
    fn wrong_arity_names_the_command() {
        let e = run(&args(&["decide", SCHEMA]), &files()).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(
            e.message.contains("wrong arguments for `decide`"),
            "{}",
            e.message
        );
        assert!(e.message.contains("<dependency>"));
    }

    #[test]
    fn unknown_command_suggests_a_near_match() {
        let e = run(&args(&["chek"]), &files()).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("unknown command `chek`"));
        let e = run(&args(&["norm"]), &files()).unwrap_err();
        assert!(
            e.message.contains("did you mean `normalize`?"),
            "{}",
            e.message
        );
    }

    #[test]
    fn lint_clean_spec_exits_zero_with_no_output() {
        let mut f = files();
        f.0.insert("clean.deps".into(), "L(A) -> L(B, C)\n".into());
        let out = run(&args(&["lint", "L(A, B, C)", "clean.deps"]), &f).unwrap();
        assert_eq!(out, "");
        // clean under --deny warnings too
        let out = run(
            &args(&["lint", "L(A, B, C)", "clean.deps", "--deny", "warnings"]),
            &f,
        )
        .unwrap();
        assert_eq!(out, "");
    }

    #[test]
    fn lint_warnings_print_but_exit_zero_without_deny() {
        let mut f = files();
        f.0.insert("warn.deps".into(), "L(A, B) -> L(A)\n".into());
        let out = run(&args(&["lint", "L(A, B)", "warn.deps"]), &f).unwrap();
        assert!(out.contains("warning[L001]"), "{out}");
        assert!(out.contains("--> warn.deps:1:1"), "{out}");
        assert!(out.contains("^^^^^^^^^^^^^^^"), "{out}");
    }

    #[test]
    fn lint_deny_warnings_fails_with_diagnostics_on_stderr() {
        let mut f = files();
        f.0.insert("warn.deps".into(), "L(A, B) -> L(A)\n".into());
        let e = run(
            &args(&["lint", "L(A, B)", "warn.deps", "--deny", "warnings"]),
            &f,
        )
        .unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("warning[L001]"));
    }

    #[test]
    fn lint_errors_fail_even_without_deny() {
        let mut f = files();
        f.0.insert("bad.deps".into(), "L(Zzz) -> L(A)\n".into());
        let e = run(&args(&["lint", "L(A, B)", "bad.deps"]), &f).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("error[L007]"), "{}", e.message);
    }

    #[test]
    fn lint_json_format() {
        let mut f = files();
        f.0.insert("warn.deps".into(), "L(A, B) -> L(A)\n".into());
        let out = run(
            &args(&["lint", "L(A, B)", "warn.deps", "--format", "json"]),
            &f,
        )
        .unwrap();
        let v = nalist::lint::json::parse(&out).unwrap();
        assert_eq!(v.get("file").unwrap().as_str(), Some("warn.deps"));
        assert!(v.get("warnings").unwrap().as_usize().unwrap() >= 1);
        // flag errors
        let e = run(
            &args(&["lint", "L(A, B)", "warn.deps", "--format", "yaml"]),
            &f,
        )
        .unwrap_err();
        assert_eq!(e.code, 2);
        let e = run(&args(&["lint", "L(A, B)", "warn.deps", "--wat"]), &f).unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn lint_bad_schema_is_domain_error() {
        let mut f = files();
        f.0.insert("warn.deps".into(), "L(A, B) -> L(A)\n".into());
        let e = run(&args(&["lint", "L(", "warn.deps"]), &f).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("bad schema attribute"));
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(run(&args(&[]), &files()).unwrap_err().code, 2);
        assert_eq!(run(&args(&["bogus"]), &files()).unwrap_err().code, 2);
        let e = run(&args(&["closure", "L(", "deps.txt", "λ"]), &files()).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("bad schema"));
        // bad dependency line includes file/line info
        let mut f = files();
        f.0.insert("broken.txt".into(), "Pubcrawl(Zzz) -> λ\n".into());
        let e = run(&args(&["closure", SCHEMA, "broken.txt", "λ"]), &f).unwrap_err();
        assert!(e.message.contains("broken.txt:1"));
    }

    #[test]
    fn missing_file_is_exit_code_2_naming_the_path() {
        for cmd in ["closure", "basis", "trace"] {
            let e = run(&args(&[cmd, SCHEMA, "missing.txt", "λ"]), &files()).unwrap_err();
            assert_eq!(e.code, 2, "{cmd}");
            assert!(e.message.contains("missing.txt"), "{cmd}: {}", e.message);
        }
        let e = run(
            &args(&["verify", SCHEMA, "deps.txt", "nodata.txt"]),
            &files(),
        )
        .unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("nodata.txt"));
        let e = run(&args(&["lint", "L(A, B)", "nolint.txt"]), &files()).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("nolint.txt"));
    }

    #[test]
    fn empty_deps_and_queries_files_succeed() {
        let mut f = files();
        f.0.insert("empty.txt".into(), String::new());
        let out = run(
            &args(&[
                "decide",
                SCHEMA,
                "empty.txt",
                "Pubcrawl(Person) -> Pubcrawl(Person)",
            ]),
            &f,
        )
        .unwrap();
        assert!(out.starts_with("IMPLIED"), "{out}");
        let out = run(&args(&["batch", SCHEMA, "deps.txt", "empty.txt"]), &f).unwrap();
        assert_eq!(out, "0/0 implied, 0 not\n");
        let out = run(&args(&["lint", "L(A, B)", "empty.txt"]), &f).unwrap();
        assert_eq!(out, "");
    }

    #[test]
    fn global_flags_are_extracted_anywhere() {
        let (rest, _) = extract_global_flags(&args(&[
            "decide",
            "--timeout",
            "5000",
            SCHEMA,
            "--max-atoms",
            "64",
            "deps.txt",
            "x",
            "--max-depth",
            "32",
        ]))
        .unwrap();
        assert_eq!(rest, args(&["decide", SCHEMA, "deps.txt", "x"]));
        // value errors are usage errors
        let e = extract_global_flags(&args(&["decide", "--timeout"])).unwrap_err();
        assert_eq!(e.code, 2);
        let e = extract_global_flags(&args(&["decide", "--timeout", "soon"])).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--timeout"), "{}", e.message);
    }

    #[test]
    fn max_atoms_flag_yields_exit_code_3() {
        let e = run(
            &args(&[
                "--max-atoms",
                "2",
                "closure",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person)",
            ]),
            &files(),
        )
        .unwrap_err();
        assert_eq!(e.code, EXIT_RESOURCE);
        assert!(e.message.contains("basis attributes"), "{}", e.message);
        // lattice enforces it too
        let e = run(&args(&["lattice", SCHEMA, "--max-atoms", "2"]), &files()).unwrap_err();
        assert_eq!(e.code, EXIT_RESOURCE);
    }

    #[test]
    fn max_depth_flag_rejects_deep_schemas_with_exit_code_3() {
        // Depth violations are parse errors, but they honour the
        // resource contract `--max-depth` documents: exit code 3.
        let e = run(
            &args(&[
                "--max-depth",
                "1",
                "closure",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person)",
            ]),
            &files(),
        )
        .unwrap_err();
        assert_eq!(e.code, EXIT_RESOURCE);
        assert!(e.message.contains("nesting deeper"), "{}", e.message);
    }

    #[test]
    fn expired_timeout_yields_exit_code_3() {
        let e = run(
            &args(&["--timeout", "0", "normalize", SCHEMA, "deps.txt"]),
            &files(),
        )
        .unwrap_err();
        assert_eq!(e.code, EXIT_RESOURCE);
        assert!(e.message.contains("deadline"), "{}", e.message);
    }

    #[test]
    fn batch_reports_per_item_errors_and_exit_code_3() {
        use nalist::guard::{FailAction, FailPoint, INJECTED_PANIC};
        let mut f = files();
        f.0.insert(
            "queries.txt".to_string(),
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n\
             Pubcrawl(Visit[λ]) -> Pubcrawl(Person)\n\
             Pubcrawl(Visit[Drink(Beer)]) ->> Pubcrawl(Visit[Drink(Pub)])\n"
                .to_string(),
        );
        // Panic injected into the second distinct closure computation:
        // that one query degrades to an ERROR line, the others still get
        // verdicts, and the command exits 3.
        let budget = Budget::unlimited().with_failpoint(FailPoint::nth(
            "membership::closure",
            1,
            FailAction::Panic,
        ));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let e = run_with_budget(
            &args(&["batch", SCHEMA, "deps.txt", "queries.txt", "--threads", "1"]),
            &f,
            &budget,
        )
        .unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(e.code, EXIT_RESOURCE);
        assert!(e.message.contains("ERROR"), "{}", e.message);
        assert!(e.message.contains(INJECTED_PANIC), "{}", e.message);
        assert!(e.message.contains("IMPLIED"), "{}", e.message);
        assert!(e.message.contains("1 failed"), "{}", e.message);
    }

    #[test]
    fn usage_text_documents_global_flags_and_exit_codes() {
        let text = usage_text();
        for f in GLOBAL_FLAGS.iter().chain(OBS_FLAGS) {
            assert!(text.contains(f.name), "usage misses {}", f.name);
        }
        assert!(text.contains("exit codes"));
        assert!(text.contains("3 resource budget exhausted"));
    }

    #[test]
    fn trace_flag_appends_span_tree_without_changing_the_answer() {
        let query = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])";
        let plain = run(&args(&["decide", SCHEMA, "deps.txt", query]), &files()).unwrap();
        let traced = run(
            &args(&["decide", SCHEMA, "deps.txt", query, "--trace"]),
            &files(),
        )
        .unwrap();
        assert!(traced.starts_with(&plain), "{traced}");
        assert!(traced.contains("trace (thread"), "{traced}");
        assert!(traced.contains(site::CLI_COMMAND), "{traced}");
        assert!(traced.contains(site::ATOMS), "{traced}");
    }

    #[test]
    fn without_obs_flags_output_is_byte_identical_to_the_legacy_path() {
        let query = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])";
        let via_run = run(&args(&["decide", SCHEMA, "deps.txt", query]), &files()).unwrap();
        let via_budget = run_with_budget(
            &args(&["decide", SCHEMA, "deps.txt", query]),
            &files(),
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(via_run, via_budget);
        assert!(!via_run.contains("trace (thread"));
    }

    #[test]
    fn metrics_flag_writes_schema_v2_json_and_keeps_output_unchanged() {
        let query = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])";
        let plain = run(&args(&["decide", SCHEMA, "deps.txt", query]), &files()).unwrap();
        let rw = RwFiles::new(files());
        let out = run(
            &args(&["decide", SCHEMA, "deps.txt", query, "--metrics", "m.json"]),
            &rw,
        )
        .unwrap();
        assert_eq!(out, plain);
        let doc = nalist::lint::json::parse(&rw.written("m.json")).expect("valid JSON");
        assert_eq!(doc.get("schema_version").and_then(Json::as_usize), Some(2));
        assert_eq!(doc.get("command").and_then(Json::as_str), Some("decide"));
        assert_eq!(doc.get("exit_code").and_then(Json::as_usize), Some(0));
        assert_eq!(
            doc.get("in_progress").and_then(Json::as_bool),
            Some(false),
            "a final flush must not be marked in-progress"
        );
        let counters = doc.get("counters").expect("counters object");
        for c in Counter::ALL {
            assert!(
                counters.get(c.name()).is_some(),
                "counter {} missing from metrics JSON",
                c.name()
            );
        }
        let hists = doc.get("histograms").and_then(Json::as_arr).unwrap();
        assert_eq!(hists.len(), nalist::obs::Hist::ALL.len());
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert!(!spans.is_empty(), "root cli::command span must be recorded");
        assert_eq!(
            spans[0].get("site").and_then(Json::as_str),
            Some(site::CLI_COMMAND)
        );
    }

    #[test]
    fn metrics_file_is_written_even_when_the_command_fails() {
        let rw = RwFiles::new(files());
        let e = run(
            &args(&[
                "decide",
                SCHEMA,
                "deps.txt",
                "not a dependency",
                "--metrics",
                "m.json",
            ]),
            &rw,
        )
        .unwrap_err();
        assert_eq!(e.code, 1);
        let doc = nalist::lint::json::parse(&rw.written("m.json")).expect("valid JSON");
        assert_eq!(doc.get("exit_code").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn metrics_write_failure_surfaces_only_when_the_command_succeeded() {
        // MemFiles keeps the default read-only `write`.
        let query = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])";
        let e = run(
            &args(&["decide", SCHEMA, "deps.txt", query, "--metrics", "m.json"]),
            &files(),
        )
        .unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("cannot write m.json"), "{}", e.message);
        // ...but a failing command keeps its own error.
        let e = run(
            &args(&[
                "decide",
                SCHEMA,
                "deps.txt",
                "not a dependency",
                "--metrics",
                "m.json",
            ]),
            &files(),
        )
        .unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("bad dependency"), "{}", e.message);
    }

    #[test]
    fn batch_gains_per_query_timing_under_obs_flags_only() {
        let mut f = files();
        f.0.insert(
            "queries.txt".to_string(),
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n\
             Pubcrawl(Visit[λ]) -> Pubcrawl(Person)\n"
                .to_string(),
        );
        let plain = run(&args(&["batch", SCHEMA, "deps.txt", "queries.txt"]), &f).unwrap();
        assert!(!plain.contains("per-query timing"), "{plain}");
        let traced = run(
            &args(&["batch", SCHEMA, "deps.txt", "queries.txt", "--trace"]),
            &f,
        )
        .unwrap();
        assert!(traced.contains("per-query timing"), "{traced}");
        assert!(traced.contains("query    0"), "{traced}");
        assert!(traced.contains("query    1"), "{traced}");
    }

    #[test]
    fn metrics_flag_requires_a_path() {
        let e = run(&args(&["lattice", SCHEMA, "--metrics"]), &files()).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--metrics requires"), "{}", e.message);
    }

    #[test]
    fn decide_cert_roundtrips_through_check() {
        // positive verdict
        let rw = RwFiles::new(files());
        let query = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])";
        let out = run(
            &args(&["decide", SCHEMA, "deps.txt", query, "--cert", "cert.json"]),
            &rw,
        )
        .unwrap();
        assert!(out.contains("certificate written to cert.json"), "{out}");
        let mut f = files();
        f.0.insert("cert.json".into(), rw.written("cert.json"));
        let verdict = run(&args(&["check", SCHEMA, "deps.txt", "cert.json"]), &f).unwrap();
        assert!(verdict.starts_with("ACCEPTED"), "{verdict}");
        assert!(verdict.contains("implied"), "{verdict}");

        // negative verdict: the certificate carries the counterexample
        let rw = RwFiles::new(files());
        let query = "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])";
        let out = run(
            &args(&["decide", SCHEMA, "deps.txt", query, "--cert", "cert.json"]),
            &rw,
        )
        .unwrap();
        assert!(out.starts_with("NOT IMPLIED"), "{out}");
        let mut f = files();
        f.0.insert("cert.json".into(), rw.written("cert.json"));
        let verdict = run(&args(&["check", SCHEMA, "deps.txt", "cert.json"]), &f).unwrap();
        assert!(verdict.contains("not-implied"), "{verdict}");
        assert!(verdict.contains("tuple(s)"), "{verdict}");
    }

    #[test]
    fn prove_and_basis_certs_are_accepted_by_check() {
        let rw = RwFiles::new(files());
        let out = run(
            &args(&[
                "prove",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
                "--cert",
                "cert.json",
            ]),
            &rw,
        )
        .unwrap();
        assert!(out.contains("machine-checked derivation"), "{out}");
        let mut f = files();
        f.0.insert("cert.json".into(), rw.written("cert.json"));
        let verdict = run(&args(&["check", SCHEMA, "deps.txt", "cert.json"]), &f).unwrap();
        assert!(verdict.starts_with("ACCEPTED"), "{verdict}");

        let rw = RwFiles::new(files());
        run(
            &args(&[
                "basis",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person)",
                "--cert",
                "cert.json",
            ]),
            &rw,
        )
        .unwrap();
        let mut f = files();
        f.0.insert("cert.json".into(), rw.written("cert.json"));
        let verdict = run(&args(&["check", SCHEMA, "deps.txt", "cert.json"]), &f).unwrap();
        assert!(verdict.contains("derived"), "{verdict}");
    }

    #[test]
    fn check_rejects_a_tampered_certificate() {
        let rw = RwFiles::new(files());
        run(
            &args(&[
                "decide",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
                "--cert",
                "cert.json",
            ]),
            &rw,
        )
        .unwrap();
        let tampered = rw
            .written("cert.json")
            .replace("\"verdict\": \"implied\"", "\"verdict\": \"not-implied\"");
        let mut f = files();
        f.0.insert("cert.json".into(), tampered);
        let e = run(&args(&["check", SCHEMA, "deps.txt", "cert.json"]), &f).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.starts_with("REJECTED"), "{}", e.message);
    }

    #[test]
    fn check_format_json_and_error_codes() {
        let rw = RwFiles::new(files());
        run(
            &args(&[
                "decide",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
                "--cert",
                "cert.json",
            ]),
            &rw,
        )
        .unwrap();
        let mut f = files();
        f.0.insert("cert.json".into(), rw.written("cert.json"));
        let out = run(
            &args(&["check", SCHEMA, "deps.txt", "cert.json", "--format", "json"]),
            &f,
        )
        .unwrap();
        let doc = nalist::lint::json::parse(&out).expect("valid JSON verdict");
        assert_eq!(doc.get("accepted").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("implied"));

        // unreadable certificate document: exit 2
        f.0.insert("garbage.json".into(), "not a certificate".into());
        let e = run(&args(&["check", SCHEMA, "deps.txt", "garbage.json"]), &f).unwrap_err();
        assert_eq!(e.code, 2);
        // missing file: exit 2
        let e = run(&args(&["check", SCHEMA, "deps.txt", "absent.json"]), &f).unwrap_err();
        assert_eq!(e.code, 2);
        // bad flag: usage error
        let e = run(
            &args(&["check", SCHEMA, "deps.txt", "cert.json", "--wat"]),
            &f,
        )
        .unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn lint_explain_covers_both_rule_families() {
        let out = run(&args(&["lint", "--explain", "L005"]), &files()).unwrap();
        assert!(out.contains("fd-from-mvd"), "{out}");
        assert!(out.contains("mixed meet"), "{out}");
        let out = run(&args(&["lint", "--explain", "mixed-meet"]), &files()).unwrap();
        assert!(out.contains("Theorem 4.6"), "{out}");
        let out = run(&args(&["lint", "--explain", "fd-transitivity"]), &files()).unwrap();
        assert!(out.contains("Theorem 4.6"), "{out}");
        let e = run(&args(&["lint", "--explain", "L999"]), &files()).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("unknown rule"), "{}", e.message);
    }

    #[test]
    fn help_check_lists_stable_rule_ids() {
        let out = run(&args(&["help", "check"]), &files()).unwrap();
        assert!(out.contains("never trusts"), "{out}");
        for r in nalist::deps::rules::ALL_RULES {
            assert!(out.contains(r.id()), "help check misses {}", r.id());
        }
        let out = run(&args(&["help", "decide"]), &files()).unwrap();
        assert!(out.contains("--cert"), "{out}");
    }

    #[test]
    fn check_verdict_is_identical_observed_and_unobserved() {
        let rw = RwFiles::new(files());
        run(
            &args(&[
                "decide",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
                "--cert",
                "cert.json",
            ]),
            &rw,
        )
        .unwrap();
        let mut f = files();
        f.0.insert("cert.json".into(), rw.written("cert.json"));
        let plain = run(&args(&["check", SCHEMA, "deps.txt", "cert.json"]), &f).unwrap();
        let rw2 = RwFiles::new(f);
        let observed = run(
            &args(&[
                "check",
                SCHEMA,
                "deps.txt",
                "cert.json",
                "--trace",
                "--metrics",
                "m.json",
            ]),
            &rw2,
        )
        .unwrap();
        assert!(observed.starts_with(&plain), "{observed}");
        assert!(observed.contains(site::CHECK_VERIFY), "{observed}");
        let doc = nalist::lint::json::parse(&rw2.written("m.json")).unwrap();
        let counters = doc.get("counters").unwrap();
        assert!(counters.get("cert_nodes").and_then(Json::as_usize).unwrap() > 0);
    }

    #[test]
    fn invalid_certificate_step_maps_to_exit_code_2() {
        let e = CliError::reasoner(&ReasonerError::Certify(CertifyError::InvalidInstance {
            rule: "mixed meet rule",
        }));
        assert_eq!(e.code, 2);
        assert!(e.message.contains("mixed meet rule"), "{}", e.message);
    }
}
