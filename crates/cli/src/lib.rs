//! # nalist-cli
//!
//! Command-line reasoner for functional and multi-valued dependencies
//! over nested record/list schemas. All logic lives in [`run`] so that it
//! is directly testable; `main` only forwards `std::env::args` and files.
//!
//! ```text
//! nalist check     <schema> <deps-file> <dependency>   decide Σ ⊨ σ (witness on "no")
//! nalist batch     <schema> <deps-file> <queries-file> [--threads N]
//!                                                      decide Σ ⊨ σ for many σ in parallel
//! nalist prove     <schema> <deps-file> <dependency>   emit a machine-checked derivation
//! nalist closure   <schema> <deps-file> <subattr>      attribute-set closure X⁺
//! nalist basis     <schema> <deps-file> <subattr>      dependency basis DepB(X)
//! nalist trace     <schema> <deps-file> <subattr>      Algorithm 5.1 step-by-step
//! nalist verify    <schema> <deps-file> <data-file>    check an instance against Σ
//! nalist chase     <schema> <deps-file> <data-file>    repair an instance (MVD chase)
//! nalist normalize <schema> <deps-file>                cover, keys, 4NF, decomposition
//! nalist lattice   <schema> [--dot]                    Sub(N) summary / DOT diagram
//! ```
//!
//! `<schema>` is a nested attribute in the paper's notation, e.g.
//! `"Pubcrawl(Person, Visit[Drink(Beer, Pub)])"`. Dependency files hold
//! one `X -> Y` / `X ->> Y` per line (`#` comments allowed); data files
//! hold one tuple literal per line, e.g. `(Sven, [(Lübzer, Deanos)])`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use nalist::membership::trace::{render_result, render_trace};
use nalist::prelude::*;
use nalist::schema::cover::redundant_indices;
use nalist::schema::normalform::fourth_nf_violations;

/// CLI failure: a message for stderr plus a suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (2 = usage, 1 = domain error).
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError {
            message: format!("{}\n\n{USAGE}", msg.into()),
            code: 2,
        }
    }

    fn domain(msg: impl std::fmt::Display) -> Self {
        CliError {
            message: msg.to_string(),
            code: 1,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "usage:
  nalist check     <schema> <deps-file> <dependency>
  nalist batch     <schema> <deps-file> <queries-file> [--threads N]
  nalist prove     <schema> <deps-file> <dependency>
  nalist closure   <schema> <deps-file> <subattr>
  nalist basis     <schema> <deps-file> <subattr>
  nalist trace     <schema> <deps-file> <subattr>
  nalist verify    <schema> <deps-file> <data-file>
  nalist chase     <schema> <deps-file> <data-file>
  nalist normalize <schema> <deps-file>
  nalist lattice   <schema> [--dot]

<schema> is a nested attribute, e.g. 'Pubcrawl(Person, Visit[Drink(Beer, Pub)])'.
Dependency and query files hold one 'X -> Y' or 'X ->> Y' per line; data
files one tuple literal per line. '#' starts a comment in either. Pass
'-' as a file argument to read it from stdin.";

/// File access used by [`run`]; injectable for tests.
pub trait Files {
    /// Reads a whole file to a string.
    fn read(&self, path: &str) -> Result<String, String>;
}

/// Real filesystem access.
pub struct OsFiles;

impl Files for OsFiles {
    fn read(&self, path: &str) -> Result<String, String> {
        if path == "-" {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            return Ok(buf);
        }
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

fn load_reasoner(files: &dyn Files, schema: &str, deps_path: &str) -> Result<Reasoner, CliError> {
    let n =
        parse_attr(schema).map_err(|e| CliError::domain(format!("bad schema attribute: {e}")))?;
    let mut r = Reasoner::new(&n);
    let text = files.read(deps_path).map_err(CliError::domain)?;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        r.add_str(line)
            .map_err(|e| CliError::domain(format!("{deps_path}:{}: {e}", lineno + 1)))?;
    }
    Ok(r)
}

/// Executes a CLI invocation; `args` excludes the program name.
pub fn run(args: &[String], files: &dyn Files) -> Result<String, CliError> {
    let mut out = String::new();
    match args {
        [cmd, schema, deps, dep] if cmd == "check" => {
            let r = load_reasoner(files, schema, deps)?;
            let alg = r.algebra();
            let target = Dependency::parse(r.attr(), dep)
                .map_err(|e| CliError::domain(format!("bad dependency: {e}")))?
                .compile(alg)
                .map_err(CliError::domain)?;
            match refute(alg, r.compiled_sigma(), &target).map_err(CliError::domain)? {
                None => {
                    writeln!(out, "IMPLIED: Σ ⊨ {}", target.render(alg)).unwrap();
                }
                Some(w) => {
                    writeln!(out, "NOT IMPLIED: Σ ⊭ {}", target.render(alg)).unwrap();
                    writeln!(
                        out,
                        "counterexample ({} tuples; satisfies Σ, violates the dependency):",
                        w.instance.len()
                    )
                    .unwrap();
                    for t in w.instance.iter() {
                        writeln!(out, "  {t}").unwrap();
                    }
                }
            }
        }
        [cmd, schema, deps, queries, rest @ ..] if cmd == "batch" => {
            let threads = match rest {
                [] => None,
                [flag, n] if flag == "--threads" => Some(
                    n.parse::<std::num::NonZeroUsize>()
                        .map_err(|e| CliError::usage(format!("bad --threads value '{n}': {e}")))?,
                ),
                _ => return Err(CliError::usage("unknown flags for batch")),
            };
            let r = load_reasoner(files, schema, deps)?;
            let alg = r.algebra();
            let text = files.read(queries).map_err(CliError::domain)?;
            let mut targets = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let dep = Dependency::parse(r.attr(), line)
                    .map_err(|e| CliError::domain(format!("{queries}:{}: {e}", lineno + 1)))?;
                targets.push(dep);
            }
            let verdicts = match threads {
                Some(t) => r.implies_batch_with(&targets, t),
                None => r.implies_batch(&targets),
            }
            .map_err(CliError::domain)?;
            let mut implied = 0;
            for (dep, ok) in targets.iter().zip(&verdicts) {
                let c = dep.compile(alg).expect("batch already compiled it");
                if *ok {
                    implied += 1;
                    writeln!(out, "IMPLIED      {}", c.render(alg)).unwrap();
                } else {
                    writeln!(out, "NOT IMPLIED  {}", c.render(alg)).unwrap();
                }
            }
            writeln!(
                out,
                "{implied}/{} implied, {} not",
                verdicts.len(),
                verdicts.len() - implied
            )
            .unwrap();
        }
        [cmd, schema, deps, dep] if cmd == "prove" => {
            let r = load_reasoner(files, schema, deps)?;
            let alg = r.algebra();
            let target = Dependency::parse(r.attr(), dep)
                .map_err(|e| CliError::domain(format!("bad dependency: {e}")))?
                .compile(alg)
                .map_err(CliError::domain)?;
            match nalist::membership::certify(alg, r.compiled_sigma(), &target) {
                None => {
                    writeln!(
                        out,
                        "NOT IMPLIED: Σ ⊭ {} (no derivation exists)",
                        target.render(alg)
                    )
                    .unwrap();
                }
                Some(dag) => {
                    dag.check(alg, r.compiled_sigma()).map_err(|e| {
                        CliError::domain(format!("internal: certificate invalid: {e}"))
                    })?;
                    writeln!(
                        out,
                        "IMPLIED — machine-checked derivation ({} nodes):",
                        dag.len()
                    )
                    .unwrap();
                    out.push_str(&dag.render(alg));
                }
            }
        }
        [cmd, schema, deps, sub] if cmd == "closure" => {
            let r = load_reasoner(files, schema, deps)?;
            let c = r.closure_str(sub).map_err(CliError::domain)?;
            writeln!(
                out,
                "{}+ = {}",
                sub,
                nalist::types::display::abbreviate(&c, r.attr())
            )
            .unwrap();
        }
        [cmd, schema, deps, sub] if cmd == "basis" || cmd == "trace" => {
            let r = load_reasoner(files, schema, deps)?;
            let alg = r.algebra();
            let x = parse_subattr_of(r.attr(), sub)
                .map_err(|e| CliError::domain(format!("bad subattribute: {e}")))?;
            let xs = alg.from_attr(&x).map_err(CliError::domain)?;
            if cmd == "trace" {
                let (basis, trace) = closure_and_basis_traced(alg, r.compiled_sigma(), &xs);
                out.push_str(&render_trace(alg, r.compiled_sigma(), &trace));
                out.push_str(&render_result(alg, &basis));
            } else {
                let basis = r.dependency_basis(&xs);
                writeln!(out, "X+ = {}", alg.render(&basis.closure)).unwrap();
                writeln!(out, "DepB(X) ({} elements):", basis.basis.len()).unwrap();
                for b in &basis.basis {
                    writeln!(out, "  {}", alg.render(b)).unwrap();
                }
            }
        }
        [cmd, schema, deps, data] if cmd == "chase" => {
            let r = load_reasoner(files, schema, deps)?;
            let alg = r.algebra();
            let mut instance = Instance::new(r.attr().clone());
            let text = files.read(data).map_err(CliError::domain)?;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                instance
                    .insert_str(line)
                    .map_err(|e| CliError::domain(format!("{data}:{}: {e}", lineno + 1)))?;
            }
            match chase(alg, r.compiled_sigma(), &instance, 1 << 16) {
                Ok(result) => {
                    writeln!(
                        out,
                        "chase succeeded after {} round(s), {} tuple(s) added:",
                        result.rounds, result.added
                    )
                    .unwrap();
                    for t in result.instance.iter() {
                        writeln!(out, "  {t}").unwrap();
                    }
                }
                Err(e) => return Err(CliError::domain(format!("chase failed: {e}"))),
            }
        }
        [cmd, schema, deps, data] if cmd == "verify" => {
            let r = load_reasoner(files, schema, deps)?;
            let alg = r.algebra();
            let mut instance = Instance::new(r.attr().clone());
            let text = files.read(data).map_err(CliError::domain)?;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                instance
                    .insert_str(line)
                    .map_err(|e| CliError::domain(format!("{data}:{}: {e}", lineno + 1)))?;
            }
            writeln!(out, "instance: {} tuples", instance.len()).unwrap();
            let mut violated = 0;
            for (i, d) in r.compiled_sigma().iter().enumerate() {
                let ok = instance.satisfies(alg, d);
                if !ok {
                    violated += 1;
                }
                writeln!(
                    out,
                    "  [{}] {:<60} {}",
                    i + 1,
                    d.render(alg),
                    if ok { "satisfied" } else { "VIOLATED" }
                )
                .unwrap();
            }
            writeln!(
                out,
                "{}",
                if violated == 0 {
                    "instance satisfies Σ".to_string()
                } else {
                    format!("instance violates {violated} dependencies")
                }
            )
            .unwrap();
        }
        [cmd, schema, deps] if cmd == "normalize" => {
            let r = load_reasoner(files, schema, deps)?;
            let alg = r.algebra();
            let sigma = r.compiled_sigma();
            let redundant = redundant_indices(alg, sigma);
            writeln!(
                out,
                "Σ: {} dependencies, {} redundant",
                sigma.len(),
                redundant.len()
            )
            .unwrap();
            let cover = minimal_cover(alg, sigma);
            writeln!(out, "minimal cover ({} dependencies):", cover.len()).unwrap();
            for d in &cover {
                writeln!(out, "  {}", d.render(alg)).unwrap();
            }
            let keys = candidate_keys(alg, sigma, 8);
            writeln!(out, "candidate keys ({}):", keys.len()).unwrap();
            for k in &keys {
                writeln!(out, "  {}", alg.render(k)).unwrap();
            }
            let violations = fourth_nf_violations(alg, sigma);
            if violations.is_empty() {
                writeln!(out, "schema is in 4NF-with-lists").unwrap();
            } else {
                writeln!(out, "4NF violations ({}):", violations.len()).unwrap();
                for v in &violations {
                    writeln!(out, "  {}", v.reason).unwrap();
                }
                let comps = decompose_4nf(alg, sigma, 8);
                writeln!(
                    out,
                    "suggested lossless decomposition ({} components):",
                    comps.len()
                )
                .unwrap();
                for c in &comps {
                    writeln!(out, "  {}", alg.render(&c.atoms)).unwrap();
                }
            }
        }
        [cmd, schema, rest @ ..] if cmd == "lattice" => {
            let n = parse_attr(schema)
                .map_err(|e| CliError::domain(format!("bad schema attribute: {e}")))?;
            let alg = Algebra::new(&n);
            let count = nalist::algebra::lattice::sub_count(&n);
            writeln!(out, "N = {n}").unwrap();
            writeln!(
                out,
                "|SubB(N)| = {} atoms ({} maximal), |Sub(N)| = {count}",
                alg.atom_count(),
                alg.max_mask().count()
            )
            .unwrap();
            out.push_str(&nalist::algebra::render::basis_listing(&alg, None));
            match rest {
                [] => {}
                [flag] if flag == "--dot" => {
                    if count > 4096 {
                        return Err(CliError::domain(format!(
                            "lattice has {count} elements; refusing to render DOT above 4096"
                        )));
                    }
                    out.push_str(&nalist::algebra::render::full_lattice_dot(&alg));
                }
                _ => return Err(CliError::usage("unknown flag for lattice")),
            }
        }
        [] => return Err(CliError::usage("missing command")),
        _ => {
            return Err(CliError::usage(format!(
                "unrecognised invocation: {args:?}"
            )))
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    struct MemFiles(BTreeMap<String, String>);

    impl Files for MemFiles {
        fn read(&self, path: &str) -> Result<String, String> {
            self.0
                .get(path)
                .cloned()
                .ok_or_else(|| format!("no such file: {path}"))
        }
    }

    fn files() -> MemFiles {
        let mut m = BTreeMap::new();
        m.insert(
            "deps.txt".to_string(),
            "# pubcrawl constraints\nPubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n"
                .to_string(),
        );
        m.insert(
            "data.txt".to_string(),
            "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])\n\
             (Sven, [(Kindl, Deanos), (Lübzer, Highflyers)])\n\
             (Sebastian, [])\n"
                .to_string(),
        );
        MemFiles(m)
    }

    const SCHEMA: &str = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn check_implied() {
        let out = run(
            &args(&[
                "check",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            ]),
            &files(),
        )
        .unwrap();
        assert!(out.starts_with("IMPLIED"));
    }

    #[test]
    fn check_not_implied_prints_witness() {
        let out = run(
            &args(&[
                "check",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
            ]),
            &files(),
        )
        .unwrap();
        assert!(out.starts_with("NOT IMPLIED"));
        assert!(out.contains("counterexample"));
        assert!(out.contains('('));
    }

    #[test]
    fn batch_command() {
        let mut f = files();
        f.0.insert(
            "queries.txt".to_string(),
            "# batch membership queries\n\
             Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n\
             Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])\n\
             Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])\n"
                .to_string(),
        );
        let out = run(&args(&["batch", SCHEMA, "deps.txt", "queries.txt"]), &f).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("IMPLIED"), "{out}");
        assert!(lines[1].starts_with("NOT IMPLIED"), "{out}");
        assert!(lines[2].starts_with("IMPLIED"), "{out}");
        assert_eq!(lines[3], "2/3 implied, 1 not");
        // explicit thread count gives identical output
        let fixed = run(
            &args(&["batch", SCHEMA, "deps.txt", "queries.txt", "--threads", "2"]),
            &f,
        )
        .unwrap();
        assert_eq!(fixed, out);
        // bad flags and bad query lines are reported
        let e = run(
            &args(&["batch", SCHEMA, "deps.txt", "queries.txt", "--bogus"]),
            &f,
        )
        .unwrap_err();
        assert_eq!(e.code, 2);
        f.0.insert("badq.txt".to_string(), "Pubcrawl(Zzz) -> λ\n".to_string());
        let e = run(&args(&["batch", SCHEMA, "deps.txt", "badq.txt"]), &f).unwrap_err();
        assert!(e.message.contains("badq.txt:1"), "{}", e.message);
    }

    #[test]
    fn prove_command() {
        let out = run(
            &args(&[
                "prove",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
            ]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("machine-checked derivation"));
        assert!(out.contains("mixed meet rule"));
        let out = run(
            &args(&[
                "prove",
                SCHEMA,
                "deps.txt",
                "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
            ]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("NOT IMPLIED"));
    }

    #[test]
    fn closure_command() {
        let out = run(
            &args(&["closure", SCHEMA, "deps.txt", "Pubcrawl(Person)"]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("Pubcrawl(Person, Visit[λ])"), "{out}");
    }

    #[test]
    fn basis_and_trace_commands() {
        let out = run(
            &args(&["basis", SCHEMA, "deps.txt", "Pubcrawl(Person)"]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("DepB(X)"));
        let out = run(
            &args(&["trace", SCHEMA, "deps.txt", "Pubcrawl(Person)"]),
            &files(),
        )
        .unwrap();
        assert!(out.contains("initialisation:"));
        assert!(out.contains("X+ ="));
    }

    #[test]
    fn verify_command() {
        let out = run(&args(&["verify", SCHEMA, "deps.txt", "data.txt"]), &files()).unwrap();
        assert!(out.contains("instance: 3 tuples"));
        assert!(out.contains("instance satisfies Σ"));
    }

    #[test]
    fn verify_reports_violations() {
        let mut f = files();
        f.0.insert(
            "bad.txt".to_string(),
            "(Sven, [(A, P1)])\n(Sven, [(A, P1), (B, P2)])\n".to_string(),
        );
        // different list lengths for the same person violate the derived
        // shape FD? Not in Σ — but the MVD itself is violated here:
        // lengths differ so no recombination exists.
        let out = run(&args(&["verify", SCHEMA, "deps.txt", "bad.txt"]), &f).unwrap();
        assert!(out.contains("VIOLATED"), "{out}");
    }

    #[test]
    fn chase_command() {
        let mut f = files();
        f.0.insert(
            "partial.txt".to_string(),
            "(Sven, [(A, P1), (B, P2)])\n(Sven, [(B, P1), (A, P2)])\n".to_string(),
        );
        let out = run(&args(&["chase", SCHEMA, "deps.txt", "partial.txt"]), &f).unwrap();
        assert!(out.contains("chase succeeded"), "{out}");
        // shape conflict: chase fails with the mixed-meet explanation
        f.0.insert(
            "conflict.txt".to_string(),
            "(Sven, [(A, P1)])\n(Sven, [(A, P1), (B, P2)])\n".to_string(),
        );
        let e = run(&args(&["chase", SCHEMA, "deps.txt", "conflict.txt"]), &f).unwrap_err();
        assert!(e.message.contains("chase failed"), "{}", e.message);
    }

    #[test]
    fn normalize_command() {
        let out = run(&args(&["normalize", SCHEMA, "deps.txt"]), &files()).unwrap();
        assert!(out.contains("minimal cover"));
        assert!(out.contains("candidate keys"));
        assert!(out.contains("4NF"));
        assert!(out.contains("lossless decomposition"));
    }

    #[test]
    fn lattice_command() {
        let out = run(&args(&["lattice", "J[K(A, L[M(B, C)])]"]), &files()).unwrap();
        assert!(out.contains("|Sub(N)| = 11"));
        let dot = run(
            &args(&["lattice", "J[K(A, L[M(B, C)])]", "--dot"]),
            &files(),
        )
        .unwrap();
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn lattice_dot_guard_for_huge_lattices() {
        // 20 flat attributes: |Sub(N)| = 2^20 — DOT rendering must refuse
        let schema = "R(A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, \
                      A12, A13, A14, A15, A16, A17, A18, A19)";
        let e = run(&args(&["lattice", schema, "--dot"]), &files()).unwrap_err();
        assert!(e.message.contains("refusing"), "{}", e.message);
        // the summary (without --dot) still works
        let out = run(&args(&["lattice", schema]), &files()).unwrap();
        assert!(out.contains("|SubB(N)| = 20"));
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(run(&args(&[]), &files()).unwrap_err().code, 2);
        assert_eq!(run(&args(&["bogus"]), &files()).unwrap_err().code, 2);
        let e = run(&args(&["closure", "L(", "deps.txt", "λ"]), &files()).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("bad schema"));
        let e = run(&args(&["closure", SCHEMA, "missing.txt", "λ"]), &files()).unwrap_err();
        assert!(e.message.contains("no such file"));
        // bad dependency line includes file/line info
        let mut f = files();
        f.0.insert("broken.txt".into(), "Pubcrawl(Zzz) -> λ\n".into());
        let e = run(&args(&["closure", SCHEMA, "broken.txt", "λ"]), &f).unwrap_err();
        assert!(e.message.contains("broken.txt:1"));
    }
}
