//! Thin binary wrapper around [`nalist_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nalist_cli::run(&args, &nalist_cli::OsFiles) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}
