//! Thin binary wrapper around [`nalist_cli::run`].
//!
//! One extra hook lives here (and only here, so library code never
//! reads process environment): `NALIST_FAILPOINT=<site>=<action>`
//! arms fault-injection points for crash-recovery testing, e.g.
//! `NALIST_FAILPOINT='store::append=panic@2' nalist replay … --wal …`
//! crashes the process on the third WAL append. See
//! [`nalist_cli::parse_failpoint_spec`] for the grammar.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let failpoints = match std::env::var("NALIST_FAILPOINT") {
        Err(_) => Vec::new(),
        Ok(spec) => match nalist_cli::parse_failpoint_spec(&spec) {
            Ok(fps) => fps,
            Err(e) => {
                eprintln!("bad NALIST_FAILPOINT: {e}");
                std::process::exit(2);
            }
        },
    };
    match nalist_cli::run_with_failpoints(&args, &nalist_cli::OsFiles, failpoints) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}
