//! Golden test for the `--metrics` JSON document (`schema_version` 1).
//!
//! Timing values vary run to run, so the golden pins the *shape* of the
//! document rather than raw bytes: every key with its JSON type, the
//! full counter set in declaration order, the histogram names, and the
//! exact span-site sequence for a fixed single-threaded command.
//! Regenerate with `UPDATE_GOLDENS=1 cargo test -p nalist-cli --test
//! metrics_golden` after an intentional schema change, then review the
//! diff like any other code change.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use nalist::lint::json::Json;
use nalist_cli::{run, Files};

struct RwFiles {
    inner: BTreeMap<String, String>,
    written: RefCell<BTreeMap<String, String>>,
}

impl Files for RwFiles {
    fn read(&self, path: &str) -> Result<String, String> {
        self.inner
            .get(path)
            .cloned()
            .ok_or_else(|| format!("no such file: {path}"))
    }

    fn write(&self, path: &str, content: &str) -> Result<(), String> {
        self.written
            .borrow_mut()
            .insert(path.to_string(), content.to_string());
        Ok(())
    }
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/cli_fixtures/metrics_schema.golden")
}

fn assert_golden(actual: &str) {
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "metrics schema golden mismatch; rerun with UPDATE_GOLDENS=1 if intentional"
    );
}

fn ty(j: &Json) -> &'static str {
    match j {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "num",
        Json::Str(_) => "str",
        Json::Arr(_) => "arr",
        Json::Obj(_) => "obj",
    }
}

/// Renders the document's shape: deterministic leaves (names, sites,
/// the version/command/exit-code header) by value, timing leaves by
/// type only.
fn render_shape(doc: &Json) -> String {
    let Json::Obj(fields) = doc else {
        panic!("metrics document must be a JSON object")
    };
    let mut out = String::new();
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("schema_version" | "exit_code", Json::Num(n)) => {
                writeln!(out, "{key} = {n}").unwrap();
            }
            ("command", Json::Str(s)) => writeln!(out, "{key} = \"{s}\"").unwrap(),
            ("counters", Json::Obj(counters)) => {
                writeln!(out, "counters:").unwrap();
                for (name, v) in counters {
                    writeln!(out, "  {name}: {}", ty(v)).unwrap();
                }
            }
            ("histograms", Json::Arr(hists)) => {
                writeln!(out, "histograms[{}]:", hists.len()).unwrap();
                for h in hists {
                    let name = h.get("name").and_then(Json::as_str).expect("hist name");
                    let Json::Obj(fields) = h else { unreachable!() };
                    let keys: Vec<String> = fields
                        .iter()
                        .map(|(k, v)| format!("{k}: {}", ty(v)))
                        .collect();
                    writeln!(out, "  {name} {{{}}}", keys.join(", ")).unwrap();
                }
            }
            ("spans", Json::Arr(spans)) => {
                writeln!(out, "spans[{}]:", spans.len()).unwrap();
                for s in spans {
                    let site = s.get("site").and_then(Json::as_str).expect("span site");
                    let depth = s.get("depth").and_then(Json::as_usize).expect("depth");
                    let Json::Obj(fields) = s else { unreachable!() };
                    let keys: Vec<String> = fields
                        .iter()
                        .map(|(k, v)| format!("{k}: {}", ty(v)))
                        .collect();
                    writeln!(out, "  depth {depth} {site} {{{}}}", keys.join(", ")).unwrap();
                }
            }
            _ => writeln!(out, "{key}: {}", ty(value)).unwrap(),
        }
    }
    out
}

#[test]
fn metrics_schema_matches_golden() {
    let mut inner = BTreeMap::new();
    inner.insert(
        "deps.txt".to_string(),
        "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n".to_string(),
    );
    let files = RwFiles {
        inner,
        written: RefCell::new(BTreeMap::new()),
    };
    let argv: Vec<String> = [
        "decide",
        "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
        "deps.txt",
        "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
        "--metrics",
        "m.json",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    run(&argv, &files).expect("decide succeeds");
    let written = files.written.borrow();
    let doc = nalist::lint::json::parse(written.get("m.json").expect("metrics written"))
        .expect("valid JSON");
    assert_golden(&render_shape(&doc));
}
