//! Chaos harness: every CLI command, fed every pathological input in
//! the chaos corpus, must terminate within its deadline with exit code
//! 0, 1, 2 or 3 — never a panic, never a runaway computation.
//!
//! Runs [`nalist_cli::run`] in-process (through the [`Files`] seam) so a
//! panic anywhere in the stack is caught by `catch_unwind` and failed
//! loudly, and wall-clock per invocation can be asserted directly.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use nalist::gen::chaos::{corpus, durability_corpus, Expectation};
use nalist::guard::{Budget, FailAction, FailPoint};
use nalist_cli::{run, run_with_budget, run_with_failpoints, Files};

struct MemFiles(BTreeMap<String, String>);

impl Files for MemFiles {
    fn read(&self, path: &str) -> Result<String, String> {
        self.0
            .get(path)
            .cloned()
            .ok_or_else(|| format!("no such file: {path}"))
    }
}

/// [`MemFiles`] that also accepts writes, so `--metrics` chaos cases can
/// inspect what the CLI persisted after a failure.
struct RwFiles {
    inner: MemFiles,
    written: std::cell::RefCell<BTreeMap<String, String>>,
}

impl Files for RwFiles {
    fn read(&self, path: &str) -> Result<String, String> {
        self.inner.read(path)
    }

    fn write(&self, path: &str, content: &str) -> Result<(), String> {
        self.written
            .borrow_mut()
            .insert(path.to_string(), content.to_string());
        Ok(())
    }
}

const TIMEOUT_MS: u64 = 2_000;

/// Every command template exercised against each corpus case. `{s}` is
/// the schema (passed inline), file names resolve through [`MemFiles`].
const COMMAND_TEMPLATES: &[&[&str]] = &[
    &["decide", "{s}", "deps.txt", "λ -> λ"],
    &["check", "{s}", "deps.txt", "cert.json"],
    &["batch", "{s}", "deps.txt", "deps.txt"],
    &["replay", "{s}", "edits.txt"],
    &["prove", "{s}", "deps.txt", "λ -> λ"],
    &["closure", "{s}", "deps.txt", "λ"],
    &["basis", "{s}", "deps.txt", "λ"],
    &["trace", "{s}", "deps.txt", "λ"],
    &["verify", "{s}", "deps.txt", "data.txt"],
    &["chase", "{s}", "deps.txt", "data.txt"],
    &["normalize", "{s}", "deps.txt"],
    &["lint", "{s}", "deps.txt"],
    &["lattice", "{s}"],
];

fn invoke(argv: &[String], files: &MemFiles) -> (i32, Duration) {
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| run(argv, files)));
    let elapsed = started.elapsed();
    let code = match outcome {
        Ok(Ok(_)) => 0,
        Ok(Err(e)) => e.code,
        Err(_) => panic!("PANIC escaped `run` for argv {argv:?}"),
    };
    (code, elapsed)
}

#[test]
fn every_command_survives_the_whole_corpus() {
    for case in corpus() {
        let mut files = BTreeMap::new();
        files.insert("deps.txt".to_string(), case.deps.clone());
        files.insert("data.txt".to_string(), String::new());
        files.insert(
            "cert.json".to_string(),
            nalist::gen::chaos::universal_certificate(&case.schema, &case.deps),
        );
        // the same corpus dependencies as a replay script: add each,
        // then query each (each line doubles as its own membership probe)
        let mut edits = String::new();
        for line in case.deps.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            edits.push_str(&format!("+ {line}\n? {line}\n"));
        }
        files.insert("edits.txt".to_string(), edits);
        let files = MemFiles(files);
        for template in COMMAND_TEMPLATES {
            let mut argv: Vec<String> = template
                .iter()
                .map(|a| {
                    if *a == "{s}" {
                        case.schema.clone()
                    } else {
                        (*a).to_string()
                    }
                })
                .collect();
            argv.extend(
                [
                    "--timeout",
                    &TIMEOUT_MS.to_string(),
                    "--max-atoms",
                    "512",
                    "--max-depth",
                    "256",
                ]
                .iter()
                .map(|s| (*s).to_string()),
            );
            let (code, elapsed) = invoke(&argv, &files);
            assert!(
                (0..=3).contains(&code),
                "case {} / {}: exit code {code} outside 0..=3",
                case.name,
                template[0]
            );
            // The hard ceiling from the failure model: never more than
            // 2x the budget (plus scheduling slack).
            assert!(
                elapsed < Duration::from_millis(2 * TIMEOUT_MS + 250),
                "case {} / {}: took {elapsed:?} against a {TIMEOUT_MS} ms budget",
                case.name,
                template[0]
            );
            if case.expect == Expectation::Accept {
                assert!(
                    code != 2 && code != 3,
                    "case {} / {}: valid input rejected with exit code {code}",
                    case.name,
                    template[0]
                );
            }
        }
    }
}

#[test]
fn expired_deadline_is_exit_code_3_everywhere() {
    let mut files = BTreeMap::new();
    files.insert("deps.txt".to_string(), "L(A) -> L(B)\n".to_string());
    files.insert("data.txt".to_string(), String::new());
    files.insert(
        "cert.json".to_string(),
        nalist::gen::chaos::universal_certificate("L(A, B)", "L(A) -> L(B)\n"),
    );
    let files = MemFiles(files);
    for template in COMMAND_TEMPLATES {
        if template[0] == "lattice" {
            // lattice charges no per-step fuel on tiny inputs; covered by
            // the atom cap instead.
            continue;
        }
        let mut argv: Vec<String> = template
            .iter()
            .map(|a| {
                if *a == "{s}" {
                    "L(A, B)".to_string()
                } else {
                    (*a).to_string()
                }
            })
            .collect();
        argv.extend(["--timeout", "0"].iter().map(|s| (*s).to_string()));
        let (code, _) = invoke(&argv, &files);
        assert_eq!(code, 3, "{}: expected resource exhaustion", template[0]);
    }
}

#[test]
fn injected_fuel_exhaustion_in_closure_is_exit_code_3() {
    let mut files = BTreeMap::new();
    files.insert("deps.txt".to_string(), "L(A) -> L(B)\n".to_string());
    let files = MemFiles(files);
    let budget = Budget::unlimited().with_failpoint(FailPoint::every(
        "membership::closure",
        FailAction::ExhaustFuel,
    ));
    let argv: Vec<String> = ["closure", "L(A, B)", "deps.txt", "L(A)"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let e = run_with_budget(&argv, &files, &budget).unwrap_err();
    assert_eq!(e.code, 3);
}

/// `--metrics` must leave behind a parseable JSON document carrying the
/// right exit code for *every* failure class: domain error (1), usage
/// error (2) and resource exhaustion (3).
#[test]
fn metrics_json_is_valid_on_every_failing_exit_code() {
    let mut files = BTreeMap::new();
    files.insert("deps.txt".to_string(), "L(A) -> L(B)\n".to_string());
    let cases: &[(&[&str], i32)] = &[
        // refutable dependency rendered as a decision on a malformed target: domain error
        (&["decide", "L(A, B)", "deps.txt", "not a dependency"], 1),
        // unknown command: usage error
        (&["frobnicate", "L(A, B)"], 2),
        // pre-expired deadline: resource exhaustion
        (
            &["closure", "L(A, B)", "deps.txt", "L(A)", "--timeout", "0"],
            3,
        ),
    ];
    for (argv, want) in cases {
        let rw = RwFiles {
            inner: MemFiles(files.clone()),
            written: std::cell::RefCell::new(BTreeMap::new()),
        };
        let mut argv: Vec<String> = argv.iter().map(|s| (*s).to_string()).collect();
        argv.extend(["--metrics", "m.json"].iter().map(|s| (*s).to_string()));
        let e = run(&argv, &rw).unwrap_err();
        assert_eq!(e.code, *want, "{argv:?}: {}", e.message);
        let written = rw.written.borrow();
        let doc = written
            .get("m.json")
            .unwrap_or_else(|| panic!("no metrics file written for exit code {want} ({argv:?})"));
        let parsed = nalist::lint::json::parse(doc)
            .unwrap_or_else(|err| panic!("invalid metrics JSON on exit {want}: {err}\n{doc}"));
        assert_eq!(
            parsed.get("exit_code").and_then(|v| v.as_usize()),
            Some(usize::try_from(*want).unwrap()),
            "exit code {want} not recorded in metrics JSON"
        );
    }
}

#[test]
fn injected_chase_fault_is_exit_code_3() {
    let mut files = BTreeMap::new();
    files.insert("deps.txt".to_string(), "L(A) ->> L(B)\n".to_string());
    files.insert("data.txt".to_string(), "(a, b, c)\n".to_string());
    let files = MemFiles(files);
    let budget = Budget::unlimited()
        .with_failpoint(FailPoint::every("deps::chase", FailAction::ExhaustFuel));
    let argv: Vec<String> = ["chase", "L(A, B, C)", "deps.txt", "data.txt"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let e = run_with_budget(&argv, &files, &budget).unwrap_err();
    assert_eq!(e.code, 3);
}

/// Every hostile certificate in the corpus is rejected with a
/// structured error — exit 1 (semantic), 2 (unreadable document) or 3
/// (resource) — and never a panic or a hang.
#[test]
fn hostile_certificates_are_rejected_not_fatal() {
    for (name, cert) in nalist::gen::chaos::hostile_certificates() {
        let mut files = BTreeMap::new();
        files.insert("deps.txt".to_string(), "L(A) -> L(B)\n".to_string());
        files.insert("cert.json".to_string(), cert);
        let files = MemFiles(files);
        let argv: Vec<String> = [
            "check",
            "L(A, B)",
            "deps.txt",
            "cert.json",
            "--timeout",
            "2000",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        let (code, elapsed) = invoke(&argv, &files);
        assert!(
            (1..=3).contains(&code),
            "{name}: expected rejection, got exit code {code}"
        );
        assert!(
            elapsed < Duration::from_millis(2 * TIMEOUT_MS + 250),
            "{name}: took {elapsed:?}"
        );
    }
}

/// Seeds a valid snapshot/WAL pair on the real filesystem (snapshot and
/// WAL files are binary and bypass the [`Files`] seam) and returns
/// `(dir, snapshot bytes, wal bytes)`. The journal's last record is a
/// remove, so the duplicate-record corpus case exercises the
/// replay-rejection path.
fn seed_durability_pair(tag: &str) -> (std::path::PathBuf, Vec<u8>, Vec<u8>) {
    let dir = std::env::temp_dir().join(format!("nalist_chaos_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("base.snap");
    let wal_path = dir.join("base.wal");
    let mut files = BTreeMap::new();
    files.insert("deps.txt".to_string(), String::new());
    files.insert(
        "edits.txt".to_string(),
        "+ L(A) -> L(B)\n+ L(B) ->> L(C)\n? L(A) ->> L(C)\n- L(A) -> L(B)\n".to_string(),
    );
    let files = MemFiles(files);
    let (code, _) = invoke(
        &[
            "snapshot".to_string(),
            "L(A, B, C)".to_string(),
            "deps.txt".to_string(),
            snap_path.to_str().unwrap().to_string(),
        ],
        &files,
    );
    assert_eq!(code, 0, "seed snapshot failed");
    let (code, _) = invoke(
        &[
            "replay".to_string(),
            "L(A, B, C)".to_string(),
            "edits.txt".to_string(),
            "--wal".to_string(),
            wal_path.to_str().unwrap().to_string(),
        ],
        &files,
    );
    assert_eq!(code, 0, "seed journal failed");
    let snap = std::fs::read(&snap_path).unwrap();
    let wal = std::fs::read(&wal_path).unwrap();
    (dir, snap, wal)
}

/// Every mangled snapshot/WAL pair in the durability corpus yields a
/// structured outcome within the contract's exit-code set — detected
/// corruption (2), a reported torn-tail recovery (0), or a replay
/// rejection (1) — never a panic, a hang, or a code outside 0..=3.
#[test]
fn durability_corpus_exit_code_contract() {
    let (dir, snap, wal) = seed_durability_pair("dur");
    let files = MemFiles(BTreeMap::new());
    for case in durability_corpus(&snap, &wal) {
        let s = dir.join(format!("{}.snap", case.name));
        std::fs::write(&s, &case.snapshot).unwrap();
        let mut cmd = vec!["recover".to_string(), s.to_str().unwrap().to_string()];
        if let Some(wal_bytes) = &case.wal {
            let w = dir.join(format!("{}.wal", case.name));
            std::fs::write(&w, wal_bytes).unwrap();
            cmd.push("--wal".to_string());
            cmd.push(w.to_str().unwrap().to_string());
        }
        cmd.extend(["--timeout".to_string(), TIMEOUT_MS.to_string()]);
        let (code, elapsed) = invoke(&cmd, &files);
        assert!(
            case.expect.contains(&code),
            "case {}: exit code {code}, expected one of {:?}",
            case.name,
            case.expect
        );
        assert!(
            elapsed < Duration::from_millis(2 * TIMEOUT_MS + 250),
            "case {}: took {elapsed:?}",
            case.name
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash injected mid-journaling (panic at the `store::append` fail
/// point, as the crash-recovery CI job does to the release binary via
/// `NALIST_FAILPOINT`) leaves a prefix-consistent journal that recovery
/// accepts without error.
#[test]
fn crash_mid_append_leaves_a_recoverable_journal() {
    let dir = std::env::temp_dir().join(format!("nalist_chaos_crash_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("base.snap");
    let wal_path = dir.join("crash.wal");
    let mut mem = BTreeMap::new();
    mem.insert("deps.txt".to_string(), String::new());
    mem.insert(
        "edits.txt".to_string(),
        "+ L(A) -> L(B)\n+ L(B) ->> L(C)\n? L(A) ->> L(C)\n".to_string(),
    );
    let files = MemFiles(mem);
    let (code, _) = invoke(
        &[
            "snapshot".to_string(),
            "L(A, B, C)".to_string(),
            "deps.txt".to_string(),
            snap_path.to_str().unwrap().to_string(),
        ],
        &files,
    );
    assert_eq!(code, 0);
    // crash on the 3rd append: header + first add commit, the second
    // add never reaches the log
    let argv = vec![
        "replay".to_string(),
        "L(A, B, C)".to_string(),
        "edits.txt".to_string(),
        "--wal".to_string(),
        wal_path.to_str().unwrap().to_string(),
    ];
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        run_with_failpoints(
            &argv,
            &files,
            vec![FailPoint::nth("store::append", 2, FailAction::Panic)],
        )
    }));
    assert!(crashed.is_err(), "injected panic did not fire");
    let (code, _) = invoke(
        &[
            "recover".to_string(),
            snap_path.to_str().unwrap().to_string(),
            "--wal".to_string(),
            wal_path.to_str().unwrap().to_string(),
        ],
        &files,
    );
    assert_eq!(code, 0, "committed journal prefix must recover cleanly");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The universal certificate really is universally accepted: emit-check
/// round trip through the CLI for a handful of well-formed schemas.
#[test]
fn universal_certificate_is_accepted_for_wellformed_schemas() {
    for (schema, deps) in [
        ("L(A, B)", "L(A) -> L(B)\n"),
        ("Pubcrawl(Person, Visit[Drink(Beer, Pub)])", ""),
        ("L(A, B, C)", "# comment\nL(A) ->> L(B)\n"),
    ] {
        let mut files = BTreeMap::new();
        files.insert("deps.txt".to_string(), deps.to_string());
        files.insert(
            "cert.json".to_string(),
            nalist::gen::chaos::universal_certificate(schema, deps),
        );
        let files = MemFiles(files);
        let argv: Vec<String> = ["check", schema, "deps.txt", "cert.json"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let (code, _) = invoke(&argv, &files);
        assert_eq!(code, 0, "{schema}: universal certificate rejected");
    }
}
