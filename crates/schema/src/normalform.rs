//! Normal-form checking for nested schemas — the generalisation of fourth
//! normal form the paper's conclusion motivates ("We would like to
//! generalise the fourth normal form on the basis of several type
//! systems").
//!
//! A schema `(N, Σ)` is in **4NF (with lists)** when every *given*
//! dependency `σ ∈ Σ` is either trivial (Lemma 4.3) or has a superkey
//! left-hand side (`lhs⁺ = N`). As in the relational case this criterion
//! is checked over the supplied `Σ` (checking all of `Σ⁺` is equivalent
//! for 4NF because a violating implied MVD yields a violating given one
//! after closure-based analysis; we follow the textbook formulation).
//! The corresponding FD-only condition is the BCNF generalisation.

use nalist_algebra::Algebra;
use nalist_deps::{CompiledDep, DepKind};
use nalist_membership::closure::closure_and_basis;

/// A normal-form violation: dependency index plus diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index into `Σ`.
    pub index: usize,
    /// Human-readable diagnosis (rendered dependency and closure).
    pub reason: String,
}

/// Checks the 4NF-with-lists criterion; returns all violations.
pub fn fourth_nf_violations(alg: &Algebra, sigma: &[CompiledDep]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, d) in sigma.iter().enumerate() {
        if d.is_trivial(alg) {
            continue;
        }
        let closure = closure_and_basis(alg, sigma, &d.lhs).closure;
        if closure != alg.top_set() {
            out.push(Violation {
                index: i,
                reason: format!(
                    "{} is non-trivial and its LHS is not a superkey (LHS+ = {})",
                    d.render(alg),
                    alg.render(&closure)
                ),
            });
        }
    }
    out
}

/// Is `(N, Σ)` in 4NF-with-lists?
pub fn is_fourth_nf(alg: &Algebra, sigma: &[CompiledDep]) -> bool {
    fourth_nf_violations(alg, sigma).is_empty()
}

/// BCNF-with-lists: the same criterion restricted to the FDs of `Σ`
/// (MVDs are ignored when checking, but still participate in closures).
pub fn bcnf_violations(alg: &Algebra, sigma: &[CompiledDep]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, d) in sigma.iter().enumerate() {
        if d.kind != DepKind::Fd || d.is_trivial(alg) {
            continue;
        }
        let closure = closure_and_basis(alg, sigma, &d.lhs).closure;
        if closure != alg.top_set() {
            out.push(Violation {
                index: i,
                reason: format!(
                    "FD {} is non-trivial and its LHS is not a superkey",
                    d.render(alg)
                ),
            });
        }
    }
    out
}

/// Is `(N, Σ)` in BCNF-with-lists?
pub fn is_bcnf(alg: &Algebra, sigma: &[CompiledDep]) -> bool {
    bcnf_violations(alg, sigma).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_deps::Dependency;
    use nalist_types::parser::parse_attr;

    fn setup(attr: &str, deps: &[&str]) -> (Algebra, Vec<CompiledDep>) {
        let n = parse_attr(attr).unwrap();
        let alg = Algebra::new(&n);
        let sigma = deps
            .iter()
            .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
            .collect();
        (alg, sigma)
    }

    #[test]
    fn key_based_schema_is_4nf() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) -> L(B, C)"]);
        assert!(is_fourth_nf(&alg, &sigma));
        assert!(is_bcnf(&alg, &sigma));
    }

    #[test]
    fn pubcrawl_mvd_violates_4nf() {
        let (alg, sigma) = setup(
            "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
            &["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
        );
        let v = fourth_nf_violations(&alg, &sigma);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 0);
        assert!(v[0].reason.contains("not a superkey"));
        // BCNF ignores the MVD
        assert!(is_bcnf(&alg, &sigma));
    }

    #[test]
    fn trivial_dependencies_never_violate() {
        let (alg, sigma) = setup(
            "L(A, B)",
            &["L(A, B) -> L(A)", "L(A) ->> L(B)"], // both trivial
        );
        assert!(is_fourth_nf(&alg, &sigma));
    }

    #[test]
    fn fd_violation_detected_by_both() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) -> L(B)"]);
        assert!(!is_fourth_nf(&alg, &sigma));
        assert!(!is_bcnf(&alg, &sigma));
        assert_eq!(bcnf_violations(&alg, &sigma).len(), 1);
    }

    #[test]
    fn mvds_still_feed_closures_for_bcnf() {
        // FD whose LHS becomes a superkey only through MVD interaction:
        // A ↠ B and C → B coalesce, helping A's closure.
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) -> L(C)", "L(A) ->> L(B)"]);
        // A+ includes C directly; B via complementation/coalescence-like
        // reasoning? Check through the decision procedure itself:
        let a_plus =
            nalist_membership::closure::closure_and_basis(&alg, &sigma, &sigma[0].lhs).closure;
        // A -> C and A ->> B: with C determined, block {B} splits and B is
        // not functionally determined — A is not a superkey, so the FD
        // violates BCNF.
        assert!(a_plus != alg.top_set());
        assert!(!is_bcnf(&alg, &sigma));
    }
}
