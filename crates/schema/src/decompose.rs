//! Lossless decomposition driven by MVDs (Theorem 4.4): an instance
//! satisfying `X ↠ Y` is exactly the generalised join of its projections
//! onto `X ⊔ Y` and `X ⊔ Y^C`.
//!
//! [`binary_split`] computes the two component attributes for a
//! dependency; [`decompose_4nf`] repeatedly splits on 4NF violations
//! until every component is violation-free (each split is guaranteed
//! lossless by Theorem 4.4); [`verify_lossless`] checks a decomposition
//! against a concrete instance.

use nalist_algebra::{Algebra, AtomSet};
use nalist_deps::join::generalized_join;
use nalist_deps::{CompiledDep, DepKind, Instance};
use nalist_membership::closure::closure_and_basis;
use nalist_types::attr::NestedAttr;
use nalist_types::error::TypeError;

/// One component of a decomposition: the component attribute together
/// with the dependencies of `Σ` that transfer to it syntactically (both
/// sides below the component).
#[derive(Debug, Clone)]
pub struct Component {
    /// The component attribute (a subattribute of the original `N`).
    pub attr: NestedAttr,
    /// Its atom set in the original algebra.
    pub atoms: AtomSet,
    /// Dependencies of `Σ` whose both sides lie within the component.
    pub local_deps: Vec<CompiledDep>,
}

/// Splits `N` along a dependency `X → Y` / `X ↠ Y` into
/// `X ⊔ Y` and `X ⊔ Y^C` (the Theorem 4.4 decomposition).
pub fn binary_split(alg: &Algebra, dep: &CompiledDep) -> (AtomSet, AtomSet) {
    let left = alg.join(&dep.lhs, &dep.rhs);
    let right = alg.join(&dep.lhs, &alg.compl(&dep.rhs));
    (left, right)
}

/// Verifies on a concrete instance that projecting `r` onto the component
/// atom sets and re-joining reproduces `r` (the operational content of
/// Theorem 4.4).
pub fn verify_lossless(
    alg: &Algebra,
    r: &Instance,
    components: &[AtomSet],
) -> Result<bool, TypeError> {
    assert!(!components.is_empty(), "need at least one component");
    let mut acc = r.project(&alg.to_attr(&components[0]))?;
    for c in &components[1..] {
        let p = r.project(&alg.to_attr(c))?;
        acc = generalized_join(&acc, &p)?;
    }
    // compare against r projected onto the union of components
    let mut union = alg.bottom_set();
    for c in components {
        union.union_with(c);
    }
    let target = r.project(&alg.to_attr(&union))?;
    Ok(acc == target)
}

/// Dependencies of `Σ` that transfer to a component syntactically: both
/// sides below the component attribute (their validity in the projection
/// follows from validity in `r`).
fn local_deps(alg: &Algebra, sigma: &[CompiledDep], component: &AtomSet) -> Vec<CompiledDep> {
    sigma
        .iter()
        .filter(|d| alg.le(&d.lhs, component) && alg.le(&d.rhs, component))
        .cloned()
        .collect()
}

/// Recursively decomposes `(N, Σ)` into 4NF-with-lists components by
/// splitting on violating dependencies (Theorem 4.4 guarantees each split
/// is lossless). Dependencies are propagated *syntactically*: a component
/// keeps the members of `Σ` fully contained in it. As in the relational
/// case this may under-approximate the projected dependency set (implied
/// dependencies straddling the split can be lost — dependency
/// preservation is not guaranteed by 4NF decomposition).
///
/// `max_components` bounds the recursion as a safety valve.
pub fn decompose_4nf(
    alg: &Algebra,
    sigma: &[CompiledDep],
    max_components: usize,
) -> Vec<Component> {
    let mut work: Vec<(AtomSet, Vec<CompiledDep>)> = vec![(alg.top_set(), sigma.to_vec())];
    let mut done: Vec<Component> = Vec::new();
    while let Some((atoms, deps)) = work.pop() {
        if done.len() + work.len() + 1 >= max_components {
            done.push(component(alg, atoms, deps));
            continue;
        }
        // find a violating dependency *within this component*
        let violating = deps.iter().position(|d| {
            !d.is_trivial_within(alg, &atoms)
                && closure_and_basis(alg, &deps, &d.lhs)
                    .closure
                    .intersect(&atoms)
                    != atoms
        });
        match violating {
            None => done.push(component(alg, atoms, deps)),
            Some(i) => {
                let d = &deps[i];
                let (l, r) = binary_split(alg, d);
                let l = l.intersect(&atoms);
                let r = r.intersect(&atoms);
                if l == atoms || r == atoms {
                    // split does not reduce the component; stop here
                    done.push(component(alg, atoms, deps));
                    continue;
                }
                let dl = local_deps(alg, &deps, &l);
                let dr = local_deps(alg, &deps, &r);
                work.push((l, dl));
                work.push((r, dr));
            }
        }
    }
    done.sort_by(|a, b| a.atoms.cmp(&b.atoms));
    done
}

fn component(alg: &Algebra, atoms: AtomSet, deps: Vec<CompiledDep>) -> Component {
    Component {
        attr: alg.to_attr(&atoms),
        atoms,
        local_deps: deps,
    }
}

/// Dependency preservation: does the union of the components' local
/// dependency sets still imply every member of the original `Σ`?
/// Returns the indices of the *lost* dependencies (empty = preserving).
///
/// As in the relational theory, 4NF decomposition is lossless but not
/// necessarily dependency-preserving; this check makes the trade-off
/// visible to the designer.
pub fn lost_dependencies(
    alg: &Algebra,
    sigma: &[CompiledDep],
    components: &[Component],
) -> Vec<usize> {
    let pooled: Vec<CompiledDep> = components
        .iter()
        .flat_map(|c| c.local_deps.iter().cloned())
        .collect();
    (0..sigma.len())
        .filter(|&i| !nalist_membership::implies(alg, &pooled, &sigma[i]))
        .collect()
}

/// Is the decomposition dependency-preserving?
pub fn is_dependency_preserving(
    alg: &Algebra,
    sigma: &[CompiledDep],
    components: &[Component],
) -> bool {
    lost_dependencies(alg, sigma, components).is_empty()
}

trait TrivialWithin {
    fn is_trivial_within(&self, alg: &Algebra, component: &AtomSet) -> bool;
}

impl TrivialWithin for CompiledDep {
    /// Lemma 4.3 relativised to a component `M`: `Y ≤ X`, or (for MVDs)
    /// `X ⊔ Y ⊇ M`.
    fn is_trivial_within(&self, alg: &Algebra, component: &AtomSet) -> bool {
        let rhs_in = self.rhs.intersect(component);
        if alg.le(&rhs_in, &self.lhs) {
            return true;
        }
        match self.kind {
            DepKind::Fd => false,
            DepKind::Mvd => component.is_subset(&alg.join(&self.lhs, &self.rhs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_deps::Dependency;
    use nalist_types::parser::parse_attr;

    fn setup(attr: &str, deps: &[&str]) -> (Algebra, Vec<CompiledDep>) {
        let n = parse_attr(attr).unwrap();
        let alg = Algebra::new(&n);
        let sigma = deps
            .iter()
            .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
            .collect();
        (alg, sigma)
    }

    #[test]
    fn pubcrawl_splits_into_beer_and_pub_sides() {
        let (alg, sigma) = setup(
            "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
            &["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
        );
        let (l, r) = binary_split(&alg, &sigma[0]);
        assert_eq!(alg.render(&l), "Pubcrawl(Person, Visit[Drink(Pub)])");
        assert_eq!(alg.render(&r), "Pubcrawl(Person, Visit[Drink(Beer)])");
    }

    #[test]
    fn lossless_verified_on_pubcrawl_instance() {
        let (alg, sigma) = setup(
            "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
            &["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
        );
        let r = Instance::from_strs(
            alg.attr().clone(),
            &[
                "(Sven, [(Lübzer, Deanos), (Kindl, Highflyers)])",
                "(Sven, [(Kindl, Deanos), (Lübzer, Highflyers)])",
                "(Sebastian, [])",
            ],
        )
        .unwrap();
        let (l, rr) = binary_split(&alg, &sigma[0]);
        assert!(verify_lossless(&alg, &r, &[l, rr]).unwrap());
    }

    #[test]
    fn lossy_components_detected() {
        let (alg, _) = setup("L(A, B, C)", &[]);
        let r = Instance::from_strs(alg.attr().clone(), &["(a, b1, c1)", "(a, b2, c2)"]).unwrap();
        // splitting B from C without an MVD loses information
        let n = alg.attr().clone();
        let ab = alg
            .from_attr(&nalist_types::parser::parse_subattr_of(&n, "L(A, B)").unwrap())
            .unwrap();
        let ac = alg
            .from_attr(&nalist_types::parser::parse_subattr_of(&n, "L(A, C)").unwrap())
            .unwrap();
        assert!(!verify_lossless(&alg, &r, &[ab, ac]).unwrap());
    }

    #[test]
    fn decompose_until_4nf() {
        let (alg, sigma) = setup(
            "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
            &["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
        );
        let comps = decompose_4nf(&alg, &sigma, 8);
        assert_eq!(comps.len(), 2);
        let names: Vec<String> = comps.iter().map(|c| alg.render(&c.atoms)).collect();
        assert!(names.contains(&"Pubcrawl(Person, Visit[Drink(Pub)])".to_string()));
        assert!(names.contains(&"Pubcrawl(Person, Visit[Drink(Beer)])".to_string()));
    }

    #[test]
    fn already_4nf_stays_whole() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) -> L(B, C)"]);
        let comps = decompose_4nf(&alg, &sigma, 8);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].atoms, alg.top_set());
        assert_eq!(comps[0].local_deps.len(), 1);
    }

    #[test]
    fn dependency_preservation_detected() {
        // preserving case: the split components keep their dependencies
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) ->> L(B)"]);
        let comps = decompose_4nf(&alg, &sigma, 8);
        assert!(is_dependency_preserving(&alg, &sigma, &comps));

        // lossy case: the classic B → C straddling a split on A ↠ B
        let (alg2, sigma2) = setup("L(A, B, C)", &["L(A) ->> L(B)", "L(B) -> L(C)"]);
        let d = &sigma2[0];
        let (l, r) = binary_split(&alg2, d);
        let comps2 = vec![
            component(&alg2, l.clone(), local_deps(&alg2, &sigma2, &l)),
            component(&alg2, r.clone(), local_deps(&alg2, &sigma2, &r)),
        ];
        // B → C has B in one component and C in the other: lost
        let lost = lost_dependencies(&alg2, &sigma2, &comps2);
        assert_eq!(lost, vec![1]);
        assert!(!is_dependency_preserving(&alg2, &sigma2, &comps2));
    }

    #[test]
    fn relational_textbook_example() {
        // R(A, B, C): A ↠ B splits into (A, B) and (A, C).
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) ->> L(B)"]);
        let comps = decompose_4nf(&alg, &sigma, 8);
        assert_eq!(comps.len(), 2);
        // verify the split is lossless on a satisfying instance
        let r = Instance::from_strs(
            alg.attr().clone(),
            &["(a, b1, c1)", "(a, b1, c2)", "(a, b2, c1)", "(a, b2, c2)"],
        )
        .unwrap();
        let atom_sets: Vec<AtomSet> = comps.iter().map(|c| c.atoms.clone()).collect();
        assert!(verify_lossless(&alg, &r, &atom_sets).unwrap());
    }
}
