//! # nalist-schema
//!
//! Schema-design applications built on the membership algorithm — the
//! use cases the paper's introduction motivates ("deciding the
//! equivalence of two sets of dependencies or the redundancy of a given
//! set … a significant step towards automated database schema design"):
//!
//! * [`cover`] — Σ-equivalence, redundancy detection, non-redundant and
//!   minimal covers;
//! * [`keys`] — superkeys, candidate keys, key minimisation;
//! * [`normalform`] — 4NF-with-lists and BCNF-with-lists checking;
//! * [`decompose`] — lossless binary splits along MVDs (Theorem 4.4),
//!   recursive 4NF decomposition, and instance-level losslessness
//!   verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod decompose;
pub mod keys;
pub mod normalform;

pub use cover::{equivalent, minimal_cover, nonredundant_cover, redundant_indices};
pub use decompose::{
    binary_split, decompose_4nf, is_dependency_preserving, lost_dependencies, verify_lossless,
    Component,
};
pub use keys::{candidate_keys, is_candidate_key, is_superkey, minimize_superkey};
pub use normalform::{is_bcnf, is_fourth_nf, Violation};
