//! Candidate keys for nested schemas: subattributes `X` whose closure is
//! the whole attribute (`X⁺ = N`) and that are minimal with this property.

use nalist_algebra::{Algebra, AtomSet};
use nalist_deps::CompiledDep;
use nalist_membership::closure::closure_and_basis;

/// Is `X` a superkey (`X⁺ = N`)?
pub fn is_superkey(alg: &Algebra, sigma: &[CompiledDep], x: &AtomSet) -> bool {
    closure_and_basis(alg, sigma, x).closure == alg.top_set()
}

/// Is `X` a candidate key (a superkey none of whose proper subattributes
/// is a superkey)?
pub fn is_candidate_key(alg: &Algebra, sigma: &[CompiledDep], x: &AtomSet) -> bool {
    if !is_superkey(alg, sigma, x) {
        return false;
    }
    shrink_steps(alg, x)
        .into_iter()
        .all(|smaller| !is_superkey(alg, sigma, &smaller))
}

/// All downward-closed sets obtained by removing one maximal-within-`x`
/// atom (the lattice's lower covers of `x`).
fn shrink_steps(alg: &Algebra, x: &AtomSet) -> Vec<AtomSet> {
    x.iter()
        .filter(|&a| alg.atom(a).above.iter().all(|b| b == a || !x.contains(b)))
        .map(|a| {
            let mut s = x.clone();
            s.remove(a);
            s
        })
        .collect()
}

/// Greedily minimises a superkey to a candidate key (deterministic:
/// always drops the highest-numbered droppable atom first).
pub fn minimize_superkey(alg: &Algebra, sigma: &[CompiledDep], x: &AtomSet) -> AtomSet {
    assert!(
        is_superkey(alg, sigma, x),
        "minimize_superkey requires a superkey"
    );
    let mut key = x.clone();
    loop {
        let mut shrunk = false;
        let mut steps = shrink_steps(alg, &key);
        steps.reverse();
        for smaller in steps {
            if is_superkey(alg, sigma, &smaller) {
                key = smaller;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return key;
        }
    }
}

/// Enumerates candidate keys by breadth-first search downward from `N`,
/// capped at `limit` results (the number of candidate keys can be
/// exponential). Results are deterministic and duplicate-free.
pub fn candidate_keys(alg: &Algebra, sigma: &[CompiledDep], limit: usize) -> Vec<AtomSet> {
    use std::collections::BTreeSet;
    let mut keys: Vec<AtomSet> = Vec::new();
    let mut visited: BTreeSet<AtomSet> = BTreeSet::new();
    let mut frontier: Vec<AtomSet> = vec![alg.top_set()];
    visited.insert(alg.top_set());
    while let Some(x) = frontier.pop() {
        if keys.len() >= limit {
            break;
        }
        if !is_superkey(alg, sigma, &x) {
            continue;
        }
        let smaller_superkeys: Vec<AtomSet> = shrink_steps(alg, &x)
            .into_iter()
            .filter(|s| is_superkey(alg, sigma, s))
            .collect();
        if smaller_superkeys.is_empty() {
            if !keys.contains(&x) {
                keys.push(x);
            }
        } else {
            for s in smaller_superkeys {
                if visited.insert(s.clone()) {
                    frontier.push(s);
                }
            }
        }
    }
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_deps::Dependency;
    use nalist_types::parser::{parse_attr, parse_subattr_of};

    fn setup(attr: &str, deps: &[&str]) -> (Algebra, Vec<CompiledDep>) {
        let n = parse_attr(attr).unwrap();
        let alg = Algebra::new(&n);
        let sigma = deps
            .iter()
            .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
            .collect();
        (alg, sigma)
    }

    fn sub(alg: &Algebra, s: &str) -> AtomSet {
        alg.from_attr(&parse_subattr_of(alg.attr(), s).unwrap())
            .unwrap()
    }

    #[test]
    fn simple_key() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) -> L(B, C)"]);
        let a = sub(&alg, "L(A)");
        assert!(is_superkey(&alg, &sigma, &a));
        assert!(is_candidate_key(&alg, &sigma, &a));
        assert!(is_superkey(&alg, &sigma, &alg.top_set()));
        assert!(!is_candidate_key(&alg, &sigma, &alg.top_set()));
        let keys = candidate_keys(&alg, &sigma, 10);
        assert_eq!(keys, vec![a]);
    }

    #[test]
    fn two_candidate_keys() {
        let (alg, sigma) = setup("L(A, B)", &["L(A) -> L(B)", "L(B) -> L(A)"]);
        let keys = candidate_keys(&alg, &sigma, 10);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&sub(&alg, "L(A)")));
        assert!(keys.contains(&sub(&alg, "L(B)")));
    }

    #[test]
    fn minimize_superkey_reaches_key() {
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) -> L(B)", "L(B) -> L(C)"]);
        let key = minimize_superkey(&alg, &sigma, &alg.top_set());
        assert_eq!(alg.render(&key), "L(A)");
        assert!(is_candidate_key(&alg, &sigma, &key));
    }

    #[test]
    fn list_shape_key() {
        // Person ↠ Pub-list plus shape FDs do not make Person a key, but
        // Person ⊔ full visit list is one.
        let n = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";
        let (alg, sigma) = setup(n, &["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]);
        let person = sub(&alg, "Pubcrawl(Person)");
        assert!(!is_superkey(&alg, &sigma, &person));
        assert!(is_superkey(&alg, &sigma, &alg.top_set()));
        let keys = candidate_keys(&alg, &sigma, 10);
        assert!(!keys.is_empty());
        for k in &keys {
            assert!(is_candidate_key(&alg, &sigma, k));
        }
    }

    #[test]
    fn key_enumeration_complete_vs_bruteforce() {
        // on small algebras, candidate_keys must find exactly the minimal
        // superkeys a brute-force scan over all of Sub(N) finds
        for (attr, deps) in [
            ("L(A, B, C)", vec!["L(A) -> L(B)", "L(B) -> L(A)"]),
            ("L(A, M[B])", vec!["L(A) -> L(M[B])"]),
            ("K[L(M[A], B)]", vec!["K[L(B)] -> K[L(M[A])]"]),
            ("L(A, B, C)", vec!["L(A) ->> L(B)"]),
        ] {
            let (alg, sigma) = setup(attr, &deps);
            let found = candidate_keys(&alg, &sigma, 64);
            let mut brute: Vec<AtomSet> = Vec::new();
            let elements = nalist_algebra::lattice::enumerate_sets(&alg);
            for x in &elements {
                if !is_superkey(&alg, &sigma, x) {
                    continue;
                }
                let minimal = elements
                    .iter()
                    .filter(|y| alg.le(y, x) && **y != *x)
                    .all(|y| !is_superkey(&alg, &sigma, y));
                if minimal {
                    brute.push(x.clone());
                }
            }
            brute.sort();
            assert_eq!(found, brute, "{attr} with {deps:?}");
        }
    }

    #[test]
    fn key_with_no_dependencies_is_top() {
        let (alg, sigma) = setup("L(A, B)", &[]);
        let keys = candidate_keys(&alg, &sigma, 10);
        assert_eq!(keys, vec![alg.top_set()]);
    }
}
