//! Schema-design applications of the membership algorithm (Section 1.3 of
//! the paper): equivalence of dependency sets, redundancy, and minimal
//! covers.
//!
//! "Such an algorithm for deciding implication of dependencies can be used
//! to decide the equivalence of two sets of dependencies or the redundancy
//! of a given set of dependencies. This is considered a significant step
//! towards automated database schema design."

use nalist_algebra::{Algebra, AtomSet};
use nalist_deps::CompiledDep;
use nalist_membership::implies;

/// Does `Σ1 ⊨ σ` for every `σ ∈ Σ2`?
pub fn covers(alg: &Algebra, sigma1: &[CompiledDep], sigma2: &[CompiledDep]) -> bool {
    sigma2.iter().all(|d| implies(alg, sigma1, d))
}

/// Are `Σ1` and `Σ2` equivalent (`Σ1⁺ = Σ2⁺`)?
pub fn equivalent(alg: &Algebra, sigma1: &[CompiledDep], sigma2: &[CompiledDep]) -> bool {
    covers(alg, sigma1, sigma2) && covers(alg, sigma2, sigma1)
}

/// Is `sigma[i]` redundant, i.e. implied by the remaining dependencies?
pub fn is_redundant(alg: &Algebra, sigma: &[CompiledDep], i: usize) -> bool {
    let rest: Vec<CompiledDep> = sigma
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(_, d)| d.clone())
        .collect();
    implies(alg, &rest, &sigma[i])
}

/// Indices of all redundant members (each tested against the full rest).
pub fn redundant_indices(alg: &Algebra, sigma: &[CompiledDep]) -> Vec<usize> {
    (0..sigma.len())
        .filter(|&i| is_redundant(alg, sigma, i))
        .collect()
}

/// Computes a non-redundant cover: greedily removes dependencies that are
/// implied by the rest. The result is equivalent to the input and contains
/// no redundant member.
pub fn nonredundant_cover(alg: &Algebra, sigma: &[CompiledDep]) -> Vec<CompiledDep> {
    let mut cover: Vec<CompiledDep> = sigma.to_vec();
    let mut i = 0;
    while i < cover.len() {
        let candidate: Vec<CompiledDep> = cover
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, d)| d.clone())
            .collect();
        if implies(alg, &candidate, &cover[i]) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
    cover
}

/// Left-reduces a dependency: repeatedly drops maximal-within-`X` atoms
/// from the LHS while `Σ` still implies the reduced dependency. Returns
/// the reduced LHS (a minimal one, not necessarily the global minimum).
pub fn reduce_lhs(alg: &Algebra, sigma: &[CompiledDep], dep: &CompiledDep) -> AtomSet {
    let mut lhs = dep.lhs.clone();
    loop {
        let mut shrunk = false;
        // candidates: atoms of lhs with nothing of lhs strictly above them
        let candidates: Vec<usize> = lhs
            .iter()
            .filter(|&a| alg.atom(a).above.iter().all(|b| b == a || !lhs.contains(b)))
            .collect();
        for a in candidates {
            let mut smaller = lhs.clone();
            smaller.remove(a);
            debug_assert!(alg.is_downward_closed(&smaller));
            let reduced = CompiledDep {
                kind: dep.kind,
                lhs: smaller.clone(),
                rhs: dep.rhs.clone(),
            };
            if implies(alg, sigma, &reduced) {
                lhs = smaller;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return lhs;
        }
    }
}

/// A minimal cover: left-reduce every member, then remove redundancy.
/// The result is equivalent to the input.
pub fn minimal_cover(alg: &Algebra, sigma: &[CompiledDep]) -> Vec<CompiledDep> {
    let reduced: Vec<CompiledDep> = sigma
        .iter()
        .map(|d| CompiledDep {
            kind: d.kind,
            lhs: reduce_lhs(alg, sigma, d),
            rhs: d.rhs.clone(),
        })
        .collect();
    nonredundant_cover(alg, &reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_deps::Dependency;
    use nalist_types::parser::parse_attr;

    fn setup(attr: &str, deps: &[&str]) -> (Algebra, Vec<CompiledDep>) {
        let n = parse_attr(attr).unwrap();
        let alg = Algebra::new(&n);
        let sigma = deps
            .iter()
            .map(|s| Dependency::parse(&n, s).unwrap().compile(&alg).unwrap())
            .collect();
        (alg, sigma)
    }

    #[test]
    fn transitive_fd_is_redundant() {
        let (alg, sigma) = setup(
            "L(A, B, C)",
            &["L(A) -> L(B)", "L(B) -> L(C)", "L(A) -> L(C)"],
        );
        assert_eq!(redundant_indices(&alg, &sigma), vec![2]);
        let cover = nonredundant_cover(&alg, &sigma);
        assert_eq!(cover.len(), 2);
        assert!(equivalent(&alg, &cover, &sigma));
    }

    #[test]
    fn equivalence_detects_difference() {
        let (alg, s1) = setup("L(A, B, C)", &["L(A) -> L(B, C)"]);
        let (_, s2) = setup("L(A, B, C)", &["L(A) -> L(B)", "L(A) -> L(C)"]);
        assert!(equivalent(&alg, &s1, &s2));
        let (_, s3) = setup("L(A, B, C)", &["L(A) -> L(B)"]);
        assert!(!equivalent(&alg, &s1, &s3));
        assert!(covers(&alg, &s1, &s3));
        assert!(!covers(&alg, &s3, &s1));
    }

    #[test]
    fn mvd_made_redundant_by_fd() {
        // X → Y implies X ↠ Y, so the MVD is redundant.
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) -> L(B)", "L(A) ->> L(B)"]);
        assert!(is_redundant(&alg, &sigma, 1));
        assert!(!is_redundant(&alg, &sigma, 0));
    }

    #[test]
    fn lhs_reduction() {
        // A → C makes the B part of the LHS of (A, B) → C unnecessary.
        let (alg, sigma) = setup("L(A, B, C)", &["L(A) -> L(C)", "L(A, B) -> L(C)"]);
        let reduced = reduce_lhs(&alg, &sigma, &sigma[1]);
        assert_eq!(alg.render(&reduced), "L(A)");
        let mc = minimal_cover(&alg, &sigma);
        assert_eq!(mc.len(), 1);
        assert!(equivalent(&alg, &mc, &sigma));
    }

    #[test]
    fn lhs_reduction_respects_list_structure() {
        // On N = L[M(A, B)] the LHS L[M(A, λ)] can only shed atoms that
        // keep downward closure (dropping the list atom forces dropping A).
        let n = parse_attr("L[M(A, B)]").unwrap();
        let alg = Algebra::new(&n);
        let sigma = vec![Dependency::parse(&n, "λ -> L[M(A)]")
            .unwrap()
            .compile(&alg)
            .unwrap()];
        let dep = Dependency::parse(&n, "L[M(A)] -> L[M(A)]")
            .unwrap()
            .compile(&alg)
            .unwrap();
        let reduced = reduce_lhs(&alg, &sigma, &dep);
        // λ already implies the RHS, so the LHS reduces to λ
        assert_eq!(alg.render(&reduced), "λ");
    }

    #[test]
    fn empty_sigma_cover_is_empty() {
        let (alg, sigma) = setup("L(A, B)", &[]);
        assert!(nonredundant_cover(&alg, &sigma).is_empty());
        assert!(equivalent(&alg, &sigma, &sigma));
    }

    #[test]
    fn trivial_members_are_redundant() {
        let (alg, sigma) = setup("L(A, B)", &["L(A, B) -> L(A)", "L(A) -> L(B)"]);
        let cover = nonredundant_cover(&alg, &sigma);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].render(&alg), "L(A) -> L(B)");
    }
}
