//! Golden-file tests over the fixture corpus in `tests/lint_fixtures/`.
//!
//! Each rule `LNNN` has a seeded-defect fixture:
//!
//! * `lNNN.schema` — the nested attribute the spec is written against;
//! * `lNNN_trigger.deps` — a spec that must raise `LNNN`;
//! * `lNNN_trigger.human` / `.json` — golden renderings of the report;
//! * `lNNN_near.deps` — a near-miss that must NOT raise `LNNN`
//!   (`lNNN_near.schema` overrides the schema when present).
//!
//! Regenerate the goldens with `UPDATE_GOLDENS=1 cargo test -p nalist-lint
//! --test fixtures` after an intentional output change, then review the
//! diff like any other code change.

use std::fs;
use std::path::{Path, PathBuf};

use nalist_lint::{lint_spec, lint_to_human, lint_to_json};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_fixtures")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn bless() -> bool {
    std::env::var_os("UPDATE_GOLDENS").is_some()
}

/// Compares `actual` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = fixture_dir().join(name);
    if bless() {
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = read(name);
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; rerun with UPDATE_GOLDENS=1 if intentional"
    );
}

/// The length of the caret underline on a `  | ^^^^` gutter line, if any.
fn caret_run(line: &str) -> Option<usize> {
    let t = line.trim_start().strip_prefix('|')?.trim_start();
    t.starts_with('^')
        .then(|| t.chars().take_while(|&c| c == '^').count())
}

/// Runs one rule's trigger + near-miss fixture pair.
fn check_rule(code: &str) {
    let stem = code.to_ascii_lowercase();
    let schema = read(&format!("{stem}.schema"));
    let trigger_file = format!("{stem}_trigger.deps");
    let trigger = read(&trigger_file);

    let report = lint_spec(&schema, &trigger).unwrap();
    assert!(
        report.diagnostics.iter().any(|d| d.code == code),
        "{trigger_file} must raise {code}, got {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect::<Vec<_>>()
    );
    // every span points inside the source; only point spans (e.g. the
    // "expected term" position at end of line) may carry no text
    for d in &report.diagnostics {
        assert!(d.span.end <= trigger.len(), "{code}: span out of range");
        assert!(
            !d.span.text(&trigger).is_empty() || d.span.is_empty(),
            "{code}: empty non-point span"
        );
    }

    let human = lint_to_human(&schema, &trigger, &trigger_file).unwrap();
    assert_golden(&format!("{stem}_trigger.human"), &human);
    assert!(human.contains(&format!("[{code}]")), "{human}");
    // caret-position check: the rendered block for this code underlines
    // exactly the diagnosed span (column and width counted in chars)
    assert!(human.lines().any(|l| caret_run(l).is_some()), "{human}");

    let json = lint_to_json(&schema, &trigger, &trigger_file).unwrap();
    assert_golden(&format!("{stem}_trigger.json"), &json);
    round_trip(&json, &report, &trigger_file);

    // near-miss: same shape of spec, but this rule stays quiet
    let near_schema = if fixture_dir().join(format!("{stem}_near.schema")).exists() {
        read(&format!("{stem}_near.schema"))
    } else {
        schema
    };
    let near = read(&format!("{stem}_near.deps"));
    let near_report = lint_spec(&near_schema, &near).unwrap();
    assert!(
        near_report.diagnostics.iter().all(|d| d.code != code),
        "{stem}_near.deps must not raise {code}, got {:?}",
        near_report
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect::<Vec<_>>()
    );
}

/// The JSON output round-trips through the hand-rolled parser and agrees
/// with the in-memory report, field by field.
fn round_trip(json: &str, report: &nalist_lint::LintReport, file: &str) {
    let v = nalist_lint::json::parse(json).unwrap();
    assert_eq!(v.get("file").unwrap().as_str(), Some(file));
    assert_eq!(v.get("errors").unwrap().as_usize(), Some(report.errors()));
    assert_eq!(
        v.get("warnings").unwrap().as_usize(),
        Some(report.warnings())
    );
    let arr = v.get("diagnostics").unwrap().as_arr().unwrap();
    assert_eq!(arr.len(), report.diagnostics.len());
    for (j, d) in arr.iter().zip(&report.diagnostics) {
        assert_eq!(j.get("code").unwrap().as_str(), Some(d.code));
        assert_eq!(
            j.get("severity").unwrap().as_str(),
            Some(d.severity.label())
        );
        assert_eq!(j.get("start").unwrap().as_usize(), Some(d.span.start));
        assert_eq!(j.get("end").unwrap().as_usize(), Some(d.span.end));
        assert_eq!(j.get("message").unwrap().as_str(), Some(d.message.as_str()));
        match &d.suggestion {
            Some(s) => assert_eq!(j.get("suggestion").unwrap().as_str(), Some(s.as_str())),
            None => assert!(j.get("suggestion").unwrap().as_str().is_none()),
        }
    }
}

#[test]
fn l000_syntax_error() {
    check_rule("L000");
}

#[test]
fn l001_trivial() {
    check_rule("L001");
}

#[test]
fn l002_redundant() {
    check_rule("L002");
}

#[test]
fn l003_duplicate_or_subsumed() {
    check_rule("L003");
}

#[test]
fn l004_extraneous_lhs() {
    check_rule("L004");
}

#[test]
fn l005_fd_from_mvd() {
    check_rule("L005");
}

#[test]
fn l006_non_possessed_rhs() {
    check_rule("L006");
}

#[test]
fn l007_unresolved_path() {
    check_rule("L007");
}

#[test]
fn l008_not_minimal_cover() {
    check_rule("L008");
}

#[test]
fn l009_4nf_violation() {
    check_rule("L009");
}

/// Caret lines in the human goldens sit directly under the diagnosed
/// text: for each `^^^` gutter line the run of carets must be as wide (in
/// chars) as the span text of some diagnostic on that report.
#[test]
fn caret_runs_match_span_widths() {
    for code in ["L001", "L004", "L006", "L007"] {
        let stem = code.to_ascii_lowercase();
        let schema = read(&format!("{stem}.schema"));
        let deps = read(&format!("{stem}_trigger.deps"));
        let report = lint_spec(&schema, &deps).unwrap();
        let human = lint_to_human(&schema, &deps, "f.deps").unwrap();
        let widths: Vec<usize> = report
            .diagnostics
            .iter()
            .map(|d| d.span.text(&deps).chars().count().max(1))
            .collect();
        let mut seen = 0;
        for line in human.lines() {
            if let Some(run) = caret_run(line) {
                seen += 1;
                assert!(
                    widths.contains(&run),
                    "caret run {run} not in {widths:?}\n{human}"
                );
            }
        }
        assert_eq!(
            seen,
            report.diagnostics.len(),
            "one caret line per finding\n{human}"
        );
    }
}
