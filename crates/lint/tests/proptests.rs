//! Property tests bridging the workload generators to the linter.
//!
//! Three families:
//!
//! * rewriting Σ with `minimal_cover` produces a spec that is clean of
//!   every dependency-level rule (L000–L005, L007, L008) — the fix-it
//!   printed by L008 never re-triggers the linter;
//! * the defect seeders of `nalist-gen` plant findings exactly where
//!   they claim (the appended line is blamed with the expected code);
//! * the JSON rendering round-trips through the hand-rolled parser.
//!
//! Structured inputs come from proptest-generated seeds driving the
//! deterministic generators, matching the repo-wide idiom.

use nalist_algebra::Algebra;
use nalist_deps::CompiledDep;
use nalist_gen::defects::{
    render_sigma, seed_duplicate, seed_inflated_lhs, seed_trivial, seed_weakened,
};
use nalist_gen::{attr_with_atoms, random_sigma, SigmaConfig};
use nalist_lint::{lint_spec, lint_to_json, LintReport};
use nalist_schema::minimal_cover;
use nalist_types::NestedAttr;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rules that speak about individual dependencies (as opposed to the
/// schema-design rules L006/L009, which legitimately survive rewriting).
const DEP_LEVEL: [&str; 8] = [
    "L000", "L001", "L002", "L003", "L004", "L005", "L007", "L008",
];

fn setup(seed: u64) -> (StdRng, NestedAttr, Algebra, Vec<CompiledDep>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let atoms = rng.gen_range(3..=14);
    let n = attr_with_atoms(&mut rng, atoms);
    let alg = Algebra::new(&n);
    let sigma = random_sigma(&mut rng, &alg, &SigmaConfig::default());
    (rng, n, alg, sigma)
}

fn lint(n: &NestedAttr, alg: &Algebra, sigma: &[CompiledDep]) -> (String, LintReport) {
    let deps = render_sigma(alg, sigma);
    let report = lint_spec(&n.to_string(), &deps).expect("schema text must round-trip");
    (deps, report)
}

/// Byte offset where the appended (last) dependency line starts.
fn last_line_start(deps: &str) -> usize {
    deps.trim_end_matches('\n').rfind('\n').map_or(0, |i| i + 1)
}

fn codes_on_last_line(deps: &str, report: &LintReport) -> Vec<&'static str> {
    let start = last_line_start(deps);
    report
        .diagnostics
        .iter()
        .filter(|d| d.span.start >= start)
        .map(|d| d.code)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `minimal_cover` output never triggers a dependency-level rule,
    /// and a spec that was already fully lint-clean stays clean.
    #[test]
    fn minimal_cover_output_is_lint_clean(seed in any::<u64>()) {
        let (_, n, alg, sigma) = setup(seed);
        let (_, before) = lint(&n, &alg, &sigma);
        let cover = minimal_cover(&alg, &sigma);
        let (_, after) = lint(&n, &alg, &cover);
        for d in &after.diagnostics {
            prop_assert!(
                !DEP_LEVEL.contains(&d.code),
                "cover output raised {}: {}",
                d.code,
                d.message
            );
        }
        if before.is_clean() {
            prop_assert!(after.is_clean(), "clean spec became dirty after rewriting");
        }
    }

    /// A seeded trivial dependency is blamed L001 on its own line.
    #[test]
    fn seeded_trivial_is_blamed(seed in any::<u64>()) {
        let (mut rng, n, alg, mut sigma) = setup(seed);
        sigma.push(seed_trivial(&mut rng, &alg, 0.4));
        let (deps, report) = lint(&n, &alg, &sigma);
        prop_assert!(
            codes_on_last_line(&deps, &report).contains(&"L001"),
            "no L001 on the seeded line of:\n{deps}"
        );
    }

    /// A seeded exact duplicate is blamed L003 on the later occurrence.
    #[test]
    fn seeded_duplicate_is_blamed(seed in any::<u64>()) {
        let (mut rng, n, alg, mut sigma) = setup(seed);
        if let Some((dup, _)) = seed_duplicate(&mut rng, &sigma) {
            sigma.push(dup);
            let (deps, report) = lint(&n, &alg, &sigma);
            prop_assert!(
                codes_on_last_line(&deps, &report).contains(&"L003"),
                "no L003 on the duplicated line of:\n{deps}"
            );
        }
    }

    /// A seeded weakened FD (larger LHS / smaller RHS than an original
    /// that stays in Σ) is subsumed, hence blamed L003.
    #[test]
    fn seeded_weakened_is_blamed(seed in any::<u64>()) {
        let (mut rng, n, alg, mut sigma) = setup(seed);
        if let Some((weak, _)) = seed_weakened(&mut rng, &alg, &sigma, 0.3) {
            sigma.push(weak);
            let (deps, report) = lint(&n, &alg, &sigma);
            prop_assert!(
                codes_on_last_line(&deps, &report).contains(&"L003"),
                "no L003 on the weakened line of:\n{deps}"
            );
        }
    }

    /// A seeded inflated-LHS copy is caught: left-reduction (L004),
    /// subsumption (L003) or triviality (L001, when the join swallowed
    /// the RHS) — one of them must blame the appended line.
    #[test]
    fn seeded_inflated_lhs_is_blamed(seed in any::<u64>()) {
        let (mut rng, n, alg, mut sigma) = setup(seed);
        if let Some((fat, _)) = seed_inflated_lhs(&mut rng, &alg, &sigma, 0.4) {
            sigma.push(fat);
            let (deps, report) = lint(&n, &alg, &sigma);
            let codes = codes_on_last_line(&deps, &report);
            prop_assert!(
                codes.iter().any(|c| ["L001", "L003", "L004"].contains(c)),
                "inflated line not blamed ({codes:?}) in:\n{deps}"
            );
        }
    }

    /// JSON rendering of an arbitrary (defective) report parses back and
    /// agrees with the in-memory diagnostics field by field.
    #[test]
    fn json_round_trips(seed in any::<u64>()) {
        let (mut rng, n, alg, mut sigma) = setup(seed);
        sigma.push(seed_trivial(&mut rng, &alg, 0.4));
        let deps = render_sigma(&alg, &sigma);
        let schema = n.to_string();
        let report = lint_spec(&schema, &deps).unwrap();
        let json = lint_to_json(&schema, &deps, "prop.deps").unwrap();
        let v = nalist_lint::json::parse(&json).unwrap();
        prop_assert_eq!(v.get("errors").unwrap().as_usize(), Some(report.errors()));
        prop_assert_eq!(v.get("warnings").unwrap().as_usize(), Some(report.warnings()));
        let arr = v.get("diagnostics").unwrap().as_arr().unwrap();
        prop_assert_eq!(arr.len(), report.diagnostics.len());
        for (j, d) in arr.iter().zip(&report.diagnostics) {
            prop_assert_eq!(j.get("code").unwrap().as_str(), Some(d.code));
            prop_assert_eq!(j.get("start").unwrap().as_usize(), Some(d.span.start));
            prop_assert_eq!(j.get("end").unwrap().as_usize(), Some(d.span.end));
            prop_assert_eq!(
                j.get("message").unwrap().as_str(),
                Some(d.message.as_str())
            );
        }
    }
}
