//! The lint rules L001–L009 and the registry that runs them.
//!
//! Each rule is a pure function of a [`LintCtx`], which precomputes the
//! shared analysis facts (triviality, duplication, subsumption, MVD
//! implication) once so that the *suppression* policy is explicit: a
//! dependency flagged as trivial (L001), duplicate/subsumed (L003) or
//! MVD-implied (L005) is not additionally reported as redundant (L002) —
//! the more specific rule already explains *why* it is redundant.
//!
//! The paper supplies the decision procedures: triviality is Lemma 4.3,
//! implication runs through the worklist closure engine
//! ([`nalist_membership::implies`]), left-reduction and minimal covers
//! come from [`nalist_schema::cover`], the mixed meet rule
//! `X ↠ Y ⊢ X → Y⊓Y^C` is Theorem 4.6, possession is Definition 4.11,
//! and 4NF-with-lists is [`nalist_schema::normalform`].

use nalist_algebra::{Algebra, AtomSet};
use nalist_deps::{CompiledDep, DepKind};
use nalist_membership::implies;
use nalist_schema::cover::{is_redundant, minimal_cover, reduce_lhs};
use nalist_schema::normalform::fourth_nf_violations;
use nalist_types::attr::NestedAttr;

use crate::diagnostic::{Diagnostic, Severity};
use crate::spec::{Entry, Spec, SYNTAX, UNRESOLVED};

/// A registered lint rule.
pub struct Rule {
    /// Rule code (`L001`…).
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description shown in documentation and `help`.
    pub summary: &'static str,
    run: fn(&LintCtx) -> Vec<Diagnostic>,
}

/// The rule registry, in code order. L000 and L007 fire during spec
/// loading (see [`crate::spec`]) and have no run body here; they are
/// listed so that one table documents every code.
pub fn rules() -> &'static [Rule] {
    const RULES: &[Rule] = &[
        Rule {
            code: SYNTAX,
            name: "syntax-error",
            summary: "dependency line does not parse",
            run: |_| Vec::new(),
        },
        Rule {
            code: "L001",
            name: "trivial-dependency",
            summary: "dependency holds in every instance (Lemma 4.3)",
            run: l001_trivial,
        },
        Rule {
            code: "L002",
            name: "redundant-dependency",
            summary: "dependency is implied by the rest of the spec",
            run: l002_redundant,
        },
        Rule {
            code: "L003",
            name: "duplicate-dependency",
            summary: "dependency duplicates or is subsumed by another line",
            run: l003_duplicate,
        },
        Rule {
            code: "L004",
            name: "extraneous-lhs",
            summary: "left-hand side has removable subattributes",
            run: l004_extraneous_lhs,
        },
        Rule {
            code: "L005",
            name: "fd-from-mvd",
            summary: "FD already follows from an MVD via the mixed meet rule (Theorem 4.6)",
            run: l005_fd_from_mvd,
        },
        Rule {
            code: "L006",
            name: "non-possessed-rhs",
            summary: "MVD right-hand side mentions basis attributes it does not possess (Definition 4.11)",
            run: l006_non_possessed_rhs,
        },
        Rule {
            code: UNRESOLVED,
            name: "unresolved-path",
            summary: "attribute path does not resolve against the schema",
            run: |_| Vec::new(),
        },
        Rule {
            code: "L008",
            name: "not-minimal-cover",
            summary: "spec is not a minimal cover; a smaller equivalent exists",
            run: l008_minimal_cover,
        },
        Rule {
            code: "L009",
            name: "normal-form",
            summary: "schema violates 4NF-with-lists",
            run: l009_normal_form,
        },
    ];
    RULES
}

/// Shared analysis context for one spec.
pub struct LintCtx<'a> {
    /// Ambient attribute.
    pub n: &'a NestedAttr,
    /// Its algebra.
    pub alg: &'a Algebra,
    /// Successfully loaded dependencies.
    pub entries: &'a [Entry],
    /// `entries[i].compiled`, collected for the Σ-level procedures.
    pub compiled: Vec<CompiledDep>,
    /// Lemma 4.3 triviality per entry.
    trivial: Vec<bool>,
    /// Index of an *earlier* textually identical entry, if any.
    duplicate_of: Vec<Option<usize>>,
    /// Index of a strictly stronger FD elsewhere in Σ, if any.
    subsumed_by: Vec<Option<usize>>,
    /// For FDs: index of a single MVD that alone implies this FD.
    mvd_source: Vec<Option<usize>>,
}

impl<'a> LintCtx<'a> {
    /// Precomputes the shared facts for `spec`.
    pub fn new(spec: &'a Spec) -> Self {
        let alg = &spec.alg;
        let entries = &spec.entries;
        let compiled: Vec<CompiledDep> = entries.iter().map(|e| e.compiled.clone()).collect();
        let trivial: Vec<bool> = compiled.iter().map(|c| c.is_trivial(alg)).collect();
        let duplicate_of: Vec<Option<usize>> = (0..compiled.len())
            .map(|i| (0..i).find(|&j| compiled[j] == compiled[i]))
            .collect();
        let subsumed_by: Vec<Option<usize>> = (0..compiled.len())
            .map(|i| (0..compiled.len()).find(|&j| subsumes(alg, &compiled, j, i)))
            .collect();
        let mvd_source: Vec<Option<usize>> = (0..compiled.len())
            .map(|i| {
                if compiled[i].kind != DepKind::Fd || trivial[i] {
                    return None;
                }
                (0..compiled.len()).find(|&j| {
                    compiled[j].kind == DepKind::Mvd
                        && implies(alg, std::slice::from_ref(&compiled[j]), &compiled[i])
                })
            })
            .collect();
        LintCtx {
            n: &spec.n,
            alg,
            entries,
            compiled,
            trivial,
            duplicate_of,
            subsumed_by,
            mvd_source,
        }
    }

    fn diag(
        &self,
        i: usize,
        code: &'static str,
        message: String,
        suggestion: Option<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span: self.entries[i].span(),
            message,
            suggestion,
        }
    }
}

/// Does `sigma[j]` strictly subsume `sigma[i]`? Sound cases only:
///
/// * an FD `V → W` subsumes any dependency `X → Y` / `X ↠ Y` with
///   `V ≤ X` and `Y ≤ W` (augmentation + fragmentation, and an FD
///   implies the matching MVD);
///
/// MVD-by-MVD subsumption beyond textual equality is *not* claimed here
/// — shrinking an MVD's RHS is unsound in general — and identical pairs
/// are the duplicate case, excluded to keep the relation irreflexive.
fn subsumes(alg: &Algebra, sigma: &[CompiledDep], j: usize, i: usize) -> bool {
    if i == j || sigma[i] == sigma[j] {
        return false;
    }
    sigma[j].kind == DepKind::Fd
        && alg.le(&sigma[j].lhs, &sigma[i].lhs)
        && alg.le(&sigma[i].rhs, &sigma[j].rhs)
}

fn arrow(kind: DepKind) -> &'static str {
    match kind {
        DepKind::Fd => "->",
        DepKind::Mvd => "->>",
    }
}

fn l001_trivial(ctx: &LintCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, c) in ctx.compiled.iter().enumerate() {
        if !ctx.trivial[i] {
            continue;
        }
        let reason = if ctx.alg.le(&c.rhs, &c.lhs) {
            "the RHS is a subattribute of the LHS"
        } else {
            "LHS ⊔ RHS is the whole of N"
        };
        out.push(ctx.diag(
            i,
            "L001",
            format!("trivial dependency: {reason} (Lemma 4.3), so it holds in every instance"),
            Some("remove this dependency".to_owned()),
        ));
    }
    out
}

fn l002_redundant(ctx: &LintCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..ctx.compiled.len() {
        // Suppressed when a more specific rule already explains the
        // redundancy — including for the *earlier* copy of an exact
        // duplicate pair, which L003 blames on the later line.
        let has_duplicate = ctx.duplicate_of.contains(&Some(i)) || ctx.duplicate_of[i].is_some();
        if ctx.trivial[i]
            || has_duplicate
            || ctx.subsumed_by[i].is_some()
            || ctx.mvd_source[i].is_some()
        {
            continue;
        }
        if is_redundant(ctx.alg, &ctx.compiled, i) {
            out.push(ctx.diag(
                i,
                "L002",
                "redundant dependency: the rest of the spec already implies it".to_owned(),
                Some("remove this dependency".to_owned()),
            ));
        }
    }
    out
}

fn l003_duplicate(ctx: &LintCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..ctx.compiled.len() {
        if let Some(j) = ctx.duplicate_of[i] {
            out.push(ctx.diag(
                i,
                "L003",
                format!(
                    "duplicate dependency: identical to line {}",
                    ctx.entries[j].line
                ),
                Some("remove this duplicate".to_owned()),
            ));
        } else if let Some(j) = ctx.subsumed_by[i] {
            out.push(ctx.diag(
                i,
                "L003",
                format!(
                    "subsumed dependency: line {} ({}) is at least as strong",
                    ctx.entries[j].line,
                    ctx.compiled[j].render(ctx.alg)
                ),
                Some("remove this dependency and keep the stronger one".to_owned()),
            ));
        }
    }
    out
}

fn l004_extraneous_lhs(ctx: &LintCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, c) in ctx.compiled.iter().enumerate() {
        if ctx.trivial[i] || ctx.duplicate_of[i].is_some() {
            continue;
        }
        let reduced = reduce_lhs(ctx.alg, &ctx.compiled, c);
        if reduced != c.lhs {
            let rewritten = format!(
                "{} {} {}",
                ctx.alg.render(&reduced),
                arrow(c.kind),
                ctx.alg.render(&c.rhs)
            );
            out.push(Diagnostic {
                code: "L004",
                severity: Severity::Warning,
                span: ctx.entries[i].spanned.lhs.span,
                message: format!(
                    "extraneous LHS subattributes: the spec still implies this dependency with the LHS reduced to {}",
                    ctx.alg.render(&reduced)
                ),
                suggestion: Some(format!("rewrite as `{rewritten}`")),
            });
        }
    }
    out
}

fn l005_fd_from_mvd(ctx: &LintCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..ctx.compiled.len() {
        // An FD that merely duplicates / is subsumed by another FD is
        // L003's finding; here we only explain MVD-derived FDs.
        if ctx.duplicate_of[i].is_some() || ctx.subsumed_by[i].is_some() {
            continue;
        }
        if let Some(j) = ctx.mvd_source[i] {
            out.push(ctx.diag(
                i,
                "L005",
                format!(
                    "FD already derivable from the MVD on line {} alone, by the mixed meet rule X ↠ Y ⊢ X → Y⊓Y^C (Theorem 4.6)",
                    ctx.entries[j].line
                ),
                Some("remove this FD".to_owned()),
            ));
        }
    }
    out
}

/// For an MVD `X ↠ Y`, the atoms of `Y` that `Y` does not possess are
/// exactly `SubB(Y ⊓ Y^C)`: an atom of `Y` lies in the complement `Y^C`
/// iff some attribute above it is missing from `Y` (Definition 4.11). The
/// mixed meet rule then turns the MVD into the *functional* dependency
/// `X → Y⊓Y^C` — almost never what the author intended to state silently.
fn hidden_fd_rhs(alg: &Algebra, rhs: &AtomSet) -> AtomSet {
    alg.meet(rhs, &alg.compl(rhs))
}

fn l006_non_possessed_rhs(ctx: &LintCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, c) in ctx.compiled.iter().enumerate() {
        if c.kind != DepKind::Mvd || ctx.trivial[i] || ctx.duplicate_of[i].is_some() {
            continue;
        }
        let hidden = hidden_fd_rhs(ctx.alg, &c.rhs);
        if hidden.is_empty() || ctx.alg.le(&hidden, &c.lhs) {
            continue;
        }
        let hidden_fd = format!("{} -> {}", ctx.alg.render(&c.lhs), ctx.alg.render(&hidden));
        out.push(Diagnostic {
            code: "L006",
            severity: Severity::Warning,
            span: ctx.entries[i].spanned.rhs.span,
            message: format!(
                "RHS mentions basis attributes it does not possess (Definition 4.11): {} — the MVD silently implies the FD `{hidden_fd}`",
                ctx.alg.render(&hidden)
            ),
            suggestion: Some(format!(
                "state the hidden functional dependency explicitly: `{hidden_fd}`"
            )),
        });
    }
    out
}

fn l008_minimal_cover(ctx: &LintCtx) -> Vec<Diagnostic> {
    if ctx.entries.is_empty() {
        return Vec::new();
    }
    let cover = minimal_cover(ctx.alg, &ctx.compiled);
    let mut have = ctx.compiled.clone();
    let mut want = cover.clone();
    have.sort();
    have.dedup();
    want.sort();
    if have == want {
        return Vec::new();
    }
    let lines: Vec<String> = cover.iter().map(|d| d.render(ctx.alg)).collect();
    let shape = if cover.len() < ctx.compiled.len() {
        format!(
            "{} dependencies written, an equivalent cover has {}",
            ctx.compiled.len(),
            cover.len()
        )
    } else {
        "an equivalent left-reduced cover exists".to_owned()
    };
    let suggestion = if lines.is_empty() {
        "remove every dependency: the spec is vacuous (Σ only asserts trivialities)".to_owned()
    } else {
        format!("rewrite Σ as:\n{}", lines.join("\n"))
    };
    vec![Diagnostic {
        code: "L008",
        severity: Severity::Warning,
        span: ctx.entries[0].span(),
        message: format!("spec is not a minimal cover: {shape}"),
        suggestion: Some(suggestion),
    }]
}

fn l009_normal_form(ctx: &LintCtx) -> Vec<Diagnostic> {
    fourth_nf_violations(ctx.alg, &ctx.compiled)
        .into_iter()
        .map(|v| {
            ctx.diag(
                v.index,
                "L009",
                format!("4NF-with-lists violation: {}", v.reason),
                Some(
                    "decompose along this dependency (`nalist normalize`) or strengthen the LHS to a key"
                        .to_owned(),
                ),
            )
        })
        .collect()
}

/// Runs every registered rule over the loaded spec and returns the
/// findings (unsorted; [`crate::lint_spec`] merges and orders them).
pub fn run_rules(spec: &Spec) -> Vec<Diagnostic> {
    let ctx = LintCtx::new(spec);
    rules().iter().flat_map(|r| (r.run)(&ctx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::load_spec;

    fn codes(schema: &str, deps: &str) -> Vec<(String, String)> {
        let spec = load_spec(schema, deps).unwrap();
        let mut out: Vec<(String, String)> = spec
            .load_diagnostics
            .iter()
            .chain(run_rules(&spec).iter())
            .map(|d| (d.code.to_owned(), d.span.text(deps).to_owned()))
            .collect();
        out.sort();
        out
    }

    fn rule_codes(schema: &str, deps: &str) -> Vec<String> {
        let mut out: Vec<String> = codes(schema, deps).into_iter().map(|(c, _)| c).collect();
        out.dedup();
        out
    }

    #[test]
    fn registry_lists_all_codes_in_order() {
        let codes: Vec<&str> = rules().iter().map(|r| r.code).collect();
        assert_eq!(
            codes,
            ["L000", "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009"]
        );
    }

    #[test]
    fn l001_fires_on_trivial_only() {
        // Y ≤ X triviality; the minimal cover drops the dependency
        // entirely, so L008 rides along — but no 4NF or redundancy noise.
        assert_eq!(rule_codes("L(A, B)", "L(A, B) -> L(A)\n"), ["L001", "L008"]);
        // the X ⊔ Y = N form of MVD triviality
        let spec = load_spec("L(A, B)", "L(A) ->> L(B)\n").unwrap();
        let diags = run_rules(&spec);
        let l001: Vec<_> = diags.iter().filter(|d| d.code == "L001").collect();
        assert_eq!(l001.len(), 1);
        assert!(l001[0].message.contains("whole of N"));
        // near-miss: a contentful FD is not trivial
        assert!(rule_codes("L(A, B, C)", "L(A) -> L(B, C)\n").is_empty());
    }

    #[test]
    fn l002_redundant_transitive_fd() {
        let deps = "L(A) -> L(B)\nL(B) -> L(C)\nL(A) -> L(C)\n";
        let found = codes("L(A, B, C)", deps);
        assert!(found
            .iter()
            .any(|(c, t)| c == "L002" && t == "L(A) -> L(C)"));
        // the two generators are not flagged L002
        assert_eq!(found.iter().filter(|(c, _)| c == "L002").count(), 1);
    }

    #[test]
    fn l003_duplicate_blames_later_line() {
        let deps = "L(A) -> L(B)\nL(A) -> L(B)\n";
        let spec = load_spec("L(A, B, C)", deps).unwrap();
        let diags = run_rules(&spec);
        let l003: Vec<_> = diags.iter().filter(|d| d.code == "L003").collect();
        assert_eq!(l003.len(), 1);
        assert_eq!(spec.entries[1].span(), l003[0].span);
        assert!(l003[0].message.contains("identical to line 1"));
        // and neither copy is reported L002
        assert!(!diags.iter().any(|d| d.code == "L002"));
    }

    #[test]
    fn l003_subsumption_by_stronger_fd() {
        // L(A) -> L(B, C) subsumes L(A, B) -> L(C).
        let deps = "L(A) -> L(B, C)\nL(A, B) -> L(C)\n";
        let spec = load_spec("L(A, B, C)", deps).unwrap();
        let diags = run_rules(&spec);
        let l003: Vec<_> = diags.iter().filter(|d| d.code == "L003").collect();
        assert_eq!(l003.len(), 1);
        assert_eq!(l003[0].span, spec.entries[1].span());
        assert!(l003[0].message.contains("line 1"));
    }

    #[test]
    fn l004_extraneous_lhs_points_at_lhs() {
        let deps = "L(A) -> L(C)\nL(A, B) -> L(C)\n";
        let spec = load_spec("L(A, B, C)", deps).unwrap();
        let diags = run_rules(&spec);
        let l004: Vec<_> = diags.iter().filter(|d| d.code == "L004").collect();
        assert_eq!(l004.len(), 1);
        assert_eq!(l004[0].span.text(deps), "L(A, B)");
        assert!(l004[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("L(A) -> L(C)"));
    }

    #[test]
    fn l005_mixed_meet_fd() {
        // On the pubcrawl schema the MVD Person ↠ Visit[Drink(Pub)] does
        // not possess Pub's sibling Beer, hence implies
        // Person -> Visit[λ]; stating that FD separately triggers L005.
        let schema = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";
        let deps = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n\
                    Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n";
        let spec = load_spec(schema, deps).unwrap();
        let diags = run_rules(&spec);
        let l005: Vec<_> = diags.iter().filter(|d| d.code == "L005").collect();
        assert_eq!(l005.len(), 1);
        assert_eq!(l005[0].span, spec.entries[1].span());
        assert!(l005[0].message.contains("mixed meet"));
        // suppressed as plain L002
        assert!(!diags.iter().any(|d| d.code == "L002"));
    }

    #[test]
    fn l006_non_possessed_rhs() {
        let schema = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";
        let deps = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n";
        let spec = load_spec(schema, deps).unwrap();
        let diags = run_rules(&spec);
        let l006: Vec<_> = diags.iter().filter(|d| d.code == "L006").collect();
        assert_eq!(l006.len(), 1);
        assert_eq!(l006[0].span.text(deps), "Pubcrawl(Visit[Drink(Pub)])");
        assert!(l006[0].message.contains("Visit[λ]"), "{}", l006[0].message);
        // near-miss: an RHS that possesses all its atoms is quiet
        let spec2 = load_spec("L(A, B, M[C], D)", "L(A) ->> L(B, M[C])\n").unwrap();
        assert!(run_rules(&spec2).iter().all(|d| d.code != "L006"));
    }

    #[test]
    fn l008_minimal_cover_fixit() {
        let deps = "L(A) -> L(B)\nL(A) -> L(C)\nL(A) -> L(B, C)\n";
        let spec = load_spec("L(A, B, C)", deps).unwrap();
        let diags = run_rules(&spec);
        let l008: Vec<_> = diags.iter().filter(|d| d.code == "L008").collect();
        assert_eq!(l008.len(), 1);
        let sugg = l008[0].suggestion.as_deref().unwrap();
        assert!(sugg.starts_with("rewrite Σ as:\n"), "{sugg}");
        // the cover is a single dependency determining both B and C
        assert_eq!(sugg.lines().count(), 2, "{sugg}");
    }

    #[test]
    fn l009_4nf_violation() {
        let schema = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";
        let deps = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n";
        let spec = load_spec(schema, deps).unwrap();
        let diags = run_rules(&spec);
        let l009: Vec<_> = diags.iter().filter(|d| d.code == "L009").collect();
        assert_eq!(l009.len(), 1);
        assert!(l009[0].message.contains("not a superkey"));
    }

    #[test]
    fn clean_key_based_spec_has_no_findings() {
        let spec = load_spec("L(A, B, C)", "L(A) -> L(B, C)\n").unwrap();
        assert!(run_rules(&spec).is_empty());
        assert!(spec.load_diagnostics.is_empty());
    }
}
