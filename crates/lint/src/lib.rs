//! # nalist-lint
//!
//! Span-aware static analysis for dependency specs — "clippy for Σ".
//!
//! The paper's decision procedures make dependency specs *checkable*: a
//! written dependency can be vacuous (Lemma 4.3), implied by the rest of
//! the spec (Algorithm 5.1), weaker than another line, carry extraneous
//! left-hand-side subattributes, restate what an MVD already yields via
//! the mixed meet rule `X ↠ Y ⊢ X → Y⊓Y^C` (Theorem 4.6), mention basis
//! attributes its own right-hand side does not possess (Definition 4.11),
//! or violate the 4NF-with-lists criterion. This crate turns each of
//! those conditions into a lint rule over a parsed spec:
//!
//! | code | finding |
//! |------|---------|
//! | L000 | syntax error in a dependency line |
//! | L001 | trivial dependency (Lemma 4.3) |
//! | L002 | redundant — implied by the rest of Σ |
//! | L003 | duplicate / subsumed by a stronger line |
//! | L004 | extraneous LHS subattributes (left-reduction) |
//! | L005 | FD derivable from an MVD via the mixed meet rule |
//! | L006 | MVD RHS mentions non-possessed basis attributes |
//! | L007 | unresolvable attribute path (with did-you-mean) |
//! | L008 | spec is not a minimal cover (fix-it prints the cover) |
//! | L009 | 4NF-with-lists violation |
//!
//! Findings are [`Diagnostic`] values anchored to byte [`Span`]s recorded
//! by the parser ([`nalist_types::parser::parse_dependency_spanned`]) and
//! render two ways: rustc-style human output with caret underlines
//! ([`render_human`]) and a JSON document for CI ([`render_json`]).
//!
//! ```
//! use nalist_lint::{lint_spec, Severity};
//!
//! let deps = "L(A, B) -> L(A)\nL(A) -> L(B, C)\n";
//! let report = lint_spec("L(A, B, C)", deps).unwrap();
//! assert!(report.diagnostics.iter().any(|d| d.code == "L001"));
//! assert!(report.diagnostics.iter().all(|d| d.severity == Severity::Warning));
//! // the trivial first line is underlined exactly
//! assert_eq!(report.diagnostics[0].span.text(deps), "L(A, B) -> L(A)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostic;
pub mod rules;
pub mod spec;

pub use nalist_types::json;

pub use diagnostic::{render_human, render_json, Diagnostic, LintReport, Severity};
pub use rules::{rules, run_rules, LintCtx, Rule};
pub use spec::{load_spec, load_spec_governed, Entry, Spec, SpecError};

use nalist_guard::Budget;
use nalist_types::error::ParseError;
use nalist_types::Span;

/// Lints a spec: parses `schema_src` (one nested attribute), loads
/// `deps_src` (one dependency per line), runs every rule and returns the
/// findings sorted by position. Fails only when the schema itself does
/// not parse; all dependency-file problems come back as diagnostics.
pub fn lint_spec(schema_src: &str, deps_src: &str) -> Result<LintReport, ParseError> {
    let spec = load_spec(schema_src, deps_src)?;
    Ok(report_for(&spec))
}

/// [`lint_spec`] under a resource budget: spec loading parses, builds the
/// algebra and walks the dependency file governed (see
/// [`load_spec_governed`]); exhaustion surfaces as
/// [`SpecError::Resource`] instead of a partial report.
pub fn lint_spec_governed(
    schema_src: &str,
    deps_src: &str,
    budget: &Budget,
) -> Result<LintReport, SpecError> {
    let spec = load_spec_governed(schema_src, deps_src, budget)?;
    budget.check_deadline()?;
    Ok(report_for(&spec))
}

fn report_for(spec: &Spec) -> LintReport {
    let mut diagnostics = spec.load_diagnostics.clone();
    diagnostics.extend(run_rules(spec));
    diagnostics.sort_by_key(|d| (d.span.start, d.code));
    LintReport { diagnostics }
}

/// Convenience for tests and tools: lint and render in one call.
pub fn lint_to_human(schema_src: &str, deps_src: &str, file: &str) -> Result<String, ParseError> {
    let report = lint_spec(schema_src, deps_src)?;
    Ok(render_human(&report, file, deps_src))
}

/// Convenience for tests and tools: lint and render JSON in one call.
pub fn lint_to_json(schema_src: &str, deps_src: &str, file: &str) -> Result<String, ParseError> {
    let report = lint_spec(schema_src, deps_src)?;
    Ok(render_json(&report, file, deps_src))
}

/// Re-exported so downstream code can build spans without importing
/// `nalist-types` directly.
pub type ByteSpan = Span;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_sorted_by_position() {
        let deps = "L(A) -> L(B)\nL(A) -> L(B)\nL(A, B) -> L(A)\n";
        let report = lint_spec("L(A, B, C)", deps).unwrap();
        let starts: Vec<usize> = report.diagnostics.iter().map(|d| d.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn clean_spec_reports_nothing() {
        let report = lint_spec("L(A, B, C)", "L(A) -> L(B, C)\n").unwrap();
        assert!(report.is_clean());
        assert!(!report.fails(true));
        assert_eq!(render_human(&report, "x.deps", "L(A) -> L(B, C)\n"), "");
    }

    #[test]
    fn load_errors_and_rule_findings_merge() {
        let deps = "L(A) -> \nL(A, B) -> L(A)\n";
        let report = lint_spec("L(A, B)", deps).unwrap();
        assert_eq!(report.errors(), 1);
        assert!(report.warnings() >= 1);
        assert!(report.fails(false));
    }

    #[test]
    fn schema_error_is_hard_failure() {
        assert!(lint_spec("L(", "").is_err());
    }
}
