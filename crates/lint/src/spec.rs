//! Loading a spec for linting: the schema file (one nested attribute) and
//! the dependency file (one dependency per line, `#` comments and blank
//! lines ignored — the same grammar as [`nalist_deps::parse_sigma`]).
//!
//! Unlike the strict loaders used by the reasoner commands, loading here
//! is *fault-tolerant*: a line that fails to parse or resolve becomes an
//! error-severity diagnostic (L000 for syntax, L007 for resolution, with
//! a did-you-mean suggestion) with its span lifted to a file-global byte
//! offset, and the remaining lines still load so the Σ-level rules can
//! run over everything that is well-formed.

use nalist_algebra::Algebra;
use nalist_deps::{CompiledDep, Dependency};
use nalist_guard::{Budget, ResourceExhausted};
use nalist_types::attr::NestedAttr;
use nalist_types::error::ParseError;
use nalist_types::parser::{
    parse_attr_with, parse_dependency_spanned_with, resolve_loose, ParseLimits, SpannedDependency,
    SpannedLoose,
};
use nalist_types::Span;

use crate::diagnostic::{Diagnostic, Severity};

/// Hard failures from governed spec loading. Dependency-*line* problems
/// never land here — they become diagnostics in the returned [`Spec`];
/// this type covers only the schema itself being unusable or the budget
/// running dry mid-load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The schema attribute failed to parse (including exceeding the
    /// nesting limit derived from the budget).
    Parse(ParseError),
    /// The budget was exhausted while building the algebra or walking
    /// the dependency file.
    Resource(ResourceExhausted),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "schema error: {e}"),
            SpecError::Resource(e) => write!(f, "spec loading stopped: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> Self {
        SpecError::Parse(e)
    }
}

impl From<ResourceExhausted> for SpecError {
    fn from(e: ResourceExhausted) -> Self {
        SpecError::Resource(e)
    }
}

/// Rule code for syntax errors in the dependency file.
pub const SYNTAX: &str = "L000";
/// Rule code for unresolvable / ambiguous attribute paths.
pub const UNRESOLVED: &str = "L007";

/// One successfully loaded dependency.
#[derive(Debug, Clone)]
pub struct Entry {
    /// 1-based line number in the dependency file.
    pub line: usize,
    /// The parse with spans lifted to file-global byte offsets.
    pub spanned: SpannedDependency,
    /// The resolved tree-level dependency.
    pub dep: Dependency,
    /// The atom-set compilation of `dep`.
    pub compiled: CompiledDep,
}

impl Entry {
    /// File-global span of the whole dependency text.
    pub fn span(&self) -> Span {
        self.spanned.span()
    }
}

/// A loaded spec: ambient attribute, its algebra, the dependencies that
/// loaded cleanly, and the diagnostics for the lines that did not.
#[derive(Debug)]
pub struct Spec {
    /// The ambient nested attribute `N`.
    pub n: NestedAttr,
    /// The Brouwerian algebra of `Sub(N)`.
    pub alg: Algebra,
    /// Successfully loaded dependencies, in file order.
    pub entries: Vec<Entry>,
    /// L000/L007 findings produced while loading.
    pub load_diagnostics: Vec<Diagnostic>,
}

/// Parses the schema and loads the dependency source. Fails only when the
/// *schema* itself is unparseable — dependency-file problems become
/// diagnostics in the returned [`Spec`].
pub fn load_spec(schema_src: &str, deps_src: &str) -> Result<Spec, ParseError> {
    match load_spec_governed(schema_src, deps_src, &Budget::unlimited()) {
        Ok(spec) => Ok(spec),
        Err(SpecError::Parse(e)) => Err(e),
        Err(SpecError::Resource(e)) => {
            unreachable!("unlimited budget cannot be exhausted: {e}")
        }
    }
}

/// [`load_spec`] under a resource budget: the schema (and every
/// dependency line) parses under the budget's nesting limit, the algebra
/// construction respects its atom cap and fuel, and each processed line
/// charges one unit of fuel. A dependency line that is nested too deeply
/// is *not* a hard error — it degrades to an L000 diagnostic like any
/// other malformed line.
pub fn load_spec_governed(
    schema_src: &str,
    deps_src: &str,
    budget: &Budget,
) -> Result<Spec, SpecError> {
    let limits = ParseLimits::from_budget(budget);
    let n = parse_attr_with(schema_src.trim(), limits)?;
    let alg = Algebra::try_new(&n, budget)?;
    let mut entries = Vec::new();
    let mut load_diagnostics = Vec::new();
    let mut offset = 0usize;
    for (idx, raw) in deps_src.split_inclusive('\n').enumerate() {
        let line_no = idx + 1;
        let line = raw.strip_suffix('\n').unwrap_or(raw);
        let line = line.strip_suffix('\r').unwrap_or(line);
        if !line.trim().is_empty() && !line.trim_start().starts_with('#') {
            budget.charge(1)?;
            match load_line(&n, &alg, line, line_no, offset, limits) {
                Ok(entry) => entries.push(entry),
                Err(d) => load_diagnostics.push(d),
            }
        }
        offset += raw.len();
    }
    Ok(Spec {
        n,
        alg,
        entries,
        load_diagnostics,
    })
}

fn load_line(
    n: &NestedAttr,
    alg: &Algebra,
    line: &str,
    line_no: usize,
    offset: usize,
    limits: ParseLimits,
) -> Result<Entry, Diagnostic> {
    let mut spanned = parse_dependency_spanned_with(line, limits)
        .map_err(|e| syntax_diagnostic(&e, line, offset))?;
    let lhs = resolve_side(n, &spanned.lhs, line, offset)?;
    let rhs = resolve_side(n, &spanned.rhs, line, offset)?;
    shift_spans(&mut spanned, offset);
    let dep = Dependency {
        kind: spanned.kind,
        lhs,
        rhs,
    };
    let compiled = dep.compile(alg).map_err(|e| Diagnostic {
        code: UNRESOLVED,
        severity: Severity::Error,
        span: spanned.span(),
        message: format!("dependency does not type-check against the schema: {e}"),
        suggestion: None,
    })?;
    Ok(Entry {
        line: line_no,
        spanned,
        dep,
        compiled,
    })
}

fn shift_spans(d: &mut SpannedDependency, offset: usize) {
    d.arrow = d.arrow.shifted(offset);
    for side in [&mut d.lhs, &mut d.rhs] {
        side.span = side.span.shifted(offset);
        for (_, span) in &mut side.idents {
            *span = span.shifted(offset);
        }
    }
}

fn syntax_diagnostic(e: &ParseError, line: &str, offset: usize) -> Diagnostic {
    // Map the parser's byte position (relative to the line) to a
    // file-global span pointing at the offending character(s).
    let span = match e {
        ParseError::Unexpected { at, .. } | ParseError::TooDeep { at, .. } => {
            let width = line[*at..].chars().next().map_or(1, char::len_utf8);
            Span::new(at + offset, at + width + offset)
        }
        ParseError::TrailingInput { at } => Span::new(at + offset, line.len() + offset),
        // UnexpectedEnd (and resolution errors, which cannot occur here):
        // point just past the end of the line.
        _ => Span::point(line.len() + offset),
    };
    Diagnostic {
        code: SYNTAX,
        severity: Severity::Error,
        span,
        message: format!("syntax error: {e}"),
        suggestion: None,
    }
}

fn resolve_side(
    n: &NestedAttr,
    side: &SpannedLoose,
    line: &str,
    offset: usize,
) -> Result<NestedAttr, Diagnostic> {
    let side_text = side.span.text(line);
    match resolve_loose(n, &side.node, side_text) {
        Ok(attr) => Ok(attr),
        Err(e) => Err(resolution_diagnostic(n, side, side_text, &e, offset)),
    }
}

fn resolution_diagnostic(
    n: &NestedAttr,
    side: &SpannedLoose,
    side_text: &str,
    e: &ParseError,
    offset: usize,
) -> Diagnostic {
    let known = known_names(n);
    // Blame the first identifier that names nothing in N, if any: that
    // token (rather than the whole side) is what the user got wrong.
    let unknown = side.idents.iter().find(|(name, _)| !known.contains(name));
    let (span, message, suggestion) = match (e, unknown) {
        (ParseError::Ambiguous { count, .. }, _) => (
            side.span,
            format!("`{side_text}` is ambiguous in {n}: {count} distinct resolutions"),
            nalist_types::display::resolutions(&side.node, n)
                .first()
                .map(|r| format!("disambiguate by writing the subattribute in full, e.g. `{r}`")),
        ),
        (_, Some((name, span))) => (
            *span,
            format!("unknown attribute or label `{name}` (not part of {n})"),
            closest_name(name, &known).map(|c| format!("did you mean `{c}`?")),
        ),
        (_, None) => (
            side.span,
            format!("`{side_text}` does not denote a subattribute of {n}"),
            Some(
                "every name exists but the nesting structure does not match the schema".to_owned(),
            ),
        ),
    };
    Diagnostic {
        code: UNRESOLVED,
        severity: Severity::Error,
        span: span.shifted(offset),
        message,
        suggestion,
    }
}

/// All names occurring in `n`: flat attribute names plus record/list
/// labels, in depth-first order.
pub fn known_names(n: &NestedAttr) -> Vec<String> {
    fn walk(n: &NestedAttr, out: &mut Vec<String>) {
        match n {
            NestedAttr::Null => {}
            NestedAttr::Flat(name) => out.push(name.clone()),
            NestedAttr::Record(label, children) => {
                out.push(label.clone());
                for c in children {
                    walk(c, out);
                }
            }
            NestedAttr::List(label, inner) => {
                out.push(label.clone());
                walk(inner, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(n, &mut out);
    out.dedup();
    out
}

/// The known name closest to `name` in Levenshtein distance, if any is
/// within editing distance 2 (and not identical).
fn closest_name<'a>(name: &str, known: &'a [String]) -> Option<&'a str> {
    known
        .iter()
        .map(|k| (levenshtein(name, k), k.as_str()))
        .filter(|&(d, k)| d > 0 && d <= 2 && k != name)
        .min_by_key(|&(d, k)| (d, k.len(), k))
        .map(|(_, k)| k)
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nalist_guard::ResourceKind;
    use nalist_types::parser::parse_attr;

    const SCHEMA: &str = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])";

    #[test]
    fn clean_spec_loads_every_line() {
        let deps = "# header comment\n\
                    Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n\
                    \n\
                    Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n";
        let spec = load_spec(SCHEMA, deps).unwrap();
        assert_eq!(spec.entries.len(), 2);
        assert!(spec.load_diagnostics.is_empty());
        assert_eq!(spec.entries[0].line, 2);
        assert_eq!(spec.entries[1].line, 4);
        // spans are file-global
        let e = &spec.entries[1];
        assert_eq!(
            e.span().text(deps),
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
        );
        assert_eq!(e.spanned.arrow.text(deps), "->");
    }

    #[test]
    fn syntax_error_becomes_l000() {
        let deps = "Pubcrawl(Person) -> \n";
        let spec = load_spec(SCHEMA, deps).unwrap();
        assert!(spec.entries.is_empty());
        assert_eq!(spec.load_diagnostics.len(), 1);
        let d = &spec.load_diagnostics[0];
        assert_eq!(d.code, SYNTAX);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("syntax error"));
    }

    #[test]
    fn typo_becomes_l007_with_did_you_mean() {
        let deps = "Pubcrawl(Persn) -> Pubcrawl(Visit[λ])\n";
        let spec = load_spec(SCHEMA, deps).unwrap();
        assert_eq!(spec.load_diagnostics.len(), 1);
        let d = &spec.load_diagnostics[0];
        assert_eq!(d.code, UNRESOLVED);
        assert_eq!(d.span.text(deps), "Persn");
        assert!(d.message.contains("unknown attribute or label `Persn`"));
        assert_eq!(d.suggestion.as_deref(), Some("did you mean `Person`?"));
    }

    #[test]
    fn ambiguous_path_becomes_l007() {
        // In L(A, A) the abbreviation L(A) resolves two ways.
        let spec = load_spec("L(A, A)", "L(A) -> L(A, A)\n").unwrap();
        assert_eq!(spec.load_diagnostics.len(), 1);
        let d = &spec.load_diagnostics[0];
        assert_eq!(d.code, UNRESOLVED);
        assert!(d.message.contains("ambiguous"));
        assert!(d.suggestion.as_deref().unwrap().contains("in full"));
    }

    #[test]
    fn structure_mismatch_without_unknown_name() {
        // All names exist but `Person[...]` treats a flat attribute as a
        // list label.
        let deps = "Person[Beer] -> Pubcrawl(Visit[λ])\n";
        let spec = load_spec(SCHEMA, deps).unwrap();
        assert_eq!(spec.load_diagnostics.len(), 1);
        let d = &spec.load_diagnostics[0];
        assert_eq!(d.code, UNRESOLVED);
        assert!(d.message.contains("does not denote a subattribute"));
    }

    #[test]
    fn bad_schema_is_a_hard_error() {
        assert!(load_spec("L(", "").is_err());
    }

    #[test]
    fn later_lines_still_load_after_an_error() {
        let deps = "Pubcrawl(Persn) -> Pubcrawl(Visit[λ])\n\
                    Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n";
        let spec = load_spec(SCHEMA, deps).unwrap();
        assert_eq!(spec.entries.len(), 1);
        assert_eq!(spec.entries[0].line, 2);
        assert_eq!(spec.load_diagnostics.len(), 1);
    }

    #[test]
    fn depth_bomb_line_degrades_to_l000() {
        // A pathologically nested dependency line must not take the whole
        // spec down: it becomes an L000 diagnostic whose span points at
        // the bracket that crossed the limit, and later lines still load.
        let bomb = format!(
            "Pubcrawl(Person) -> {}λ{}\n",
            "Visit[".repeat(200),
            "]".repeat(200)
        );
        let deps = format!("{bomb}Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n");
        let spec = load_spec(SCHEMA, &deps).unwrap();
        assert_eq!(spec.entries.len(), 1);
        assert_eq!(spec.entries[0].line, 2);
        assert_eq!(spec.load_diagnostics.len(), 1);
        let d = &spec.load_diagnostics[0];
        assert_eq!(d.code, SYNTAX);
        assert!(d.message.contains("nesting deeper"));
        assert_eq!(d.span.text(&deps), "[");
    }

    #[test]
    fn governed_load_charges_per_line() {
        let deps = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])\n\
                    Pubcrawl(Person) -> Pubcrawl(Visit[λ])\n";
        // Ample budget: identical to the ungoverned load.
        let ok = load_spec_governed(SCHEMA, deps, &Budget::unlimited().with_fuel(10_000)).unwrap();
        assert_eq!(ok.entries.len(), 2);
        // Starved budget: the algebra construction and the first line eat
        // the fuel and the load reports exhaustion rather than a partial
        // spec.
        let err = load_spec_governed(SCHEMA, deps, &Budget::unlimited().with_fuel(3)).unwrap_err();
        match err {
            SpecError::Resource(e) => assert_eq!(e.kind, ResourceKind::Fuel),
            SpecError::Parse(e) => panic!("expected resource exhaustion, got {e}"),
        }
    }

    #[test]
    fn governed_load_applies_budget_depth_to_schema() {
        let budget = Budget::unlimited().with_max_depth(2);
        let err = load_spec_governed(SCHEMA, "", &budget).unwrap_err();
        assert!(matches!(
            err,
            SpecError::Parse(ParseError::TooDeep { limit: 2, .. })
        ));
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("Person", "Persn"), 1);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(
            closest_name("Persn", &known_names(&parse_attr(SCHEMA).unwrap())),
            Some("Person")
        );
        assert_eq!(
            closest_name("Zzzzzz", &known_names(&parse_attr(SCHEMA).unwrap())),
            None
        );
    }
}
