//! Structured lint findings and their two renderings: rustc-style human
//! output with caret underlines, and a line-oriented JSON document for CI.
//!
//! Spans are byte offsets into the linted source (see
//! [`nalist_types::Span`]); the renderers derive 1-based line/column
//! positions and *character* widths, so multi-byte tokens such as `λ`
//! and `↠` underline correctly.

use std::fmt;

use nalist_types::Span;

use crate::json;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the spec is well-formed but improvable. Exit code stays 0
    /// unless `--deny warnings` promotes these.
    Warning,
    /// The spec is ill-formed (syntax or resolution failure); always fails.
    Error,
}

impl Severity {
    /// Lower-case label used in both renderings (`warning` / `error`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One lint finding, anchored to the byte span of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code (`L000`–`L009`).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Byte span in the linted dependency source.
    pub span: Span,
    /// One-line description of the finding.
    pub message: String,
    /// Optional fix-it: what to write instead (may span several lines).
    pub suggestion: Option<String>,
}

/// The outcome of linting one spec: all findings, sorted by position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Findings ordered by span start, then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Should the process exit nonzero? Errors always fail; warnings fail
    /// only under `--deny warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// 1-based line/column of a byte offset, plus the text of its line.
struct LineCol<'a> {
    line: usize,
    /// 1-based column counted in *characters*.
    column: usize,
    text: &'a str,
    /// Byte offset of the start of `text` within the source.
    line_start: usize,
}

fn locate(src: &str, at: usize) -> LineCol<'_> {
    let at = at.min(src.len());
    let line_start = src[..at].rfind('\n').map_or(0, |i| i + 1);
    let line = src[..line_start].matches('\n').count() + 1;
    let line_end = src[line_start..]
        .find('\n')
        .map_or(src.len(), |i| line_start + i);
    let text = src[line_start..line_end].trim_end_matches('\r');
    LineCol {
        line,
        column: src[line_start..at].chars().count() + 1,
        text,
        line_start,
    }
}

/// Renders the report the way rustc renders its own diagnostics:
///
/// ```text
/// warning[L001]: trivial dependency
///  --> demo.deps:3:1
///   |
/// 3 | L(A, B) -> L(A)
///   | ^^^^^^^^^^^^^^^
///   |
///   = help: remove this dependency
/// ```
///
/// followed by a one-line summary. Returns the empty string for a clean
/// report.
pub fn render_human(report: &LintReport, file: &str, src: &str) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let loc = locate(src, d.span.start);
        let gutter = loc.line.to_string().len();
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
        out.push_str(&format!(
            "{:gutter$}--> {}:{}:{}\n",
            "", file, loc.line, loc.column
        ));
        out.push_str(&format!("{:gutter$} |\n", ""));
        out.push_str(&format!("{} | {}\n", loc.line, loc.text));
        // Caret width in characters, clamped to the end of the line so a
        // multi-line span underlines its first line only.
        let span_end = d.span.end.max(d.span.start + 1);
        let end_in_line = span_end.min(loc.line_start + loc.text.len());
        let width = if end_in_line > d.span.start {
            src[d.span.start..end_in_line].chars().count()
        } else {
            1
        };
        out.push_str(&format!(
            "{:gutter$} | {:pad$}{}\n",
            "",
            "",
            "^".repeat(width.max(1)),
            pad = loc.column - 1
        ));
        if let Some(sugg) = &d.suggestion {
            out.push_str(&format!("{:gutter$} |\n", ""));
            let mut lines = sugg.lines();
            if let Some(first) = lines.next() {
                out.push_str(&format!("{:gutter$} = help: {}\n", "", first));
            }
            for more in lines {
                out.push_str(&format!("{:gutter$}         {}\n", "", more));
            }
        }
        out.push('\n');
    }
    if !report.diagnostics.is_empty() {
        let mut parts = Vec::new();
        match report.errors() {
            0 => {}
            1 => parts.push("1 error".to_owned()),
            e => parts.push(format!("{e} errors")),
        }
        match report.warnings() {
            0 => {}
            1 => parts.push("1 warning".to_owned()),
            w => parts.push(format!("{w} warnings")),
        }
        out.push_str(&format!("lint: {} emitted\n", parts.join(", ")));
    }
    out
}

/// Renders the report as a pretty-printed JSON document:
///
/// ```json
/// {
///   "file": "demo.deps",
///   "errors": 0,
///   "warnings": 1,
///   "diagnostics": [
///     { "code": "L001", "severity": "warning", "start": 0, "end": 15,
///       "line": 1, "column": 1, "text": "L(A, B) -> L(A)",
///       "message": "…", "suggestion": "…" }
///   ]
/// }
/// ```
///
/// `suggestion` is `null` when the rule offers none. `start`/`end` are
/// byte offsets; `line`/`column` are 1-based (columns in characters).
pub fn render_json(report: &LintReport, file: &str, src: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"file\": {},\n", json::escape(file)));
    out.push_str(&format!("  \"errors\": {},\n", report.errors()));
    out.push_str(&format!("  \"warnings\": {},\n", report.warnings()));
    if report.diagnostics.is_empty() {
        out.push_str("  \"diagnostics\": []\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in report.diagnostics.iter().enumerate() {
            let loc = locate(src, d.span.start);
            let end = d.span.end.min(src.len()).max(d.span.start);
            out.push_str("    {\n");
            out.push_str(&format!("      \"code\": {},\n", json::escape(d.code)));
            out.push_str(&format!(
                "      \"severity\": {},\n",
                json::escape(d.severity.label())
            ));
            out.push_str(&format!("      \"start\": {},\n", d.span.start));
            out.push_str(&format!("      \"end\": {},\n", d.span.end));
            out.push_str(&format!("      \"line\": {},\n", loc.line));
            out.push_str(&format!("      \"column\": {},\n", loc.column));
            out.push_str(&format!(
                "      \"text\": {},\n",
                json::escape(&src[d.span.start.min(src.len())..end])
            ));
            out.push_str(&format!(
                "      \"message\": {},\n",
                json::escape(&d.message)
            ));
            match &d.suggestion {
                Some(s) => out.push_str(&format!("      \"suggestion\": {}\n", json::escape(s))),
                None => out.push_str("      \"suggestion\": null\n"),
            }
            out.push_str(if i + 1 == report.diagnostics.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (LintReport, &'static str) {
        let src = "L(A) -> L(B)\nλ ↠ L(A)\n";
        let report = LintReport {
            diagnostics: vec![
                Diagnostic {
                    code: "L001",
                    severity: Severity::Warning,
                    span: Span::new(0, 12),
                    message: "trivial dependency".into(),
                    suggestion: Some("remove it".into()),
                },
                Diagnostic {
                    code: "L007",
                    severity: Severity::Error,
                    // `L(A)` on line 2: `λ ↠ ` occupies bytes 13..20
                    span: Span::new(20, 24),
                    message: "unresolvable".into(),
                    suggestion: None,
                },
            ],
        };
        (report, src)
    }

    #[test]
    fn counts_and_exit_policy() {
        let (report, _) = sample();
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);
        assert!(!report.is_clean());
        assert!(report.fails(false));
        let clean = LintReport::default();
        assert!(!clean.fails(true));
        let warn_only = LintReport {
            diagnostics: vec![report.diagnostics[0].clone()],
        };
        assert!(!warn_only.fails(false));
        assert!(warn_only.fails(true));
    }

    #[test]
    fn human_rendering_aligns_carets_by_characters() {
        let (report, src) = sample();
        let text = render_human(&report, "demo.deps", src);
        assert!(text.contains("warning[L001]: trivial dependency"));
        assert!(text.contains("--> demo.deps:1:1"));
        assert!(text.contains("1 | L(A) -> L(B)"));
        assert!(text.contains(" | ^^^^^^^^^^^^\n"));
        // the second diagnostic points at `L(A)` on line 2: `λ ↠ ` is 4
        // chars (but 8 bytes), so the column is 5 and the caret width 4
        assert!(text.contains("--> demo.deps:2:5"));
        assert!(text.contains("2 | λ ↠ L(A)"));
        assert!(text.contains(" |     ^^^^\n"));
        assert!(text.contains("= help: remove it"));
        assert!(text.contains("lint: 1 error, 1 warning emitted"));
    }

    #[test]
    fn clean_report_renders_empty_human_output() {
        assert_eq!(render_human(&LintReport::default(), "x", ""), "");
    }

    #[test]
    fn json_rendering_has_expected_fields() {
        let (report, src) = sample();
        let text = render_json(&report, "demo.deps", src);
        assert!(text.contains("\"file\": \"demo.deps\""));
        assert!(text.contains("\"errors\": 1"));
        assert!(text.contains("\"warnings\": 1"));
        assert!(text.contains("\"code\": \"L001\""));
        assert!(text.contains("\"suggestion\": null"));
        assert!(text.contains("\"text\": \"L(A) -> L(B)\""));
    }

    #[test]
    fn locate_handles_crlf_and_eof() {
        let src = "ab\r\ncd";
        let l = locate(src, 5);
        assert_eq!((l.line, l.column, l.text), (2, 2, "cd"));
        let end = locate(src, 6);
        assert_eq!((end.line, end.column), (2, 3));
        let past = locate(src, 99);
        assert_eq!(past.line, 2);
    }
}
