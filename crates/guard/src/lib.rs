//! # nalist-guard
//!
//! Resource governance for the reasoning core: every potentially
//! expensive computation in the workspace (closure fixpoints, algebra
//! construction, lattice enumeration, the chase, spec loading) accepts a
//! [`Budget`] and turns exhaustion into a structured
//! [`ResourceExhausted`] error instead of hanging, overflowing the stack
//! or exhausting memory.
//!
//! The contract every governed entry point upholds:
//!
//! > Return `Ok` or a structured `Err` within the configured deadline —
//! > never panic on user input, never run more than a small constant
//! > factor past the budget.
//!
//! A [`Budget`] bundles four independent limits plus a cooperative
//! [`CancelToken`]:
//!
//! * **fuel** — an abstract work counter; governed loops call
//!   [`Budget::charge`] once per unit of work (one dependency step, one
//!   chase insertion, one enumerated lattice element, …);
//! * **deadline** — a wall-clock instant, re-checked on every charge;
//! * **max_atoms** — refuses to build algebras over schemas whose basis
//!   `SubB(N)` is larger than the limit (the `O(|N|⁴·|Σ|)` membership
//!   bound makes atom count *the* cost driver);
//! * **max_depth** — caps attribute-nesting depth at parse time (deep
//!   `L[L[…]]` towers are otherwise a stack-overflow vector: parsing,
//!   rendering and even `Drop` recurse over the tree).
//!
//! An unarmed budget ([`Budget::unlimited`] with no fail points) keeps
//! the hot path almost free: `charge` is one relaxed atomic add and one
//! branch.
//!
//! ## Fault injection
//!
//! For chaos testing, a budget can carry [`FailPoint`]s keyed by site
//! name. Governed code calls [`Budget::failpoint`] at well-known sites
//! (e.g. `"membership::closure"`); a matching fail point either forces a
//! `ResourceExhausted` error or panics, letting the test suite prove
//! that exhaustion surfaces as a structured error everywhere and that
//! batch APIs isolate a panicking worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which limit was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// The fuel counter ran out ([`Budget::with_fuel`]).
    Fuel,
    /// The wall-clock deadline passed ([`Budget::with_deadline_in`]).
    Deadline,
    /// The schema's basis `SubB(N)` is larger than allowed
    /// ([`Budget::with_max_atoms`]).
    Atoms,
    /// Attribute nesting is deeper than allowed
    /// ([`Budget::with_max_depth`]).
    Depth,
    /// The [`CancelToken`] was triggered.
    Cancelled,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceKind::Fuel => "fuel",
            ResourceKind::Deadline => "deadline",
            ResourceKind::Atoms => "atoms",
            ResourceKind::Depth => "depth",
            ResourceKind::Cancelled => "cancelled",
        })
    }
}

/// Structured exhaustion report: which limit, how much was spent when it
/// tripped, and what the limit was. Units depend on the kind — fuel
/// units, elapsed milliseconds, atom count, nesting depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceExhausted {
    /// The exceeded limit.
    pub kind: ResourceKind,
    /// Amount spent when the limit tripped (same unit as `limit`).
    pub spent: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for ResourceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ResourceKind::Fuel => write!(
                f,
                "fuel budget exhausted: {} of {} units spent",
                self.spent, self.limit
            ),
            ResourceKind::Deadline => write!(
                f,
                "deadline exceeded: {} ms elapsed of a {} ms budget",
                self.spent, self.limit
            ),
            ResourceKind::Atoms => write!(
                f,
                "schema too large: {} basis attributes, limit is {}",
                self.spent, self.limit
            ),
            ResourceKind::Depth => write!(
                f,
                "nesting too deep: depth {} exceeds the limit of {}",
                self.spent, self.limit
            ),
            ResourceKind::Cancelled => write!(f, "computation cancelled"),
        }
    }
}

impl std::error::Error for ResourceExhausted {}

/// A cooperative cancellation flag, cheap to clone and share across
/// threads. Governed loops observe it on every [`Budget::charge`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every budget carrying this token fails its
    /// next check with [`ResourceKind::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// What an armed [`FailPoint`] does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return a [`ResourceExhausted`] error with [`ResourceKind::Fuel`],
    /// simulating budget exhaustion at the site.
    ExhaustFuel,
    /// Panic with a recognisable message, simulating a poisoned
    /// computation (exercises the batch APIs' panic isolation).
    Panic,
    /// Panic via `std::panic::panic_any` with a typed [`InjectedPanic`]
    /// payload — *not* a `String` — exercising the batch APIs' handling
    /// of non-string panic payloads.
    PanicPayload,
}

/// The typed (non-`String`) payload thrown by [`FailAction::PanicPayload`].
/// Batch APIs must surface its type name rather than dropping it as an
/// anonymous "non-string panic payload".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The fail-point site that threw.
    pub site: String,
}

/// A fault-injection hook: when a [`Budget`] carries a fail point whose
/// `site` matches the name passed to [`Budget::failpoint`], the action
/// fires — either on every hit or only on the `n`-th.
#[derive(Debug)]
pub struct FailPoint {
    site: String,
    action: FailAction,
    /// Fire only on the hit with this 0-based index, or on every hit
    /// when `None`.
    fire_on: Option<u64>,
    hits: AtomicU64,
}

impl FailPoint {
    /// Fires `action` on every hit of `site`.
    pub fn every(site: impl Into<String>, action: FailAction) -> Self {
        FailPoint {
            site: site.into(),
            action,
            fire_on: None,
            hits: AtomicU64::new(0),
        }
    }

    /// Fires `action` only on the `n`-th hit of `site` (0-based); other
    /// hits pass through untouched.
    pub fn nth(site: impl Into<String>, n: u64, action: FailAction) -> Self {
        FailPoint {
            site: site.into(),
            action,
            fire_on: Some(n),
            hits: AtomicU64::new(0),
        }
    }

    /// Number of times this site has been hit so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The site name this fail point is armed at.
    pub fn site(&self) -> &str {
        &self.site
    }
}

/// The message carried by panics injected via [`FailAction::Panic`];
/// batch APIs surface it in their per-item error.
pub const INJECTED_PANIC: &str = "injected fault: simulated worker panic";

/// How often (in charges) the wall clock is consulted when a deadline is
/// set. Sampling keeps `Instant::now` off the per-step hot path while
/// bounding the overshoot to `DEADLINE_STRIDE` steps past the deadline.
const DEADLINE_STRIDE: u64 = 64;

/// A resource budget shared by a computation (and, for batch APIs, by
/// all its workers — limits are global to the budget, not per worker).
///
/// ```
/// use nalist_guard::{Budget, ResourceKind};
///
/// let b = Budget::unlimited().with_fuel(2);
/// assert!(b.charge(1).is_ok());
/// assert!(b.charge(1).is_ok());
/// let err = b.charge(1).unwrap_err();
/// assert_eq!(err.kind, ResourceKind::Fuel);
/// assert_eq!(err.limit, 2);
/// ```
#[derive(Debug, Default)]
pub struct Budget {
    fuel: Option<u64>,
    deadline: Option<Instant>,
    /// Total deadline window in ms (for error reporting only).
    window_ms: u64,
    started: Option<Instant>,
    max_atoms: Option<u64>,
    max_depth: Option<u64>,
    cancel: Option<CancelToken>,
    failpoints: Vec<FailPoint>,
    spent: AtomicU64,
}

impl Budget {
    /// A budget with no limits: every check passes, `charge` only counts.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps the abstract work counter at `fuel` units.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Sets a wall-clock deadline `window` from now.
    #[must_use]
    pub fn with_deadline_in(mut self, window: Duration) -> Self {
        let now = Instant::now();
        self.started = Some(now);
        self.deadline = Some(now + window);
        self.window_ms = window.as_millis().min(u128::from(u64::MAX)) as u64;
        self
    }

    /// Caps the number of basis attributes (atoms) a schema may have.
    #[must_use]
    pub fn with_max_atoms(mut self, n: u64) -> Self {
        self.max_atoms = Some(n);
        self
    }

    /// Caps attribute-nesting depth.
    #[must_use]
    pub fn with_max_depth(mut self, d: u64) -> Self {
        self.max_depth = Some(d);
        self
    }

    /// Attaches a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arms a fault-injection point (chaos testing).
    #[must_use]
    pub fn with_failpoint(mut self, fp: FailPoint) -> Self {
        self.failpoints.push(fp);
        self
    }

    /// Fuel spent so far (monotone, shared across workers).
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The configured atom cap, if any.
    pub fn max_atoms(&self) -> Option<u64> {
        self.max_atoms
    }

    /// The configured depth cap, if any.
    pub fn max_depth(&self) -> Option<u64> {
        self.max_depth
    }

    /// Milliseconds elapsed since the deadline window opened.
    fn elapsed_ms(&self) -> u64 {
        self.started.map_or(0, |s| {
            s.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
        })
    }

    /// Records `units` of work and fails if any limit has been reached.
    ///
    /// This is the one call governed loops make per step. The deadline is
    /// sampled every [`DEADLINE_STRIDE`] charges (and on the first), so a
    /// loop overruns its deadline by at most that many steps.
    pub fn charge(&self, units: u64) -> Result<(), ResourceExhausted> {
        let before = self.spent.fetch_add(units, Ordering::Relaxed);
        let spent = before + units;
        if let Some(fuel) = self.fuel {
            if spent > fuel {
                return Err(ResourceExhausted {
                    kind: ResourceKind::Fuel,
                    spent,
                    limit: fuel,
                });
            }
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(ResourceExhausted {
                    kind: ResourceKind::Cancelled,
                    spent,
                    limit: 0,
                });
            }
        }
        if self.deadline.is_some()
            && (before / DEADLINE_STRIDE != spent / DEADLINE_STRIDE || before == 0)
        {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Checks only the wall clock (and cancellation) — for sites that do
    /// a large amount of work per step and want an explicit check.
    pub fn check_deadline(&self) -> Result<(), ResourceExhausted> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(ResourceExhausted {
                    kind: ResourceKind::Cancelled,
                    spent: self.spent(),
                    limit: 0,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(ResourceExhausted {
                    kind: ResourceKind::Deadline,
                    spent: self.elapsed_ms(),
                    limit: self.window_ms,
                });
            }
        }
        Ok(())
    }

    /// Fails if a schema with `atoms` basis attributes exceeds the cap.
    pub fn check_atoms(&self, atoms: usize) -> Result<(), ResourceExhausted> {
        match self.max_atoms {
            Some(limit) if atoms as u64 > limit => Err(ResourceExhausted {
                kind: ResourceKind::Atoms,
                spent: atoms as u64,
                limit,
            }),
            _ => Ok(()),
        }
    }

    /// Fails if nesting depth `depth` exceeds the cap.
    pub fn check_depth(&self, depth: usize) -> Result<(), ResourceExhausted> {
        match self.max_depth {
            Some(limit) if depth as u64 > limit => Err(ResourceExhausted {
                kind: ResourceKind::Depth,
                spent: depth as u64,
                limit,
            }),
            _ => Ok(()),
        }
    }

    /// Fault-injection site marker. A no-op unless this budget carries a
    /// matching [`FailPoint`], in which case the armed action fires:
    /// [`FailAction::ExhaustFuel`] returns an error,
    /// [`FailAction::Panic`] panics with [`INJECTED_PANIC`].
    pub fn failpoint(&self, site: &str) -> Result<(), ResourceExhausted> {
        for fp in &self.failpoints {
            if fp.site != site {
                continue;
            }
            let hit = fp.hits.fetch_add(1, Ordering::Relaxed);
            let fires = match fp.fire_on {
                None => true,
                Some(n) => n == hit,
            };
            if !fires {
                continue;
            }
            match fp.action {
                FailAction::ExhaustFuel => {
                    return Err(ResourceExhausted {
                        kind: ResourceKind::Fuel,
                        spent: self.spent(),
                        limit: self.fuel.unwrap_or(0),
                    })
                }
                FailAction::Panic => panic!("{INJECTED_PANIC} (site: {site})"),
                FailAction::PanicPayload => std::panic::panic_any(InjectedPanic {
                    site: site.to_owned(),
                }),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.charge(1).unwrap();
        }
        b.check_atoms(usize::MAX).unwrap();
        b.check_depth(usize::MAX).unwrap();
        b.check_deadline().unwrap();
        b.failpoint("anywhere").unwrap();
        assert_eq!(b.spent(), 10_000);
    }

    #[test]
    fn fuel_exhaustion_is_structured() {
        let b = Budget::unlimited().with_fuel(5);
        for _ in 0..5 {
            b.charge(1).unwrap();
        }
        let e = b.charge(1).unwrap_err();
        assert_eq!(e.kind, ResourceKind::Fuel);
        assert_eq!(e.spent, 6);
        assert_eq!(e.limit, 5);
        assert!(e.to_string().contains("fuel"));
    }

    #[test]
    fn deadline_trips_within_a_stride() {
        let b = Budget::unlimited().with_deadline_in(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(5));
        let mut tripped = None;
        for i in 0..=DEADLINE_STRIDE {
            if let Err(e) = b.charge(1) {
                tripped = Some((i, e));
                break;
            }
        }
        let (steps, e) = tripped.expect("deadline must trip within one stride");
        assert!(steps <= DEADLINE_STRIDE);
        assert_eq!(e.kind, ResourceKind::Deadline);
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn atom_and_depth_caps() {
        let b = Budget::unlimited().with_max_atoms(10).with_max_depth(3);
        b.check_atoms(10).unwrap();
        let e = b.check_atoms(11).unwrap_err();
        assert_eq!(e.kind, ResourceKind::Atoms);
        b.check_depth(3).unwrap();
        let e = b.check_depth(4).unwrap_err();
        assert_eq!(e.kind, ResourceKind::Depth);
        assert_eq!((e.spent, e.limit), (4, 3));
    }

    #[test]
    fn cancellation_observed_on_charge() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        b.charge(1).unwrap();
        token.cancel();
        assert!(token.is_cancelled());
        let e = b.charge(1).unwrap_err();
        assert_eq!(e.kind, ResourceKind::Cancelled);
    }

    #[test]
    fn failpoint_exhaust_fires_on_matching_site_only() {
        let b =
            Budget::unlimited().with_failpoint(FailPoint::every("here", FailAction::ExhaustFuel));
        b.failpoint("elsewhere").unwrap();
        let e = b.failpoint("here").unwrap_err();
        assert_eq!(e.kind, ResourceKind::Fuel);
    }

    #[test]
    fn failpoint_nth_fires_once() {
        let b = Budget::unlimited().with_failpoint(FailPoint::nth("s", 1, FailAction::ExhaustFuel));
        b.failpoint("s").unwrap(); // hit 0
        assert!(b.failpoint("s").is_err()); // hit 1 fires
        b.failpoint("s").unwrap(); // hit 2 passes again
    }

    #[test]
    fn failpoint_panic_panics_with_marker() {
        let b = Budget::unlimited().with_failpoint(FailPoint::every("p", FailAction::Panic));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.failpoint("p")));
        let payload = r.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a formatted String");
        assert!(msg.contains(INJECTED_PANIC));
    }

    #[test]
    fn failpoint_panic_payload_throws_typed_payload() {
        let b = Budget::unlimited().with_failpoint(FailPoint::every("p", FailAction::PanicPayload));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.failpoint("p")));
        let payload = r.unwrap_err();
        let injected = payload
            .downcast_ref::<InjectedPanic>()
            .expect("panic payload is the typed InjectedPanic struct");
        assert_eq!(injected.site, "p");
    }

    #[test]
    fn budget_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Budget>();
        assert_send_sync::<CancelToken>();
    }
}
