//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of `rand` it actually uses: the [`Rng`]/[`RngCore`]
//! traits with `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`] backed by xoshiro256++ seeded via
//! SplitMix64. All generators here are deterministic and NOT
//! cryptographically secure — they exist for reproducible test/benchmark
//! workload generation only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool requires 0 <= p <= 1");
        // 53 high bits give a uniform f64 in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator engines.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ engine standing in for `rand`'s
    /// `StdRng`. Stream values differ from the real `StdRng` (ChaCha12);
    /// only determinism per seed is guaranteed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small fast engine; identical to [`StdRng`] in this subset.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0usize..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
