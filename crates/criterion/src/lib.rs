//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `criterion` its `[[bench]]` targets use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`warm_up_time`/
//! `measurement_time`/`throughput`, `bench_function`/`bench_with_input`,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Statistics are deliberately simple — per benchmark it reports
//! the median, min, and max of the sample wall-clock times, plus derived
//! element throughput when configured. No HTML reports, no regression
//! analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-exported so benches can use `criterion::black_box` if desired.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark with default settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut group = self.benchmark_group(name);
        group.run(name.to_string(), &mut f);
        group.finish();
    }
}

/// Unit of work processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total time spent collecting samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let mut wrapped = |b: &mut Bencher| f(b, input);
        self.run(id.to_string(), &mut wrapped);
        self
    }

    /// Benchmarks `f` under a plain string name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run(name.to_string(), &mut f);
        self
    }

    /// Ends the group (report lines are printed eagerly, so this is a
    /// formatting no-op kept for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                deadline: Instant::now() + self.warm_up_time,
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.mode = Mode::Measure {
            remaining: self.sample_size,
            deadline: Instant::now() + self.measurement_time,
        };
        f(&mut bencher);

        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("  {label:<40} (no samples)");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        let mut line = format!(
            "  {label:<40} median {:>12}  [{} .. {}]  ({} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            samples.len()
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if median > 0 {
                let rate = count as f64 * 1e9 / median as f64;
                line.push_str(&format!("  {rate:.0} {unit}"));
            }
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[derive(Debug)]
enum Mode {
    WarmUp { deadline: Instant },
    Measure { remaining: usize, deadline: Instant },
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: Vec<u128>,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call in measure mode.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            Mode::WarmUp { deadline } => {
                let deadline = *deadline;
                loop {
                    black_box(routine());
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
            Mode::Measure {
                remaining,
                deadline,
            } => {
                let (target, deadline) = (*remaining, *deadline);
                for i in 0..target {
                    let start = Instant::now();
                    black_box(routine());
                    self.samples.push(start.elapsed().as_nanos());
                    // always record at least one sample before honouring
                    // the measurement-time budget
                    if i > 0 && Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

/// Bundles benchmark functions into a runner, mirroring
/// `criterion::criterion_group!` (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the named groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-selftest");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("id", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_runs_and_samples() {
        benches();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
