//! # nalist-obs
//!
//! Hand-rolled observability for the reasoning stack — no external
//! dependencies, matching the workspace's vendored-crates policy.
//!
//! The design mirrors how [`nalist-guard`'s] `Budget` is threaded through
//! the stack: every instrumented algorithm takes a `&dyn` [`Recorder`]
//! and emits three kinds of events:
//!
//! * **spans** — [`Recorder::enter`] / [`Recorder::exit`] pairs carrying
//!   a static site id (e.g. `"membership::worklist"`) and a `u64`
//!   payload each way (typically "input size" on enter, "work done" on
//!   exit). Spans are *coarse*: one per fixpoint run, chase, batch
//!   group or CLI command — never per inner-loop step — so the
//!   `Mutex`-protected span buffer is off the hot path by construction.
//! * **counters** — [`Recorder::add`] on a fixed [`Counter`] enum;
//!   one relaxed atomic add, lock-free.
//! * **histograms** — [`Recorder::observe`] on a fixed [`Hist`] enum;
//!   log2-bucketed (65 buckets: zero plus one per leading-bit
//!   position), three relaxed atomic adds, lock-free.
//!
//! [`NoopRecorder`] implements every method as an inline empty body and
//! reports [`Recorder::enabled`]` == false`, so instrumented code can
//! skip even the payload computation when observability is off; the
//! optimizer erases the rest.
//!
//! Counters are *deterministic* for a fixed workload (they count
//! algebraic work — dependencies fired, atoms allocated, cache misses —
//! not time), which is what lets CI pin them with equality checks while
//! wall-clock numbers get a loose band. See `DESIGN.md` § Observability.
//!
//! [`nalist-guard`'s]: ../nalist_guard/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Well-known span site ids. Sites are `&'static str` so recorders can
/// store them without allocation; the constants keep call sites and the
/// trace/metrics consumers in sync.
pub mod site {
    /// One CLI command invocation (root span).
    pub const CLI_COMMAND: &str = "cli::command";
    /// One worklist fixpoint run (Algorithm 5.1 closure phase).
    pub const WORKLIST: &str = "membership::worklist";
    /// One paper-order (REPEAT-UNTIL) closure run.
    pub const CLOSURE_PAPER: &str = "membership::closure";
    /// Atom/basis construction for a schema (`Algebra::try_new`).
    pub const ATOMS: &str = "algebra::atoms";
    /// One chase run to a fixpoint.
    pub const CHASE: &str = "deps::chase";
    /// One dependency-basis cache lookup (enter payload: LHS popcount;
    /// exit payload: 1 = hit, 0 = miss).
    pub const CACHE_LOOKUP: &str = "cache::lookup";
    /// One selective-eviction sweep after an `add`/`remove` edit
    /// (exit payload: entries evicted).
    pub const CACHE_EVICT: &str = "cache::evict";
    /// One batch-planner group (all queries sharing an LHS; enter
    /// payload: member count).
    pub const BATCH_GROUP: &str = "batch::group";
    /// One query inside a batch (enter payload: original query index).
    pub const BATCH_QUERY: &str = "batch::query";
    /// One certificate verification run (`nalist check`; exit payload:
    /// 1 = accepted, 0 = rejected).
    pub const CHECK_VERIFY: &str = "check::verify";
    /// One tenant construction in the service layer (enter payload:
    /// initial |Σ|; exit payload: 1 = created, 0 = recovered from a
    /// snapshot). Requests deliberately get **no** span: a long-lived
    /// server would grow the span buffer without bound. The request
    /// path reports through counters and the `request_ns` histogram
    /// instead.
    pub const SERVE_TENANT: &str = "serve::tenant";
}

/// Monotone work counters. The set is closed — a fixed enum instead of
/// string keys — so the registry is a flat atomic array with no hashing
/// on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Dependencies that fired (changed the closure) across all
    /// worklist fixpoint runs.
    DepsFired,
    /// Worklist steps (one dequeued dependency inspection) across all
    /// fixpoint runs.
    WorklistSteps,
    /// Basis attributes (atoms) allocated by algebra construction.
    AtomsAllocated,
    /// Dependency-basis cache hits.
    CacheHits,
    /// Dependency-basis cache misses.
    CacheMisses,
    /// Cache entries evicted by selective invalidation.
    CacheEvicted,
    /// Cache entries retained by selective invalidation.
    CacheRetained,
    /// Chase rounds run to fixpoint.
    ChaseRounds,
    /// Tuples inserted by the chase.
    ChaseTuples,
    /// Queries evaluated through the batch planner.
    BatchQueries,
    /// Planner groups a batch worker took from another worker's queue.
    BatchSteals,
    /// Planner groups a batch worker took from its own local queue
    /// (shard-affine work that stayed where it was seeded).
    BatchLocalHits,
    /// Effective worker count, added once per planned batch run (the
    /// requested thread count clamped to the number of planner groups).
    BatchThreads,
    /// Budget fuel spent, flushed once at the end of a governed run.
    FuelSpent,
    /// Derivation nodes replayed by the certificate checker.
    CertNodes,
    /// Witness tuples re-verified by the certificate checker.
    CertTuples,
    /// Records appended to the write-ahead log.
    WalAppends,
    /// fsyncs issued by WAL appends (only counted when the log is in
    /// durable mode).
    WalFsyncs,
    /// Snapshot files written (atomically) to disk.
    SnapshotWrites,
    /// WAL operations replayed through the incremental edit path
    /// during crash recovery.
    RecoveryReplayedOps,
    /// TCP connections accepted by the service listener (admitted or
    /// not).
    ConnsAccepted,
    /// HTTP requests fully parsed and dispatched by the service.
    HttpRequests,
    /// Requests served on an already-used connection (request ≥ 2 on a
    /// keep-alive connection).
    KeepaliveReuses,
    /// Connections refused by admission control (queue full → 503) and
    /// requests refused by the per-request budget (fuel/deadline → 429).
    AdmissionRejects,
    /// Requests whose worker caught a handler panic (answered 500; the
    /// worker survives).
    RequestPanics,
    /// WAL records shipped to replication followers (leader side,
    /// counted per record served by `GET /v1/{t}/wal`).
    ReplRecordsShipped,
    /// Shipped WAL records applied through the incremental edit path
    /// on a replication follower.
    ReplRecordsApplied,
    /// Replication lag observed at WAL polls, in bytes behind the
    /// leader's log end, summed over polls (a caught-up follower adds
    /// 0 per poll; live instantaneous lag is in the follower's
    /// `/healthz`).
    ReplLag,
    /// Full snapshot bootstraps a follower performed (initial catch-up
    /// plus every re-snapshot the compaction handshake forced).
    SnapshotBootstraps,
}

impl Counter {
    /// Every counter, in declaration (and serialization) order.
    pub const ALL: [Counter; 29] = [
        Counter::DepsFired,
        Counter::WorklistSteps,
        Counter::AtomsAllocated,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheEvicted,
        Counter::CacheRetained,
        Counter::ChaseRounds,
        Counter::ChaseTuples,
        Counter::BatchQueries,
        Counter::BatchSteals,
        Counter::BatchLocalHits,
        Counter::BatchThreads,
        Counter::FuelSpent,
        Counter::CertNodes,
        Counter::CertTuples,
        Counter::WalAppends,
        Counter::WalFsyncs,
        Counter::SnapshotWrites,
        Counter::RecoveryReplayedOps,
        Counter::ConnsAccepted,
        Counter::HttpRequests,
        Counter::KeepaliveReuses,
        Counter::AdmissionRejects,
        Counter::RequestPanics,
        Counter::ReplRecordsShipped,
        Counter::ReplRecordsApplied,
        Counter::ReplLag,
        Counter::SnapshotBootstraps,
    ];

    /// Stable snake_case name used in `--metrics` JSON and the perf
    /// baseline.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DepsFired => "deps_fired",
            Counter::WorklistSteps => "worklist_steps",
            Counter::AtomsAllocated => "atoms_allocated",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheEvicted => "cache_evicted",
            Counter::CacheRetained => "cache_retained",
            Counter::ChaseRounds => "chase_rounds",
            Counter::ChaseTuples => "chase_tuples",
            Counter::BatchQueries => "batch_queries",
            Counter::BatchSteals => "batch_steals",
            Counter::BatchLocalHits => "batch_local_hits",
            Counter::BatchThreads => "batch_threads",
            Counter::FuelSpent => "fuel_spent",
            Counter::CertNodes => "cert_nodes",
            Counter::CertTuples => "cert_tuples",
            Counter::WalAppends => "wal_appends",
            Counter::WalFsyncs => "wal_fsyncs",
            Counter::SnapshotWrites => "snapshot_writes",
            Counter::RecoveryReplayedOps => "recovery_replayed_ops",
            Counter::ConnsAccepted => "conns_accepted",
            Counter::HttpRequests => "requests",
            Counter::KeepaliveReuses => "keepalive_reuses",
            Counter::AdmissionRejects => "admission_rejects",
            Counter::RequestPanics => "request_panics",
            Counter::ReplRecordsShipped => "repl_records_shipped",
            Counter::ReplRecordsApplied => "repl_records_applied",
            Counter::ReplLag => "repl_lag",
            Counter::SnapshotBootstraps => "snapshot_bootstraps",
        }
    }
}

/// Log2-bucketed histograms for latency / work distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Wall nanoseconds per batch query.
    QueryNs,
    /// Wall nanoseconds per batch-planner group.
    GroupNs,
    /// Dependencies fired per closure fixpoint run.
    FiredPerClosure,
    /// Admission-queue depth sampled at each enqueue attempt (the
    /// connections already waiting when a new one arrives).
    QueueDepth,
    /// Wall nanoseconds per HTTP request, parse to last response byte.
    RequestNs,
}

impl Hist {
    /// Every histogram, in declaration (and serialization) order.
    pub const ALL: [Hist; 5] = [
        Hist::QueryNs,
        Hist::GroupNs,
        Hist::FiredPerClosure,
        Hist::QueueDepth,
        Hist::RequestNs,
    ];

    /// Stable snake_case name used in `--metrics` JSON.
    pub fn name(self) -> &'static str {
        match self {
            Hist::QueryNs => "query_ns",
            Hist::GroupNs => "group_ns",
            Hist::FiredPerClosure => "fired_per_closure",
            Hist::QueueDepth => "queue_depth",
            Hist::RequestNs => "request_ns",
        }
    }
}

/// Number of log2 buckets: bucket 0 holds value 0, bucket `k` (1..=64)
/// holds values whose highest set bit is bit `k-1`, i.e. `[2^(k-1), 2^k)`.
pub const BUCKETS: usize = 65;

/// Bucket index for a histogram value (see [`BUCKETS`]).
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Opaque handle returned by [`Recorder::enter`], passed back to
/// [`Recorder::exit`]. The noop token is inert.
#[derive(Debug, Clone, Copy)]
pub struct SpanToken(usize);

impl SpanToken {
    const NOOP: SpanToken = SpanToken(usize::MAX);
}

/// The observability sink. Implementations must be cheap and must never
/// perturb the computation they observe (asserted by proptest: noop and
/// metrics recorders yield bit-identical reasoning results).
pub trait Recorder: Send + Sync + fmt::Debug {
    /// `false` means callers may skip payload computation entirely;
    /// instrumented hot loops check this once, outside the loop.
    fn enabled(&self) -> bool;

    /// Opens a span at `site`. `payload` conventionally carries the
    /// input size (deps in Σ, atom count, group size, …).
    fn enter(&self, site: &'static str, payload: u64) -> SpanToken;

    /// Closes a span. `payload` conventionally carries the work done
    /// (deps fired, entries evicted, 1/0 for hit/miss, …).
    fn exit(&self, token: SpanToken, payload: u64);

    /// Adds `n` to a counter. One relaxed atomic add when enabled.
    fn add(&self, counter: Counter, n: u64);

    /// Records one observation into a histogram.
    fn observe(&self, hist: Hist, value: u64);

    /// Point-in-time snapshot, when this recorder keeps state
    /// ([`MetricsRecorder`] does; the default — and [`NoopRecorder`] —
    /// report `None`). Lets long-lived consumers (the serve layer's
    /// `GET /metrics`) expose whatever recorder they were handed
    /// without knowing its concrete type.
    fn try_snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// The disabled recorder: every method is an inline empty body, so an
/// instrumented call site costs one predictable branch at most — in
/// practice the optimizer removes it entirely (asserted by the
/// perf-smoke noop-overhead comparison).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn enter(&self, _site: &'static str, _payload: u64) -> SpanToken {
        SpanToken::NOOP
    }

    #[inline(always)]
    fn exit(&self, _token: SpanToken, _payload: u64) {}

    #[inline(always)]
    fn add(&self, _counter: Counter, _n: u64) {}

    #[inline(always)]
    fn observe(&self, _hist: Hist, _value: u64) {}
}

/// The shared disabled recorder — ungoverned/unobserved entry points
/// delegate here, mirroring `Budget::unlimited()`.
#[must_use]
pub fn noop() -> &'static NoopRecorder {
    static NOOP: NoopRecorder = NoopRecorder;
    &NOOP
}

/// One atomic histogram: count, sum, and 65 log2 buckets.
#[derive(Debug)]
struct HistCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistCore {
    fn new() -> Self {
        HistCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One recorded span, exposed via [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static site id (one of [`site`]'s constants, or caller-defined).
    pub site: &'static str,
    /// Payload passed to [`Recorder::enter`].
    pub payload_in: u64,
    /// Payload passed to [`Recorder::exit`] (0 if the span never exited,
    /// e.g. the computation errored out between enter and exit).
    pub payload_out: u64,
    /// Nesting depth within the opening thread (0 = root).
    pub depth: u32,
    /// Dense per-recorder-process thread index (0 = first thread seen).
    pub thread: u32,
    /// Start offset in nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 if the span never exited).
    pub dur_ns: u64,
}

/// Point-in-time copy of a [`MetricsRecorder`]'s state.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-histogram summaries, in [`Hist::ALL`] order.
    pub hists: Vec<HistSnapshot>,
    /// All spans recorded so far, in enter order.
    pub spans: Vec<SpanRecord>,
    /// Nanoseconds since the recorder was created.
    pub elapsed_ns: u64,
}

/// Summary of one histogram.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Stable name ([`Hist::name`]).
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`), or `None` when the histogram is empty. Log2
    /// buckets make this a ≤2× overestimate — good enough for coarse
    /// latency bounds (smoke-test p99 checks), not for benchmarks,
    /// which record exact samples instead.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // bucket 0 holds the value 0; bucket k holds [2^(k-1), 2^k)
        let upper = |ix: usize| -> u64 {
            match ix {
                0 => 0,
                1..=63 => (1u64 << ix) - 1,
                _ => u64::MAX,
            }
        };
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(ix, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(upper(ix));
            }
        }
        self.buckets.last().map(|&(ix, _)| upper(ix))
    }
}

/// JSON string escape (quotes included) for the metrics document.
/// Local to `obs` because the crate deliberately has no dependencies;
/// the richer parser lives in `nalist-types`.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialises a [`MetricsSnapshot`] as the `--metrics` / `GET /metrics`
/// JSON document (`schema_version` 2). Every counter in
/// [`Counter::ALL`] order and every histogram appear unconditionally,
/// so consumers can rely on the full key set; spans carry the fields of
/// [`SpanRecord`] verbatim. `in_progress` marks mid-run flushes from
/// long-lived commands (serve, replay), whose `exit_code` is
/// necessarily provisional.
#[must_use]
pub fn render_snapshot_json(
    command: &str,
    exit_code: i32,
    in_progress: bool,
    snap: &MetricsSnapshot,
) -> String {
    render_snapshot_json_with(command, exit_code, in_progress, snap, &[])
}

/// [`render_snapshot_json`] with extra top-level fields: each
/// `(key, raw_json_value)` pair is emitted verbatim after the stamp
/// fields. The fixed key set of the base document is unchanged —
/// consumers that rely on it keep working; the serve layer uses this
/// to add a `replication` object to a follower's `GET /metrics`.
#[must_use]
pub fn render_snapshot_json_with(
    command: &str,
    exit_code: i32,
    in_progress: bool,
    snap: &MetricsSnapshot,
    extras: &[(&str, String)],
) -> String {
    use fmt::Write as _;
    let mut out = String::from("{\n");
    writeln!(out, "  \"schema_version\": 2,").unwrap();
    for (key, value) in extras {
        writeln!(out, "  {}: {value},", json_escape(key)).unwrap();
    }
    writeln!(out, "  \"command\": {},", json_escape(command)).unwrap();
    writeln!(out, "  \"exit_code\": {exit_code},").unwrap();
    writeln!(out, "  \"in_progress\": {in_progress},").unwrap();
    // Honest machine stamp: consumers comparing metrics across hosts
    // (or reading `batch_threads`) need to know how many CPUs the run
    // actually had.
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    writeln!(out, "  \"cpus\": {cpus},").unwrap();
    writeln!(out, "  \"elapsed_ns\": {},", snap.elapsed_ns).unwrap();
    out.push_str("  \"counters\": {\n");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        let sep = if i + 1 == snap.counters.len() {
            ""
        } else {
            ","
        };
        writeln!(out, "    {}: {value}{sep}", json_escape(name)).unwrap();
    }
    out.push_str("  },\n  \"histograms\": [\n");
    for (i, h) in snap.hists.iter().enumerate() {
        let sep = if i + 1 == snap.hists.len() { "" } else { "," };
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(ix, n)| format!("[{ix}, {n}]"))
            .collect();
        writeln!(
            out,
            "    {{\"name\": {}, \"count\": {}, \"sum\": {}, \"buckets\": [{}]}}{sep}",
            json_escape(h.name),
            h.count,
            h.sum,
            buckets.join(", ")
        )
        .unwrap();
    }
    out.push_str("  ],\n  \"spans\": [\n");
    for (i, s) in snap.spans.iter().enumerate() {
        let sep = if i + 1 == snap.spans.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"site\": {}, \"thread\": {}, \"depth\": {}, \"payload_in\": {}, \
             \"payload_out\": {}, \"start_ns\": {}, \"dur_ns\": {}}}{sep}",
            json_escape(s.site),
            s.thread,
            s.depth,
            s.payload_in,
            s.payload_out,
            s.start_ns,
            s.dur_ns
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

thread_local! {
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    static THREAD_IX: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
}

static NEXT_THREAD_IX: AtomicU32 = AtomicU32::new(0);

fn thread_ix() -> u32 {
    THREAD_IX.with(|c| {
        let v = c.get();
        if v != u32::MAX {
            return v;
        }
        let fresh = NEXT_THREAD_IX.fetch_add(1, Ordering::Relaxed);
        c.set(fresh);
        fresh
    })
}

/// The real recorder: lock-free counters and histograms, a mutex-guarded
/// span buffer (spans are coarse by convention, so the lock is cold).
#[derive(Debug)]
pub struct MetricsRecorder {
    origin: Instant,
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [HistCore; Hist::ALL.len()],
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::new()
    }
}

impl MetricsRecorder {
    /// A fresh recorder; the creation instant anchors all span offsets.
    #[must_use]
    pub fn new() -> Self {
        MetricsRecorder {
            origin: Instant::now(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistCore::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Copies out counters, histograms and spans.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.counter(c)))
            .collect();
        let hists = Hist::ALL
            .iter()
            .map(|&h| {
                let core = &self.hists[h as usize];
                let buckets = core
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i, n))
                    })
                    .collect();
                HistSnapshot {
                    name: h.name(),
                    count: core.count.load(Ordering::Relaxed),
                    sum: core.sum.load(Ordering::Relaxed),
                    buckets,
                }
            })
            .collect();
        let spans = self
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        MetricsSnapshot {
            counters,
            hists,
            spans,
            elapsed_ns: self.now_ns(),
        }
    }

    /// Renders the recorded spans as a rustc-style indented tree, one
    /// block per thread, for `--trace`:
    ///
    /// ```text
    /// trace (thread 0):
    ///   cli::command in=0 out=1 2.10ms
    ///     membership::worklist in=4 out=3 310.00µs
    /// ```
    #[must_use]
    pub fn render_trace(&self) -> String {
        let spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        let mut threads: Vec<u32> = spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        let mut out = String::new();
        for t in threads {
            out.push_str(&format!("trace (thread {t}):\n"));
            for s in spans.iter().filter(|s| s.thread == t) {
                let indent = "  ".repeat(s.depth as usize + 1);
                out.push_str(&format!(
                    "{indent}{} in={} out={} {}\n",
                    s.site,
                    s.payload_in,
                    s.payload_out,
                    fmt_ns(s.dur_ns)
                ));
            }
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit, for trace output.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn enter(&self, site: &'static str, payload: u64) -> SpanToken {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let record = SpanRecord {
            site,
            payload_in: payload,
            payload_out: 0,
            depth,
            thread: thread_ix(),
            start_ns: self.now_ns(),
            dur_ns: 0,
        };
        let mut spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        let ix = spans.len();
        spans.push(record);
        SpanToken(ix)
    }

    fn exit(&self, token: SpanToken, payload: u64) {
        if token.0 == usize::MAX {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end = self.now_ns();
        let mut spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = spans.get_mut(token.0) {
            s.payload_out = payload;
            s.dur_ns = end.saturating_sub(s.start_ns);
        }
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn observe(&self, hist: Hist, value: u64) {
        let core = &self.hists[hist as usize];
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn try_snapshot(&self) -> Option<MetricsSnapshot> {
        Some(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn noop_is_disabled_and_inert() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        let t = r.enter(site::WORKLIST, 7);
        r.exit(t, 3);
        r.add(Counter::DepsFired, 10);
        r.observe(Hist::QueryNs, 123);
        // the shared instance behaves the same
        assert!(!noop().enabled());
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let r = MetricsRecorder::new();
        r.add(Counter::DepsFired, 3);
        r.add(Counter::DepsFired, 4);
        r.observe(Hist::QueryNs, 0);
        r.observe(Hist::QueryNs, 5);
        r.observe(Hist::QueryNs, 5);
        let snap = r.snapshot();
        let deps = snap
            .counters
            .iter()
            .find(|(n, _)| *n == "deps_fired")
            .unwrap();
        assert_eq!(deps.1, 7);
        let q = &snap.hists[Hist::QueryNs as usize];
        assert_eq!(q.count, 3);
        assert_eq!(q.sum, 10);
        assert_eq!(q.buckets, vec![(0, 1), (bucket_of(5), 2)]);
    }

    #[test]
    fn spans_nest_by_depth_and_render() {
        let r = MetricsRecorder::new();
        let outer = r.enter(site::CLI_COMMAND, 0);
        let inner = r.enter(site::WORKLIST, 4);
        r.exit(inner, 2);
        r.exit(outer, 1);
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].depth, 0);
        assert_eq!(snap.spans[1].depth, 1);
        assert_eq!(snap.spans[1].payload_out, 2);
        let tree = r.render_trace();
        assert!(tree.contains("cli::command in=0 out=1"));
        assert!(tree.contains("    membership::worklist in=4 out=2"));
    }

    #[test]
    fn unexited_span_has_zero_duration() {
        let r = MetricsRecorder::new();
        let _leaked = r.enter(site::CHASE, 1);
        let snap = r.snapshot();
        assert_eq!(snap.spans[0].dur_ns, 0);
        assert_eq!(snap.spans[0].payload_out, 0);
        // rebalance the thread-local depth for later tests on this thread
        DEPTH.with(|d| d.set(0));
    }

    #[test]
    fn counter_and_hist_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn recorder_is_object_safe_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsRecorder>();
        assert_send_sync::<NoopRecorder>();
        let _obj: &dyn Recorder = noop();
    }
}
