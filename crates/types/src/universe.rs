//! Universes of flat attributes and labels (Definition 3.1).
//!
//! A *universe* is a finite set `U` of flat attribute names together with a
//! domain `dom(A)` for every `A ∈ U`. Nested attributes additionally draw
//! on a set `L` of labels with `U ∩ L = ∅` and `λ ∉ U ∪ L`
//! (Definition 3.2). [`Universe`] tracks both name sets, enforces
//! disjointness, and records a [`DomainKind`] per flat attribute so that
//! value conformance can be checked.

use std::collections::BTreeMap;

use crate::attr::NestedAttr;
use crate::error::TypeError;
use crate::value::BaseValue;

/// The kind of base domain assigned to a flat attribute.
///
/// The paper leaves domains abstract ("sets of values"); for a concrete
/// library we provide the usual scalar kinds plus [`DomainKind::Any`] for
/// untyped use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DomainKind {
    /// Any base value is admissible.
    #[default]
    Any,
    /// Unicode strings.
    Text,
    /// 64-bit signed integers.
    Integer,
    /// Booleans.
    Boolean,
}

impl DomainKind {
    /// Does the given base value belong to this domain?
    pub fn admits(self, v: &BaseValue) -> bool {
        matches!(
            (self, v),
            (DomainKind::Any, _)
                | (DomainKind::Text, BaseValue::Str(_))
                | (DomainKind::Integer, BaseValue::Int(_))
                | (DomainKind::Boolean, BaseValue::Bool(_))
        )
    }
}

/// A universe `U` of flat attributes with domains, plus the label set `L`
/// (Definitions 3.1 and 3.2).
///
/// The reserved name `λ` (spelled `"λ"` or `"lambda"`) may be used for
/// neither flat attributes nor labels.
///
/// ```
/// use nalist_types::universe::{DomainKind, Universe};
///
/// let mut u = Universe::new();
/// u.add_flat("Person", DomainKind::Text).unwrap();
/// u.add_flat("Beer", DomainKind::Text).unwrap();
/// u.add_label("Pubcrawl").unwrap();
/// u.add_label("Visit").unwrap();
/// assert!(u.is_flat("Person"));
/// assert!(u.is_label("Visit"));
/// assert!(u.add_label("Person").is_err()); // U ∩ L = ∅
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Universe {
    flats: BTreeMap<String, DomainKind>,
    labels: BTreeMap<String, ()>,
}

/// Names reserved for the null attribute `λ`.
pub const LAMBDA_NAMES: [&str; 2] = ["λ", "lambda"];

fn is_reserved(name: &str) -> bool {
    LAMBDA_NAMES.contains(&name)
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a flat attribute `A ∈ U` with the given domain kind.
    ///
    /// Fails if the name is reserved or already used as a label.
    pub fn add_flat(&mut self, name: &str, dom: DomainKind) -> Result<(), TypeError> {
        if is_reserved(name) || self.labels.contains_key(name) {
            return Err(TypeError::NameClash {
                name: name.to_owned(),
            });
        }
        self.flats.insert(name.to_owned(), dom);
        Ok(())
    }

    /// Adds a label `L ∈ L`.
    ///
    /// Fails if the name is reserved or already used as a flat attribute.
    pub fn add_label(&mut self, name: &str) -> Result<(), TypeError> {
        if is_reserved(name) || self.flats.contains_key(name) {
            return Err(TypeError::NameClash {
                name: name.to_owned(),
            });
        }
        self.labels.insert(name.to_owned(), ());
        Ok(())
    }

    /// Is `name` a registered flat attribute?
    pub fn is_flat(&self, name: &str) -> bool {
        self.flats.contains_key(name)
    }

    /// Is `name` a registered label?
    pub fn is_label(&self, name: &str) -> bool {
        self.labels.contains_key(name)
    }

    /// Domain kind of a flat attribute, if registered.
    pub fn domain_of(&self, name: &str) -> Option<DomainKind> {
        self.flats.get(name).copied()
    }

    /// Iterates over the flat attribute names in `U` (sorted).
    pub fn flats(&self) -> impl Iterator<Item = &str> {
        self.flats.keys().map(String::as_str)
    }

    /// Iterates over the label names in `L` (sorted).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.keys().map(String::as_str)
    }

    /// Number of flat attributes.
    pub fn flat_count(&self) -> usize {
        self.flats.len()
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Builds a universe by collecting every flat attribute and label that
    /// occurs in `attr` (all flat attributes get [`DomainKind::Any`]).
    ///
    /// Fails with [`TypeError::NameClash`] if some name occurs both as a
    /// flat attribute and as a label inside `attr`.
    pub fn from_attr(attr: &NestedAttr) -> Result<Self, TypeError> {
        let mut u = Universe::new();
        collect(attr, &mut u)?;
        Ok(u)
    }

    /// Checks that `attr` only uses names registered in this universe, with
    /// flat attributes used as flats and labels used as labels.
    pub fn admits_attr(&self, attr: &NestedAttr) -> Result<(), TypeError> {
        match attr {
            NestedAttr::Null => Ok(()),
            NestedAttr::Flat(a) => {
                if self.is_flat(a) {
                    Ok(())
                } else {
                    Err(TypeError::NameClash { name: a.clone() })
                }
            }
            NestedAttr::Record(l, children) => {
                if !self.is_label(l) {
                    return Err(TypeError::NameClash { name: l.clone() });
                }
                children.iter().try_for_each(|c| self.admits_attr(c))
            }
            NestedAttr::List(l, inner) => {
                if !self.is_label(l) {
                    return Err(TypeError::NameClash { name: l.clone() });
                }
                self.admits_attr(inner)
            }
        }
    }
}

fn collect(attr: &NestedAttr, u: &mut Universe) -> Result<(), TypeError> {
    match attr {
        NestedAttr::Null => Ok(()),
        NestedAttr::Flat(a) => u.add_flat(a, DomainKind::Any),
        NestedAttr::Record(l, children) => {
            u.add_label(l)?;
            children.iter().try_for_each(|c| collect(c, u))
        }
        NestedAttr::List(l, inner) => {
            u.add_label(l)?;
            collect(inner, u)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::NestedAttr as A;

    #[test]
    fn disjointness_enforced() {
        let mut u = Universe::new();
        u.add_flat("X", DomainKind::Any).unwrap();
        assert_eq!(
            u.add_label("X"),
            Err(TypeError::NameClash { name: "X".into() })
        );
        u.add_label("L").unwrap();
        assert_eq!(
            u.add_flat("L", DomainKind::Any),
            Err(TypeError::NameClash { name: "L".into() })
        );
    }

    #[test]
    fn lambda_reserved() {
        let mut u = Universe::new();
        assert!(u.add_flat("λ", DomainKind::Any).is_err());
        assert!(u.add_label("lambda").is_err());
    }

    #[test]
    fn domain_kinds_admit() {
        assert!(DomainKind::Text.admits(&BaseValue::Str("x".into())));
        assert!(!DomainKind::Text.admits(&BaseValue::Int(3)));
        assert!(DomainKind::Integer.admits(&BaseValue::Int(3)));
        assert!(DomainKind::Boolean.admits(&BaseValue::Bool(true)));
        assert!(DomainKind::Any.admits(&BaseValue::Bool(false)));
    }

    #[test]
    fn from_attr_collects_names() {
        // Pubcrawl(Person, Visit[Drink(Beer, Pub)])
        let n = A::record(
            "Pubcrawl",
            vec![
                A::flat("Person"),
                A::list(
                    "Visit",
                    A::record("Drink", vec![A::flat("Beer"), A::flat("Pub")]).unwrap(),
                ),
            ],
        )
        .unwrap();
        let u = Universe::from_attr(&n).unwrap();
        assert!(u.is_flat("Person") && u.is_flat("Beer") && u.is_flat("Pub"));
        assert!(u.is_label("Pubcrawl") && u.is_label("Visit") && u.is_label("Drink"));
        assert_eq!(u.flat_count(), 3);
        assert_eq!(u.label_count(), 3);
        u.admits_attr(&n).unwrap();
    }

    #[test]
    fn from_attr_detects_clash() {
        // name "X" used both as label and flat attribute
        let n = A::record("X", vec![A::flat("X")]).unwrap();
        assert!(Universe::from_attr(&n).is_err());
    }

    #[test]
    fn admits_attr_rejects_unknown() {
        let u = Universe::new();
        assert!(u.admits_attr(&A::flat("A")).is_err());
        assert!(u.admits_attr(&A::Null).is_ok());
    }
}
